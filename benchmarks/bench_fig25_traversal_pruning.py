"""F25 — Traversal-pruning ablation: exhaustive vs WAND vs Block-Max WAND.

The paper's engine scores every posting of every query term
(exhaustive DAAT) — that exhaustive scoring demand is what the
partitioning study splits across cores.  This figure quantifies how
much of that demand dynamic pruning would remove, sweeping traversal
strategy × partition count over the disjunctive Zipf workload:

- **exhaustive** — the paper's setting; scores the full candidate union.
- **wand** — pivot-based skipping on global per-term score bounds.
- **block-max-wand** — WAND plus per-block score bounds (block size 64
  here): shallow pointer movement over block metadata, deep descent
  only into blocks whose local bound can beat the heap threshold.

Pruning is an optimization, not an approximation: every strategy must
return bit-identical top-k results (ids AND scores).  Partitioning
dilutes pruning — each shard must fill its own top-k heap from colder
postings, so scored-docs grow with the shard count while the merged
result stays identical (the coverage tax the simulator's
``pruning_factor`` calibrates per partition count).

Acceptance contract (mirrors ISSUE criteria):

- every strategy's merged top-k is bit-identical to exhaustive DAAT at
  every partition count;
- BMW scores >= 2x fewer documents than exhaustive on the
  single-partition index, and keeps a >= 1.4x reduction at every swept
  partition count;
- BMW never scores more documents than WAND and records block skips;
- the sweep is deterministic: re-running a cell reproduces identical
  counters and hits.

Run standalone (CI smoke):
``python benchmarks/bench_fig25_traversal_pruning.py --quick``
"""

from __future__ import annotations

import argparse
import sys

from repro.api import format_table
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import QueryLogConfig, QueryLogGenerator
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index
from repro.obs.registry import MetricsRegistry
from repro.search.strategy import TraversalStrategy

CORPUS = CorpusConfig(
    num_documents=4_000,
    vocabulary=VocabularyConfig(size=10_000, exponent=1.0, seed=7),
    mean_length=120,
    length_sigma=0.7,
    seed=42,
)
QUERY_LOG = QueryLogConfig(num_unique_queries=150, seed=9)
BLOCK_SIZE = 64
PARTITION_COUNTS = (1, 4)
STRATEGIES = (
    TraversalStrategy.EXHAUSTIVE,
    TraversalStrategy.WAND,
    TraversalStrategy.BLOCK_MAX_WAND,
)
NUM_QUERIES = 150
QUICK_QUERIES = 50

#: Scored-docs floors the sweep must clear (vs exhaustive).
MIN_PRUNING_SINGLE_PARTITION = 2.0
MIN_PRUNING_ANY_PARTITION = 1.4

_SCORED_COUNTER = {
    TraversalStrategy.EXHAUSTIVE: "daat.candidates_scored",
    TraversalStrategy.WAND: "wand.docs_scored",
    TraversalStrategy.BLOCK_MAX_WAND: "wand.docs_scored",
}


def _build_instance():
    """Corpus, partitioned indexes, and query texts — built once."""
    generator = CorpusGenerator(CORPUS)
    collection = generator.generate()
    query_log = QueryLogGenerator(generator.vocabulary, QUERY_LOG).generate()
    partitioned = {
        count: partition_index(collection, count, block_size=BLOCK_SIZE)
        for count in PARTITION_COUNTS
    }
    return partitioned, [query.text for query in query_log]


def _run_cell(partitioned, texts, strategy, num_queries):
    """One (strategy, partition count) cell: serve the log, return
    per-query hits plus the scored-docs / skip counters."""
    registry = MetricsRegistry()
    hits = []
    with IndexServingNode(
        partitioned, algorithm=strategy, metrics=registry
    ) as isn:
        for text in texts[:num_queries]:
            response = isn.execute_serial(text)
            hits.append(tuple((h.doc_id, h.score) for h in response.hits))
    return {
        "hits": hits,
        "docs_scored": registry.counter(_SCORED_COUNTER[strategy]).value,
        "block_skips": registry.counter("wand.block_skips").value,
        "pivot_skips": registry.counter("wand.pivot_skips").value,
    }


def _sweep(num_queries, instance=None):
    partitioned, texts = instance if instance else _build_instance()
    rows = []
    for count in PARTITION_COUNTS:
        for strategy in STRATEGIES:
            cell = _run_cell(partitioned[count], texts, strategy, num_queries)
            rows.append(
                {
                    "partitions": count,
                    "strategy": strategy,
                    **cell,
                }
            )
    return rows


def _format(rows, num_queries):
    exhaustive = {
        row["partitions"]: row["docs_scored"]
        for row in rows
        if row["strategy"] is TraversalStrategy.EXHAUSTIVE
    }
    return format_table(
        [
            "partitions",
            "strategy",
            "docs_scored",
            "reduction_x",
            "pivot_skips",
            "block_skips",
        ],
        [
            [
                row["partitions"],
                row["strategy"].name.lower(),
                row["docs_scored"],
                exhaustive[row["partitions"]] / row["docs_scored"],
                row["pivot_skips"],
                row["block_skips"],
            ]
            for row in rows
        ],
        title=(
            f"F25: traversal pruning ablation "
            f"({CORPUS.num_documents} docs, {num_queries} queries, "
            f"block size {BLOCK_SIZE})"
        ),
    )


def _check(rows) -> None:
    """The acceptance assertions, shared by pytest and --quick modes."""
    by_cell = {(row["partitions"], row["strategy"]): row for row in rows}
    for count in PARTITION_COUNTS:
        exhaustive = by_cell[(count, TraversalStrategy.EXHAUSTIVE)]
        wand = by_cell[(count, TraversalStrategy.WAND)]
        bmw = by_cell[(count, TraversalStrategy.BLOCK_MAX_WAND)]
        for row in (wand, bmw):
            assert row["hits"] == exhaustive["hits"], (
                f"{row['strategy'].name} must return bit-identical top-k "
                f"to exhaustive DAAT at P={count}"
            )
        floor = (
            MIN_PRUNING_SINGLE_PARTITION
            if count == 1
            else MIN_PRUNING_ANY_PARTITION
        )
        reduction = exhaustive["docs_scored"] / bmw["docs_scored"]
        assert reduction >= floor, (
            f"BMW must score >= {floor}x fewer docs at P={count}: "
            f"{exhaustive['docs_scored']} vs {bmw['docs_scored']} "
            f"({reduction:.2f}x)"
        )
        assert bmw["docs_scored"] <= wand["docs_scored"], (
            f"block bounds must not score more than plain WAND at P={count}"
        )
        assert bmw["block_skips"] >= 1, (
            f"BMW should skip at least one block at P={count}"
        )
        assert wand["block_skips"] == 0


def _check_deterministic(instance, num_queries) -> None:
    """Same cell twice → identical hits and counters."""
    partitioned, texts = instance
    cells = [
        _run_cell(
            partitioned[max(PARTITION_COUNTS)],
            texts,
            TraversalStrategy.BLOCK_MAX_WAND,
            num_queries,
        )
        for _ in range(2)
    ]
    assert cells[0] == cells[1], (
        "traversal sweep must be deterministic: identical hits and counters"
    )


def test_fig25_traversal_pruning(benchmark, emit):
    instance = _build_instance()
    rows = benchmark.pedantic(
        lambda: _sweep(NUM_QUERIES, instance), rounds=1, iterations=1
    )
    emit("fig25_traversal_pruning", _format(rows, NUM_QUERIES))
    _check(rows)


def test_fig25_deterministic():
    instance = _build_instance()
    _check_deterministic(instance, QUICK_QUERIES)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: {QUICK_QUERIES} queries instead of {NUM_QUERIES}",
    )
    args = parser.parse_args(argv)
    num_queries = QUICK_QUERIES if args.quick else NUM_QUERIES
    instance = _build_instance()
    rows = _sweep(num_queries, instance)
    print(_format(rows, num_queries))
    _check(rows)
    _check_deterministic(instance, num_queries)
    print("fig25 acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
