"""F20 (extension) — Segment drift: update activity vs. query latency.

An incrementally-updated index accumulates segments; each query fans
out over all of them, so query cost drifts upward with update activity
until a merge pays it back — the maintenance analogue of the
intra-server partitioning study (a multi-segment index *is* a
partitioned index with an uncontrolled partition count, minus the
parallelism: segments are searched serially here).  Measures mean
query time at 32/8/1 segments over the same documents, and the cost of
the merge itself.
"""

import time

import numpy as np

from repro.core.reporting import format_table
from repro.index.segments import MergePolicy, SegmentedIndex

from conftest import BENCH_QUERY_LOG

NUM_DOCS = 2_000
SEGMENTS_START = 32


def test_fig20_segments(benchmark, service, emit):
    documents = list(service.collection)[:NUM_DOCS]
    rng = np.random.default_rng(5)
    queries = [
        q.text for q in service.query_log.sample_stream(60, rng)
    ]

    def build_and_measure():
        segmented = SegmentedIndex(
            analyzer=service.analyzer,
            merge_policy=MergePolicy(max_segments=10_000),
        )
        batch_size = NUM_DOCS // SEGMENTS_START
        for start in range(0, NUM_DOCS, batch_size):
            segmented.add_documents(documents[start : start + batch_size])

        measurements = {}

        def measure(label):
            start_time = time.perf_counter()
            for text in queries:
                segmented.search(text, k=10)
            elapsed = time.perf_counter() - start_time
            measurements[label] = (
                segmented.num_segments,
                elapsed / len(queries),
            )

        measure("fresh")

        # Partial merge down to single digits of segments.
        while segmented.num_segments > 8:
            segmented.merge_policy = MergePolicy(
                max_segments=segmented.num_segments - 1, merge_factor=4
            )
            segmented.maybe_merge()
        measure("tiered-merged")

        merge_start = time.perf_counter()
        segmented.force_merge()
        merge_seconds = time.perf_counter() - merge_start
        measure("force-merged")
        return measurements, merge_seconds

    measurements, merge_seconds = benchmark.pedantic(
        build_and_measure, rounds=1, iterations=1
    )

    emit(
        "fig20_segments",
        format_table(
            ["state", "segments", "mean_query_ms"],
            [
                [label, segments, mean_seconds * 1000]
                for label, (segments, mean_seconds) in measurements.items()
            ],
            title=f"F20: query cost vs segment count ({NUM_DOCS} docs)",
        )
        + f"\n\nforce-merge cost: {merge_seconds * 1000:.0f} ms "
        f"(amortized over subsequent queries)",
    )

    many = measurements["fresh"][1]
    some = measurements["tiered-merged"][1]
    one = measurements["force-merged"][1]
    # Query cost decreases monotonically as segments merge away...
    assert one < some < many
    # ...and the 32-segment state costs materially more than optimized.
    assert many > 1.3 * one