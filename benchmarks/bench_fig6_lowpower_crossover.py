"""F6 — Big vs. low-power server response time vs. partitions.

Regenerates the low-power study's crossover figure: both servers sweep
the partition count at the same (low) offered load.  Paper shape: the
low-power server at P=1 is ~3x slower (the per-core speed ratio), but
given enough partitions its response times converge to — and its tail
can even match — the big server's unpartitioned level.
"""

from repro.core.lowpower import compare_servers_vs_partitions
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER

PARTITIONS = [1, 2, 4, 8, 16]


def test_fig6_lowpower_crossover(benchmark, demand_model, cost_model, emit):
    # Low load: the study isolates intrinsic response time, and the
    # rate must stay within the small server's (lower) capacity.
    small_capacity = SMALL_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.3 * small_capacity

    points = benchmark.pedantic(
        compare_servers_vs_partitions,
        args=([BIG_SERVER, SMALL_SERVER], demand_model, PARTITIONS, rate),
        kwargs={"cost_model": cost_model, "num_queries": 8_000, "seed": 0},
        rounds=1,
        iterations=1,
    )

    series = {}
    for point in points:
        series.setdefault(point.server_name, {})[point.num_partitions] = (
            point.summary
        )
    emit(
        "fig6_lowpower_crossover",
        format_series(
            f"F6: big vs low-power server latency vs partitions "
            f"({rate:.0f} qps)",
            "partitions",
            PARTITIONS,
            [
                (
                    f"{name}_{stat}_ms",
                    [
                        getattr(series[name][p], stat) * 1000
                        for p in PARTITIONS
                    ],
                )
                for name in (BIG_SERVER.name, SMALL_SERVER.name)
                for stat in ("p50", "p99")
            ],
        ),
    )

    big = series[BIG_SERVER.name]
    small = series[SMALL_SERVER.name]
    # Unpartitioned, the small server is ~1/core_speed slower.
    assert small[1].p50 > 2.0 * big[1].p50
    # The paper's claim: enough partitioning closes the gap to the big
    # server's P=1 response time.
    assert min(small[p].p99 for p in PARTITIONS) <= 1.2 * big[1].p99
    assert min(small[p].p50 for p in PARTITIONS) <= 1.2 * big[1].p50
