"""F12 (extension) — Cluster fan-out: sharding speedup and tail at scale.

Shards the collection across N index serving nodes behind a broker
that waits for the slowest node.  Shape: latency falls with N but the
sharding efficiency (speedup/N) decays, and the fan-out skew grows as
a fraction of the remaining latency — the "tail at scale" effect that
motivates hedged requests and replica selection in production search.
"""

from repro.cluster.server import PartitionModelConfig
from repro.core.fanout import fanout_scaling_study
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER
from repro.sim.network import LognormalDelay

SERVERS = [1, 2, 4, 8, 16, 32]


def test_fig12_cluster_fanout(benchmark, demand_model, cost_model, emit):
    partitioning = PartitionModelConfig(
        num_partitions=1,
        partition_overhead=cost_model.partition_overhead,
        merge_base=cost_model.merge_base,
        merge_per_partition=cost_model.merge_per_partition,
    )

    points = benchmark.pedantic(
        fanout_scaling_study,
        args=(BIG_SERVER, demand_model, SERVERS, 40.0),
        kwargs={
            "partitioning": partitioning,
            "network": LognormalDelay(median=0.0003, sigma=0.4),
            "num_queries": 6_000,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    base_p50 = points[0].summary.p50
    emit(
        "fig12_cluster_fanout",
        format_series(
            "F12: cluster fan-out at 40 qps (whole-query work fixed)",
            "servers",
            SERVERS,
            [
                ("p50_ms", [p.summary.p50 * 1000 for p in points]),
                ("p99_ms", [p.summary.p99 * 1000 for p in points]),
                ("speedup_p50", [base_p50 / p.summary.p50 for p in points]),
                (
                    "efficiency",
                    [
                        base_p50 / p.summary.p50 / p.num_servers
                        for p in points
                    ],
                ),
                ("skew_frac", [p.skew_fraction for p in points]),
            ],
        ),
    )

    # Shape: strong early improvement that saturates (and may invert at
    # extreme widths, where skew overwhelms the per-node work savings),
    # decaying efficiency, growing skew.
    p50s = [p.summary.p50 for p in points]
    assert p50s[3] < 0.5 * p50s[0]  # N=8 at least halves the median
    assert min(p50s) < p50s[0] and min(p50s) <= p50s[-1]
    efficiencies = [
        base_p50 / p.summary.p50 / p.num_servers for p in points
    ]
    assert efficiencies[-1] < 0.8 * efficiencies[0]
    assert points[-1].skew_fraction > points[1].skew_fraction
