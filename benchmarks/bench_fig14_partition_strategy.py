"""F14 (ablation) — Document-to-partition assignment strategy.

Partitions a crawl-ordered corpus with vocabulary drift (temporal
topical locality, as real crawls have) under the three assignment
strategies and measures per-query shard work balance.  Shape: on a
drift-free corpus all strategies are equivalent; under drift,
CONTIGUOUS ranges produce topically-specialized shards whose work
imbalance approaches the partition count, while ROUND_ROBIN and HASH
stay near-even — justifying the benchmark's crawl-order interleaving.
"""

from dataclasses import replace

from repro.core.reporting import format_table
from repro.core.strategies import partition_balance_study
from repro.corpus.generator import CorpusGenerator
from repro.corpus.querylog import QueryLogGenerator
from repro.index.partitioner import PartitionStrategy

from conftest import BENCH_CORPUS, BENCH_QUERY_LOG

PARTITIONS = 8
DRIFT = 8.0


def _study(drift: float):
    config = replace(
        BENCH_CORPUS, num_documents=1_500, topic_drift=drift
    )
    generator = CorpusGenerator(config)
    collection = generator.generate()
    query_log = QueryLogGenerator(
        generator.vocabulary, BENCH_QUERY_LOG
    ).generate()
    return partition_balance_study(
        collection, query_log, num_partitions=PARTITIONS, num_queries=150
    )


def test_fig14_partition_strategy(benchmark, emit):
    def run_both():
        return _study(0.0), _study(DRIFT)

    no_drift, drifted = benchmark.pedantic(run_both, rounds=1, iterations=1)

    rows = []
    for label, study in (("no drift", no_drift), (f"drift={DRIFT}", drifted)):
        for row in study:
            rows.append(
                [
                    label,
                    row.strategy.value,
                    row.imbalance,
                    row.worst_query_imbalance,
                    row.shard_document_spread,
                ]
            )
    emit(
        "fig14_partition_strategy",
        format_table(
            [
                "corpus", "strategy", "mean_imbalance",
                "worst_imbalance", "doc_spread",
            ],
            rows,
            title=f"F14: shard work balance by strategy (P={PARTITIONS})",
        ),
    )

    def by_strategy(study):
        return {row.strategy: row for row in study}

    flat, skewed = by_strategy(no_drift), by_strategy(drifted)
    # Without drift the strategies are statistically equivalent.
    flat_values = [row.imbalance for row in no_drift]
    assert max(flat_values) < 1.25 * min(flat_values)
    # Under drift, contiguous shards skew hard; round-robin stays even.
    assert (
        skewed[PartitionStrategy.CONTIGUOUS].imbalance
        > 1.4 * skewed[PartitionStrategy.ROUND_ROBIN].imbalance
    )
    # Drift makes shard-level dfs sparser (noisier) for every strategy,
    # but round-robin must stay far from the contiguous blow-up.
    assert (
        skewed[PartitionStrategy.ROUND_ROBIN].imbalance
        < 0.6 * skewed[PartitionStrategy.CONTIGUOUS].imbalance
    )
