"""F24 — Overload control and graceful degradation under chaos.

The tail-tolerance figure (F23) handles *stragglers*; this figure
handles *failure plus overload*: one shard of a 4-shard cluster flaps
(periodic crash/restart) and runs 3x slow between crashes while the
offered load sweeps from comfortably below the knee to 3x capacity.

Two configurations run the identical fault schedule:

- **unprotected** — no admission control, no breakers, no deadline.
  The slow shard's queue grows without bound above its degraded
  capacity, every fork-join query waits on it, and response times climb
  into seconds while goodput collapses to the sick shard's throughput.
- **protected** — admission control (bounded concurrency + queue),
  per-shard circuit breakers, and a per-shard deadline.  The breaker
  fences off the sick shard (bounded coverage loss instead of unbounded
  queueing), the deadline caps the damage while the breaker is probing,
  and admission control sheds excess load so *served* queries keep
  below-knee latency.

Acceptance contract (mirrors ISSUE criteria):

- protected served-p99 at every swept load stays ≤ 2x the protected
  below-knee (0.5x) served-p99;
- protected goodput at 3x capacity ≥ unprotected goodput at 3x;
- the sweep is deterministic: re-running a cell with the same seed
  reproduces identical latencies, coverage, and shed counts.

Run standalone (CI smoke):
``python benchmarks/bench_fig24_overload_degradation.py --quick``
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import (
    BIG_SERVER,
    BreakerConfig,
    ClusterConfig,
    ClusterModel,
    FaultPlan,
    HedgingPolicy,
    LognormalDemand,
    OverloadPolicy,
    ShardSlowdown,
    format_table,
)

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)  # mean ~14 ms, heavy tail
NUM_SERVERS = 4
SICK_SHARD = 1
SLOWDOWN_FACTOR = 3.0
FLAP_PERIOD_S = 0.5
FLAP_DUTY = 0.2
DEADLINE_S = 0.05
NUM_QUERIES = 6_000
QUICK_QUERIES = 1_500
WARMUP = 0.1
SEED = 0

#: Healthy cluster capacity (qps): each query's demand splits evenly
#: across the shards (``demand / num_servers`` per ISN), so the healthy
#: knee sits at num_servers x compute_capacity / mean_demand.  The sick
#: shard's degraded capacity is this divided by the slowdown factor.
CAPACITY_QPS = (
    NUM_SERVERS * BIG_SERVER.compute_capacity / DEMAND.mean_demand()
)

#: Offered load as fractions of healthy capacity; 0.5x is the
#: below-knee baseline, 3x is deep overload.
LOAD_FRACTIONS = (0.5, 1.0, 2.0, 3.0)

PROTECTION = {
    "hedging": HedgingPolicy(deadline_s=DEADLINE_S),
    "breakers": BreakerConfig(failure_threshold=3, recovery_time_s=0.25),
    # CoDel keeps the admission queue's standing delay near 10 ms, so a
    # served query's latency is bounded queue wait + deadline-bounded
    # service — not minutes of queueing.
    "overload": OverloadPolicy(
        max_concurrency=64,
        queue_limit=64,
        codel_target_delay_s=0.01,
        codel_interval_s=0.05,
    ),
}


def _fault_plan(horizon_s: float) -> FaultPlan:
    """One shard flapping over the arrival window, slow in between."""
    flapping = FaultPlan.flapping_shard(
        SICK_SHARD,
        period_s=FLAP_PERIOD_S,
        duty=FLAP_DUTY,
        horizon_s=horizon_s,
        seed=SEED,
    )
    return FaultPlan(
        crashes=flapping.crashes,
        slowdowns=(
            ShardSlowdown(
                shard=SICK_SHARD,
                start_s=0.0,
                duration_s=horizon_s,
                factor=SLOWDOWN_FACTOR,
            ),
        ),
        seed=SEED,
    )


def _run_cell(load_fraction, protected, num_queries, seed=SEED):
    rate = load_fraction * CAPACITY_QPS
    plan = _fault_plan(num_queries / rate)
    config = ClusterConfig(
        num_servers=NUM_SERVERS,
        spec=BIG_SERVER,
        faults=plan,
        **(PROTECTION if protected else {}),
    )
    return ClusterModel(config).run(
        rate_qps=rate, num_queries=num_queries, demand=DEMAND, seed=seed
    )


def _sweep(num_queries):
    rows = []
    for load_fraction in LOAD_FRACTIONS:
        for protected in (False, True):
            result = _run_cell(load_fraction, protected, num_queries)
            summary = result.summary(WARMUP)
            rows.append(
                {
                    "load_x": load_fraction,
                    "protected": protected,
                    "served": len(result) - result.shed_count,
                    "shed": result.shed_count,
                    "p50": summary.p50,
                    "p99": summary.p99,
                    "goodput": result.goodput_qps(WARMUP),
                    "coverage": result.mean_coverage(WARMUP),
                    "breaker_skips": result.breaker_skips,
                }
            )
    return rows


def _format(rows, num_queries):
    return format_table(
        [
            "load_x",
            "mode",
            "served",
            "shed",
            "p50_ms",
            "p99_ms",
            "goodput_qps",
            "coverage",
            "brk_skips",
        ],
        [
            [
                row["load_x"],
                "protected" if row["protected"] else "unprotected",
                row["served"],
                row["shed"],
                row["p50"] * 1000,
                row["p99"] * 1000,
                row["goodput"],
                row["coverage"],
                row["breaker_skips"],
            ]
            for row in rows
        ],
        title=(
            f"F24: overload + flapping shard {SICK_SHARD} "
            f"(capacity ~{CAPACITY_QPS:.0f} qps, {num_queries} queries, "
            f"{NUM_SERVERS} shards)"
        ),
    )


def _structured_data(rows, num_queries):
    protected = {r["load_x"]: r for r in rows if r["protected"]}
    unprotected = {r["load_x"]: r for r in rows if not r["protected"]}
    top = max(LOAD_FRACTIONS)
    return {
        "figure": "fig24",
        "capacity_qps": CAPACITY_QPS,
        "num_queries": num_queries,
        "num_servers": NUM_SERVERS,
        "cells": rows,
        "protected_top_goodput_qps": protected[top]["goodput"],
        "unprotected_top_goodput_qps": unprotected[top]["goodput"],
        "protected_p99_worst_over_baseline": max(
            row["p99"] for row in protected.values()
        )
        / protected[min(LOAD_FRACTIONS)]["p99"],
        "seed": SEED,
    }


def _check(rows) -> None:
    """The acceptance assertions, shared by pytest and --quick modes."""
    protected = {r["load_x"]: r for r in rows if r["protected"]}
    unprotected = {r["load_x"]: r for r in rows if not r["protected"]}
    baseline = protected[min(LOAD_FRACTIONS)]
    for load_fraction, row in protected.items():
        assert row["p99"] <= 2.0 * baseline["p99"], (
            f"protected served-p99 must stay within 2x of below-knee: "
            f"{row['p99'] * 1000:.1f} ms at {load_fraction}x vs baseline "
            f"{baseline['p99'] * 1000:.1f} ms"
        )
    top = max(LOAD_FRACTIONS)
    assert protected[top]["goodput"] >= unprotected[top]["goodput"], (
        f"protection must not lose goodput at {top}x load: "
        f"{protected[top]['goodput']:.1f} vs "
        f"{unprotected[top]['goodput']:.1f} qps"
    )
    assert protected[top]["shed"] > 0, (
        "deep overload should shed load under admission control"
    )
    assert unprotected[top]["p99"] > 2.0 * protected[top]["p99"], (
        "the unprotected run should visibly melt down at top load "
        f"(unprotected p99 {unprotected[top]['p99'] * 1000:.1f} ms, "
        f"protected {protected[top]['p99'] * 1000:.1f} ms)"
    )


def _check_deterministic(num_queries) -> None:
    """Same seed, same cell → bit-identical outcome."""
    first = _run_cell(max(LOAD_FRACTIONS), True, num_queries)
    second = _run_cell(max(LOAD_FRACTIONS), True, num_queries)
    assert np.array_equal(first.latencies(), second.latencies()), (
        "chaos run must be deterministic under a fixed seed"
    )
    assert first.shed_count == second.shed_count
    assert first.shard_failures == second.shard_failures
    assert [r.coverage for r in first.records] == [
        r.coverage for r in second.records
    ]


def test_fig24_overload_degradation(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: _sweep(NUM_QUERIES), rounds=1, iterations=1
    )
    emit(
        "fig24_overload_degradation",
        _format(rows, NUM_QUERIES),
        data=_structured_data(rows, NUM_QUERIES),
    )
    _check(rows)


def test_fig24_deterministic():
    _check_deterministic(QUICK_QUERIES)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: {QUICK_QUERIES} queries instead of {NUM_QUERIES}",
    )
    args = parser.parse_args(argv)
    num_queries = QUICK_QUERIES if args.quick else NUM_QUERIES
    rows = _sweep(num_queries)
    print(_format(rows, num_queries))
    _check(rows)
    _check_deterministic(num_queries)

    from _structured import write_bench_json

    write_bench_json("fig24", _structured_data(rows, num_queries))
    print("fig24 acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
