"""F9 — Closed-loop (Faban-style) client sweep.

Regenerates the driver-semantics figure: throughput and response time
as the emulated client population grows, with exponential think times —
the load-generation mode the benchmark actually ships.  Paper shape:
throughput grows near-linearly while the server has headroom, then
saturates; response time stays flat until saturation and climbs
steeply after, while closed-loop back-pressure keeps it bounded.
"""

from repro.cluster.simulation import ClusterConfig, run_closed_loop
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER
from repro.workload.arrivals import ClosedLoopSpec

CLIENTS = [1, 2, 4, 8, 16, 32, 64]


def test_fig9_closed_loop(benchmark, demand_model, cost_model, emit):
    # Think time ~4x mean demand: saturation lands mid-sweep.
    think = 4.0 * demand_model.mean_demand()
    config = ClusterConfig(spec=BIG_SERVER, partitioning=cost_model)

    def sweep():
        return [
            run_closed_loop(
                config,
                ClosedLoopSpec(num_clients=clients, mean_think_time=think),
                demand_model,
                num_queries=5_000,
                seed=0,
            )
            for clients in CLIENTS
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        "fig9_closed_loop",
        format_series(
            f"F9: closed-loop sweep (think={think*1000:.1f} ms)",
            "clients",
            CLIENTS,
            [
                ("qps", [r.achieved_qps() for r in results]),
                (
                    "mean_ms",
                    [r.summary(0.1).mean * 1000 for r in results],
                ),
                ("p99_ms", [r.summary(0.1).p99 * 1000 for r in results]),
                ("util", [r.utilization() for r in results]),
            ],
        ),
    )

    qps = [r.achieved_qps() for r in results]
    means = [r.summary(0.1).mean for r in results]
    # Throughput grows with population, with diminishing returns.
    assert qps[2] > 1.8 * qps[0]
    assert qps[-1] > qps[-3]
    relative_gain_early = qps[1] / qps[0]
    relative_gain_late = qps[-1] / qps[-2]
    assert relative_gain_late < relative_gain_early
    # Response time is flat at small populations, elevated at large.
    assert means[1] < 1.3 * means[0]
    assert means[-1] > 1.5 * means[0]
