"""F15 (extension) — GC pauses: the tail partitioning cannot fix.

Injects JVM-like stop-the-world pauses (every 250 ms, 30 ms long —
young-generation collections of a 2015-era heap under search load)
into the simulated ISN and re-runs the partition sweep.  Shape: the
clean-server tail shrinks steeply with P, but with pauses on, every
partition count's p99 sits on a pause-height floor — a pause freezes
all partitions at once, so intra-query parallelism cannot touch it.
"""

from repro.core.hiccups import hiccup_study
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER
from repro.sim.hiccups import HiccupConfig

PARTITIONS = [1, 2, 4, 8, 16]
PAUSES = HiccupConfig(mean_interval=0.25, pause_duration=0.03)


def test_fig15_gc_pauses(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.3 * capacity_qps

    points = benchmark.pedantic(
        hiccup_study,
        args=(BIG_SERVER, demand_model, PARTITIONS, rate, PAUSES),
        kwargs={"cost_model": cost_model, "num_queries": 6_000, "seed": 0},
        rounds=1,
        iterations=1,
    )

    def series(enabled, stat):
        return [
            getattr(point.summary, stat) * 1000
            for point in points
            if point.hiccups_enabled == enabled
        ]

    emit(
        "fig15_gc_pauses",
        format_series(
            f"F15: p99 vs partitions, with/without GC pauses "
            f"({PAUSES.pause_duration * 1000:.0f} ms every "
            f"{PAUSES.mean_interval * 1000:.0f} ms), at {rate:.0f} qps",
            "partitions",
            PARTITIONS,
            [
                ("clean_p99_ms", series(False, "p99")),
                ("paused_p99_ms", series(True, "p99")),
                ("clean_p50_ms", series(False, "p50")),
                ("paused_p50_ms", series(True, "p50")),
            ],
        ),
    )

    clean = {p.num_partitions: p.summary for p in points if not p.hiccups_enabled}
    paused = {p.num_partitions: p.summary for p in points if p.hiccups_enabled}
    # Clean tail: steep partitioning win.
    assert clean[8].p99 < 0.6 * clean[1].p99
    # The pause floor: every paused p99 sits at least half a pause above
    # its clean counterpart, including at high partition counts.
    for num_partitions in PARTITIONS:
        assert (
            paused[num_partitions].p99
            > clean[num_partitions].p99 + 0.5 * PAUSES.pause_duration
        )
    # And the partitioning win is weaker under pauses.
    assert (paused[1].p99 / paused[8].p99) < (clean[1].p99 / clean[8].p99)
