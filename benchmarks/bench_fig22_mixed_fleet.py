"""F22 (extension) — Mixed big.LITTLE fleets with cost-aware routing.

Extends the low-power study (F6/F7) to fleet composition at roughly
equal aggregate compute: all-big vs all-little vs a mixed fleet whose
router sends the top ~20% most expensive queries (by index-derived
cost, which real engines estimate well from term statistics) to the
big group.  Shape: all-little saves power but pays tail latency; the
mixed fleet recovers most of the all-big tail — only the expensive
queries need fast cores — at a fraction of the power.
"""

from repro.cluster.server import PartitionModelConfig
from repro.core.hetero import fleet_composition_study
from repro.core.reporting import format_table
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER


def test_fig22_mixed_fleet(benchmark, demand_model, cost_model, emit):
    partitioning = PartitionModelConfig(
        num_partitions=1,
        partition_overhead=cost_model.partition_overhead,
        merge_base=cost_model.merge_base,
        merge_per_partition=cost_model.merge_per_partition,
    )
    # ~40% of the all-big fleet's capacity.
    rate = 0.4 * 2 * BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )

    points = benchmark.pedantic(
        fleet_composition_study,
        args=(BIG_SERVER, SMALL_SERVER, demand_model, rate),
        kwargs={
            "all_big": 2,
            "mixed_big": 1,
            "mixed_little": 3,
            "threshold_quantile": 0.8,
            "partitioning": partitioning,
            "num_queries": 8_000,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    emit(
        "fig22_mixed_fleet",
        format_table(
            [
                "fleet", "big", "little", "p50_ms", "p99_ms",
                "power_W", "J_per_query", "big_share",
            ],
            [
                [
                    point.label,
                    point.num_big,
                    point.num_little,
                    point.summary.p50 * 1000,
                    point.summary.p99 * 1000,
                    point.total_power_watts,
                    point.energy_per_query_joules,
                    point.big_traffic_share,
                ]
                for point in points
            ],
            title=f"F22: fleet composition at {rate:.0f} qps "
            "(≈ equal aggregate compute)",
        ),
    )

    all_big, all_little, mixed = points
    # The paper's trade: all-little saves power, pays tail.
    assert all_little.total_power_watts < 0.6 * all_big.total_power_watts
    assert all_little.summary.p99 > 1.5 * all_big.summary.p99
    # The mixed fleet recovers the tail cheaply.
    assert mixed.summary.p99 < 0.6 * all_little.summary.p99
    assert mixed.total_power_watts < 0.8 * all_big.total_power_watts
    assert mixed.energy_per_query_joules < all_big.energy_per_query_joules