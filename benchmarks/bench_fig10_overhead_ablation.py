"""F10 (ablation) — Partitioning benefit vs. per-partition overhead,
plus the observability subsystem's own overhead.

Two ablations share this file:

1. The design-choice ablation DESIGN.md calls out: the tail-latency win
   of partitioning depends on the per-partition overhead α.  We sweep α
   from zero to many times the calibrated value and report the p99 at
   P=1 vs P=8.  Shape: with small α partitioning is a large win; as α
   approaches the per-query demand the win erodes and eventually
   inverts.
2. The *instrumentation* overhead ablation: per-query cost of the
   serving path with no tracer (the seed configuration), a disabled
   tracer, and an enabled tracer + metrics registry.  Tracing is off by
   default, and the disabled path must stay within a few percent of the
   uninstrumented one.
"""

from dataclasses import replace

import numpy as np

from repro.core.partitioning import run_partitioning_sweep
from repro.core.reporting import format_series, format_table
from repro.engine.isn import IndexServingNode
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.servers.catalog import BIG_SERVER

ALPHA_SCALES = [0.0, 1.0, 4.0, 16.0, 64.0]


def test_fig10_overhead_ablation(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.25 * capacity_qps
    base_alpha = cost_model.partition_overhead

    def sweep():
        rows = []
        for scale in ALPHA_SCALES:
            model = replace(
                cost_model, partition_overhead=base_alpha * scale
            )
            points = run_partitioning_sweep(
                BIG_SERVER,
                demand_model,
                [1, 8],
                rate,
                cost_model=model,
                num_queries=6_000,
                seed=0,
            )
            rows.append(
                (scale, points[0].summary.p99, points[1].summary.p99)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        "fig10_overhead_ablation",
        format_series(
            f"F10: p99 vs per-partition overhead (alpha_0={base_alpha*1000:.2f} ms)",
            "alpha_scale",
            [row[0] for row in rows],
            [
                ("p99_P1_ms", [row[1] * 1000 for row in rows]),
                ("p99_P8_ms", [row[2] * 1000 for row in rows]),
                (
                    "speedup_P8",
                    [row[1] / row[2] for row in rows],
                ),
            ],
        ),
    )

    speedups = [row[1] / row[2] for row in rows]
    # Zero overhead: near-ideal tail win from partitioning.
    assert speedups[0] > 1.5
    # The win decays monotonically-ish as overhead grows...
    assert speedups[-1] < speedups[0]
    # ...and at extreme overhead partitioning stops helping.
    assert speedups[-1] < 1.1


def test_fig10_tracing_overhead(benchmark, service, emit):
    """Per-query cost of span tracing: absent vs. disabled vs. enabled.

    Each configuration replays the same query batch on a fresh ISN over
    the shared reference index.  Rounds are *interleaved* across the
    configurations, so every round yields a back-to-back overhead ratio
    in which clock-speed drift largely cancels; the best round is the
    cleanest look at the true per-query cost.
    """
    import time

    rng = np.random.default_rng(5)
    texts = [q.text for q in service.query_log.sample_stream(40, rng)]

    def replay_batch(isn):
        for text in texts:
            isn.execute_serial(text)

    def run_all(rounds=9):
        nodes = {
            "no tracer (seed path)": IndexServingNode(service.partitioned),
            "tracer disabled": IndexServingNode(
                service.partitioned, tracer=Tracer(enabled=False)
            ),
            "tracer + metrics enabled": IndexServingNode(
                service.partitioned,
                tracer=Tracer(enabled=True),
                metrics=MetricsRegistry(),
            ),
        }
        samples = {name: [] for name in nodes}
        try:
            for isn in nodes.values():
                replay_batch(isn)  # warm-up
            for _ in range(rounds):
                for name, isn in nodes.items():
                    start = time.perf_counter()
                    replay_batch(isn)
                    samples[name].append(time.perf_counter() - start)
        finally:
            for isn in nodes.values():
                isn.close()
        return samples

    samples = benchmark.pedantic(run_all, rounds=1, iterations=1)

    per_query = {
        name: min(rounds) / len(texts) for name, rounds in samples.items()
    }
    baseline_rounds = samples["no tracer (seed path)"]

    def best_ratio(name):
        """Best same-round ratio vs. baseline (common-mode noise cancels)."""
        return min(
            observed / base
            for observed, base in zip(samples[name], baseline_rounds)
        )

    baseline = per_query["no tracer (seed path)"]
    emit(
        "fig10_tracing_overhead",
        format_table(
            ["configuration", "per_query_ms", "overhead_pct"],
            [
                [name, seconds * 1000, (seconds / baseline - 1.0) * 100]
                for name, seconds in per_query.items()
            ],
            title="F10b: per-query tracing overhead (min of 9 interleaved rounds, 40 queries)",
        ),
    )

    # Off-by-default contract: a disabled tracer costs one branch per
    # query, so its cleanest round must sit within 2% of the seed path.
    assert best_ratio("tracer disabled") <= 1.02
    # Even fully enabled, tracing + counters must stay a modest tax.
    assert best_ratio("tracer + metrics enabled") <= 1.25
