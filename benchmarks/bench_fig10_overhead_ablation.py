"""F10 (ablation) — Partitioning benefit vs. per-partition overhead.

The design-choice ablation DESIGN.md calls out: the tail-latency win of
partitioning depends on the per-partition overhead α.  We sweep α from
zero to many times the calibrated value and report the p99 at P=1 vs
P=8.  Shape: with small α partitioning is a large win; as α approaches
the per-query demand the win erodes and eventually inverts.
"""

from dataclasses import replace

from repro.core.partitioning import run_partitioning_sweep
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER

ALPHA_SCALES = [0.0, 1.0, 4.0, 16.0, 64.0]


def test_fig10_overhead_ablation(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.25 * capacity_qps
    base_alpha = cost_model.partition_overhead

    def sweep():
        rows = []
        for scale in ALPHA_SCALES:
            model = replace(
                cost_model, partition_overhead=base_alpha * scale
            )
            points = run_partitioning_sweep(
                BIG_SERVER,
                demand_model,
                [1, 8],
                rate,
                cost_model=model,
                num_queries=6_000,
                seed=0,
            )
            rows.append(
                (scale, points[0].summary.p99, points[1].summary.p99)
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit(
        "fig10_overhead_ablation",
        format_series(
            f"F10: p99 vs per-partition overhead (alpha_0={base_alpha*1000:.2f} ms)",
            "alpha_scale",
            [row[0] for row in rows],
            [
                ("p99_P1_ms", [row[1] * 1000 for row in rows]),
                ("p99_P8_ms", [row[2] * 1000 for row in rows]),
                (
                    "speedup_P8",
                    [row[1] / row[2] for row in rows],
                ),
            ],
        ),
    )

    speedups = [row[1] / row[2] for row in rows]
    # Zero overhead: near-ideal tail win from partitioning.
    assert speedups[0] > 1.5
    # The win decays monotonically-ish as overhead grows...
    assert speedups[-1] < speedups[0]
    # ...and at extreme overhead partitioning stops helping.
    assert speedups[-1] < 1.1
