"""T3 (extension) — Cluster provisioning: big vs low-power deployments.

The datacenter-level consequence of F6/F7: to serve a fixed aggregate
load under the tail-latency SLA, how many servers and how many watts
does each class need?  Shape: the low-power class needs several times
the node count (its per-node QoS-compliant throughput is lower) but
the *total* wall power of the deployment is still lower — the paper's
low-power conclusion restated in provisioning terms.
"""

from repro.core.provisioning import provisioning_study
from repro.core.reporting import format_table
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER

TARGET_QPS = 10_000.0


def test_table3_provisioning(benchmark, demand_model, cost_model, emit):
    qos = 4.0 * demand_model.mean_demand()

    rows = benchmark.pedantic(
        provisioning_study,
        args=([BIG_SERVER, SMALL_SERVER], demand_model, TARGET_QPS, qos),
        kwargs={
            "partition_counts": (1, 2, 4, 8, 16),
            "cost_model": cost_model,
            "num_queries": 4_000,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    emit(
        "table3_provisioning",
        format_table(
            [
                "server", "best_P", "per_node_qps", "nodes",
                "node_util", "total_kW", "W_per_kqps",
            ],
            [
                [
                    row.server_name,
                    row.best_partitions,
                    row.per_node_qps,
                    row.nodes_needed,
                    row.node_utilization,
                    row.total_power_watts / 1_000.0,
                    row.watts_per_kqps,
                ]
                for row in rows
            ],
            title=(
                f"T3: deployment for {TARGET_QPS:.0f} qps under "
                f"p99 <= {qos * 1000:.1f} ms"
            ),
        ),
    )

    by_name = {row.server_name: row for row in rows}
    big = by_name[BIG_SERVER.name]
    small = by_name[SMALL_SERVER.name]
    assert big.meets_qos and small.meets_qos
    # More low-power nodes...
    assert small.nodes_needed > 2 * big.nodes_needed
    # ...but less total power for the same served load.
    assert small.total_power_watts < big.total_power_watts
