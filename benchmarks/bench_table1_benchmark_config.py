"""T1 — Benchmark configuration & index statistics table.

Regenerates the characterization paper's configuration table: corpus
size, dictionary size, postings volume, posting-length skew, compressed
index size.  The benchmarked unit is full index construction (the
benchmark's setup phase).
"""

from repro.core.reporting import format_table
from repro.index.builder import IndexBuilder
from repro.index.stats import compute_statistics


def test_table1_benchmark_config(benchmark, service, emit):
    index = service.partitioned[0].index

    def build_index():
        return IndexBuilder(service.analyzer).build(service.collection)

    rebuilt = benchmark.pedantic(build_index, rounds=1, iterations=1)
    assert rebuilt.num_terms == index.num_terms

    stats = compute_statistics(index)
    rows = [[label, value] for label, value in stats.as_rows().items()]

    from repro.corpus.loganalysis import profile_query_log

    profile = profile_query_log(service.query_log, stream_length=40_000)
    rows.extend(
        [
            ["unique queries in log", profile.num_unique_queries],
            ["mean terms per query", round(profile.mean_terms_per_query, 2)],
            [
                "measured popularity Zipf exponent",
                round(profile.estimated_popularity_exponent, 3),
            ],
            [
                "top 1% queries' traffic share",
                round(profile.top_1pct_traffic_share, 3),
            ],
            [
                "top 10% queries' traffic share",
                round(profile.top_10pct_traffic_share, 3),
            ],
        ]
    )
    emit(
        "table1_benchmark_config",
        format_table(
            ["parameter", "value"],
            rows,
            title="T1: benchmark configuration and index statistics",
        ),
    )

    # Shape checks: a crawl-like index is Zipf-skewed.
    assert stats.num_documents == 6_000
    assert stats.p99_posting_length > 10 * stats.median_posting_length
    assert stats.compressed_size_bytes > 0
