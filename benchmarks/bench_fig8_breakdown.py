"""F8 — Latency component breakdown vs. partition count.

Regenerates the architecture-analysis figure: mean latency decomposed
into core-queue wait, parallel service, fork-join straggler skew, merge
wait, and merge service, across the partition sweep.  Paper shape:
parallel service shrinks ~1/P while skew and merge grow, explaining
both the tail win and the eventual flattening of F4.
"""

from repro.cluster.results import BREAKDOWN_COMPONENTS
from repro.core.breakdown import breakdown_vs_partitions
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER

PARTITIONS = [1, 2, 4, 8, 16]


def test_fig8_breakdown(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.35 * capacity_qps

    points = benchmark.pedantic(
        breakdown_vs_partitions,
        args=(BIG_SERVER, demand_model, PARTITIONS, rate),
        kwargs={"cost_model": cost_model, "num_queries": 8_000, "seed": 0},
        rounds=1,
        iterations=1,
    )

    emit(
        "fig8_breakdown",
        format_series(
            f"F8: mean latency components vs partitions ({rate:.0f} qps), ms",
            "partitions",
            PARTITIONS,
            [
                (
                    component,
                    [
                        p.mean_components[component] * 1000
                        for p in points
                    ],
                )
                for component in BREAKDOWN_COMPONENTS
                if component != "network_time"
            ]
            + [("total", [p.mean_latency * 1000 for p in points])],
        ),
    )

    by_partitions = {p.num_partitions: p.mean_components for p in points}
    # Parallel service shrinks with P...
    assert (
        by_partitions[8]["parallel_service"]
        < 0.5 * by_partitions[1]["parallel_service"]
    )
    # ...merge grows with P, and skew only exists for P > 1.
    assert (
        by_partitions[16]["merge_service"]
        > by_partitions[1]["merge_service"]
    )
    assert by_partitions[1]["straggler_skew"] == 0.0
    assert by_partitions[8]["straggler_skew"] > 0.0
