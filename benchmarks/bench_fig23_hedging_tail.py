"""F23 — Tail-tolerant fan-out: hedge delay × deadline sweep.

The paper's partitioning study shrinks the *intrinsic* tail; this
figure extends the story to *extrinsic* stragglers (whole-server GC
pauses) and the request-level mitigations the tail-tolerance layer
adds: hedged backup requests to a second replica, and per-shard
deadlines that trade a sliver of coverage for a bounded tail.

Scenario: a 4-shard × 2-replica cluster whose every replica pauses for
25 ms about once a second (~2.5% pause fraction).  Unhedged, the
cluster's p99/p99.9 is pause-bound — the broker waits out whichever
shard is frozen.  Hedging re-issues the straggling shard request to
the sibling replica, which is almost never paused at the same moment,
so the tail collapses to hedge-delay + service time.

Acceptance contract (mirrors ISSUE criteria):

- hedging cuts p99.9 by ≥ 30% vs. no hedging at equal offered load;
- mean coverage stays ≥ 0.95 in every swept cell;
- an *inert* policy (``HedgingPolicy()``) routes through the seed's
  analytic fan-out path and reproduces its latencies within 2%
  (bit-identical, in fact — same code path, same RNG streams).

Run standalone (CI smoke): ``python benchmarks/bench_fig23_hedging_tail.py --quick``
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import (
    BIG_SERVER,
    ClusterConfig,
    ClusterModel,
    HedgingPolicy,
    HiccupConfig,
    LognormalDemand,
    format_table,
)

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)  # mean ~14 ms, heavy tail
PAUSES = HiccupConfig(mean_interval=1.0, pause_duration=0.025)
RATE_QPS = 150.0
NUM_QUERIES = 12_000
QUICK_QUERIES = 2_000
WARMUP = 0.1

#: The sweep grid: hedge delay (None = no hedging) × deadline budget.
#: The 20 ms deadline sits under the 25 ms pause, so without hedging it
#: converts pause-struck shard requests into coverage loss.
HEDGE_DELAYS = (None, 0.005, 0.010)
DEADLINES = (None, 0.020)


def _run_cell(hedge_delay, deadline, num_queries, seed=0):
    hedging = None
    if hedge_delay is not None or deadline is not None:
        hedging = HedgingPolicy(hedge_delay_s=hedge_delay, deadline_s=deadline)
    model = ClusterModel(
        ClusterConfig(
            num_servers=4,
            spec=BIG_SERVER,
            num_partitions=4,
            replicas_per_shard=2,
            hiccups=PAUSES,
            hedging=hedging,
        )
    )
    return model.run(
        rate_qps=RATE_QPS, num_queries=num_queries, demand=DEMAND, seed=seed
    )


def _sweep(num_queries):
    rows = []
    for hedge_delay in HEDGE_DELAYS:
        for deadline in DEADLINES:
            result = _run_cell(hedge_delay, deadline, num_queries)
            latencies = result.latencies(WARMUP)
            p50, p99, p999 = np.percentile(latencies, [50, 99, 99.9])
            rows.append(
                {
                    "hedge_ms": (
                        hedge_delay * 1000 if hedge_delay is not None else None
                    ),
                    "deadline_ms": (
                        deadline * 1000 if deadline is not None else None
                    ),
                    "p50": float(p50),
                    "p99": float(p99),
                    "p999": float(p999),
                    "coverage": result.mean_coverage(WARMUP),
                    "hedges_issued": result.hedges_issued,
                    "hedges_won": result.hedges_won,
                    "deadline_misses": result.deadline_misses,
                }
            )
    return rows


def _format(rows, num_queries):
    def cell(value):
        return "off" if value is None else f"{value:.0f}"

    return format_table(
        [
            "hedge_ms",
            "deadline_ms",
            "p50_ms",
            "p99_ms",
            "p999_ms",
            "coverage",
            "hedged",
            "won",
            "missed",
        ],
        [
            [
                cell(row["hedge_ms"]),
                cell(row["deadline_ms"]),
                row["p50"] * 1000,
                row["p99"] * 1000,
                row["p999"] * 1000,
                row["coverage"],
                row["hedges_issued"],
                row["hedges_won"],
                row["deadline_misses"],
            ]
            for row in rows
        ],
        title=(
            f"F23: hedge delay x deadline under 25ms GC pauses "
            f"({RATE_QPS:.0f} qps, {num_queries} queries, 4 shards x 2 replicas)"
        ),
    )


def _check(rows) -> None:
    """The acceptance assertions, shared by pytest and --quick modes."""
    baseline = next(
        r for r in rows if r["hedge_ms"] is None and r["deadline_ms"] is None
    )
    hedged = [r for r in rows if r["hedge_ms"] is not None]
    assert hedged, "sweep produced no hedged cells"
    best = min(r["p999"] for r in hedged)
    assert best <= 0.7 * baseline["p999"], (
        f"hedging must cut p99.9 by >=30%: best {best * 1000:.2f} ms "
        f"vs baseline {baseline['p999'] * 1000:.2f} ms"
    )
    for row in rows:
        assert row["coverage"] >= 0.95, f"coverage criterion violated: {row}"
    for row in hedged:
        assert row["hedges_won"] > 0, f"hedges never won: {row}"


def _check_inert_policy_matches_seed_path(num_queries) -> None:
    """An inert policy must reproduce the seed fan-out exactly.

    ``HedgingPolicy()`` enables nothing, so the config's
    ``tail_tolerant`` flag stays False and the original analytic path
    runs — same code, same RNG stream names.  The 2% acceptance bound
    is asserted on top of what is in practice bit-identity.
    """
    plain = ClusterConfig(num_servers=4, spec=BIG_SERVER, num_partitions=4)
    inert = ClusterConfig(
        num_servers=4,
        spec=BIG_SERVER,
        num_partitions=4,
        hedging=HedgingPolicy(),
    )
    base = ClusterModel(plain).run(
        rate_qps=RATE_QPS, num_queries=num_queries, demand=DEMAND, seed=0
    )
    shimmed = ClusterModel(inert).run(
        rate_qps=RATE_QPS, num_queries=num_queries, demand=DEMAND, seed=0
    )
    base_lat = base.latencies()
    shim_lat = shimmed.latencies()
    worst = float(np.max(np.abs(shim_lat / base_lat - 1.0)))
    assert worst <= 0.02, f"inert policy drifted {worst:.4f} from seed path"
    assert np.array_equal(base_lat, shim_lat), (
        "inert policy should be bit-identical to the seed fan-out"
    )


def test_fig23_hedging_tail(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: _sweep(NUM_QUERIES), rounds=1, iterations=1
    )
    emit("fig23_hedging_tail", _format(rows, NUM_QUERIES))
    _check(rows)


def test_fig23_inert_policy_matches_seed_path():
    _check_inert_policy_matches_seed_path(QUICK_QUERIES)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: {QUICK_QUERIES} queries instead of {NUM_QUERIES}",
    )
    args = parser.parse_args(argv)
    num_queries = QUICK_QUERIES if args.quick else NUM_QUERIES
    rows = _sweep(num_queries)
    print(_format(rows, num_queries))
    _check(rows)
    _check_inert_policy_matches_seed_path(num_queries)
    print("fig23 acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
