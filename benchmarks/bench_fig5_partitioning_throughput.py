"""F5 — QoS-bounded maximum throughput vs. partition count.

Regenerates the throughput side of the partitioning study: the largest
sustainable QPS whose p99 stays under the QoS target, per partition
count.  Paper shape: moderate partitioning buys throughput headroom
under a tail-latency SLA (the tail shrinks, so the QoS binds later),
but the per-partition work inflation eventually claws it back.

The native instance behind the calibration honors ``--bench-backend``:
``pytest benchmarks/bench_fig5_partitioning_throughput.py
--bench-backend=processes`` calibrates against the GIL-free process
backend, the configuration whose intra-node scaling the DES parity test
(``tests/test_fanout_hedging.py``) checks on multi-core runners.
"""

from repro.core.capacity import capacity_vs_partitions
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER

PARTITIONS = [1, 2, 4, 8, 16]


def test_fig5_partitioning_throughput(
    benchmark, demand_model, cost_model, emit, bench_backend
):
    # QoS: 2.5x the mean unloaded service time — a tight tail target
    # that an unpartitioned server can only meet at low load.
    qos = 2.5 * demand_model.mean_demand()

    points = benchmark.pedantic(
        capacity_vs_partitions,
        args=(BIG_SERVER, demand_model, PARTITIONS, qos),
        kwargs={
            "cost_model": cost_model,
            "num_queries": 5_000,
            "tolerance_qps": 0.02
            * BIG_SERVER.compute_capacity
            / demand_model.mean_demand(),
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    emit(
        "fig5_partitioning_throughput",
        format_series(
            f"F5: max throughput under p99 <= {qos * 1000:.1f} ms "
            f"(backend={bench_backend})",
            "partitions",
            PARTITIONS,
            [
                ("max_qps", [p.max_qps for p in points]),
                ("p99_at_max_ms", [p.p99_at_max * 1000 for p in points]),
                ("util_at_max", [p.utilization_at_max for p in points]),
            ],
        ),
        data={
            "figure": "fig5",
            "backend": bench_backend,
            "qos_ms": qos * 1000,
            "points": [
                {
                    "partitions": p.num_partitions,
                    "max_qps": p.max_qps,
                    "p99_at_max_ms": p.p99_at_max * 1000,
                    "util_at_max": p.utilization_at_max,
                }
                for p in points
            ],
        },
    )

    by_partitions = {p.num_partitions: p for p in points}
    # Partitioning must buy QoS-bounded throughput over P=1...
    assert by_partitions[4].max_qps > by_partitions[1].max_qps
    # ...and every reported point respects the QoS.
    for point in points:
        if point.max_qps > 0:
            assert point.p99_at_max <= qos
