"""F7 — Energy per query at matched QoS: big vs. low-power server.

Regenerates the energy comparison: each server picks its best
QoS-compliant operating point (partition count + max rate under the
p99 target), and we report wall power and joules per query there.
Paper shape: the low-power server serves each query with a fraction of
the big server's energy, at the cost of lower per-node throughput.
"""

from repro.core.lowpower import matched_qos_energy
from repro.core.reporting import format_table
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER

PARTITIONS = [1, 2, 4, 8, 16]


def test_fig7_energy(benchmark, demand_model, cost_model, emit):
    qos = 4.0 * demand_model.mean_demand()

    rows = benchmark.pedantic(
        matched_qos_energy,
        args=([BIG_SERVER, SMALL_SERVER], demand_model, qos, PARTITIONS),
        kwargs={"cost_model": cost_model, "num_queries": 4_000, "seed": 0},
        rounds=1,
        iterations=1,
    )

    emit(
        "fig7_energy",
        format_table(
            [
                "server", "partitions", "qps", "p99_ms", "util",
                "power_W", "J_per_query",
            ],
            [
                [
                    row.server_name,
                    row.num_partitions,
                    row.qps,
                    row.p99_seconds * 1000,
                    row.utilization,
                    row.power_watts,
                    row.energy_per_query_joules,
                ]
                for row in rows
            ],
            title=f"F7: matched-QoS operating points (p99 <= {qos*1000:.1f} ms)",
        ),
    )

    by_server = {row.server_name: row for row in rows}
    big = by_server[BIG_SERVER.name]
    small = by_server[SMALL_SERVER.name]
    assert big.meets_qos and small.meets_qos
    # Headline: the microserver is more energy-efficient per query...
    assert small.energy_per_query_joules < big.energy_per_query_joules
    # ...while the big server still wins on per-node throughput.
    assert big.qps > small.qps
