"""F27 — Capacity-model-driven autoscaling under diurnal + flash traffic.

The provisioning table (T3) sizes a *static* fleet; this figure asks
what that static sizing costs against traffic that spends most of the
day far below peak.  A compressed diurnal day (raised-cosine envelope)
with a flash crowd plays against three provisioning policies over the
identical arrival trace:

- **static** — peak provisioning from the analytical capacity model:
  enough replicas for the worst minute, held all day (the baseline an
  autoscaler must beat);
- **reactive** — classic utilization target-tracking, which sees load
  only after it arrives and so trails every ramp by the warm-up time;
- **model** — predict-ahead: extrapolate the observed arrival rate one
  replica warm-up into the future and ask the capacity model for the
  replica count whose *predicted p99* meets the SLO at that rate.

Acceptance contract (mirrors ISSUE criteria):

- the capacity model's p99 stays within 15% of the DES across a
  below-knee load sweep (1 and 2 replicas);
- model-driven autoscaling meets the p99 SLO (>= 99% of offered
  queries inside it, sheds counted as misses) with >= 20% fewer
  replica-hours than static peak provisioning;
- the whole study is deterministic under a fixed seed.

The 25%-tolerance validation against the *native* engine (measured
M/G/1 p99 via :class:`~repro.engine.driver.OpenLoopDriver`) runs in
pytest mode only — it executes real queries and needs the benchmark
instance; the standalone path stays DES-only so the CI smoke is fast
and exactly reproducible.

Run standalone (CI smoke):
``python benchmarks/bench_fig27_autoscaling.py --quick``
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.api import (
    CapacityModel,
    ClusterConfig,
    ClusterModel,
    DiurnalArrivals,
    FlashCrowd,
    LognormalDemand,
    OverloadPolicy,
    ServerSpec,
    ServiceTimeProfile,
    format_table,
    peak_replicas,
    static_replica_hours,
)
from repro.sim.autoscale import (
    AutoscaleConfig,
    ModelPolicy,
    ReactivePolicy,
    StaticPolicy,
    run_autoscaled_cluster,
)
from repro.sim.random import RandomStreams

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)  # mean ~14 ms, heavy tail

#: A deliberately small node so replica counts (not raw QPS) carry the
#: dynamics: ~69 qps of per-replica capacity at this demand.
SPEC = ServerSpec(
    name="autoscale-node",
    num_cores=2,
    core_speed=0.5,
    idle_power_watts=30.0,
    peak_power_watts=90.0,
)

SLO_S = 0.180
SEED = 20_26

#: Compressed "day" for the full study and the CI smoke.
FULL = dict(horizon_s=3_600.0, base_qps=40.0, peak_qps=300.0)
QUICK = dict(horizon_s=1_800.0, base_qps=8.0, peak_qps=110.0)

#: Below-knee fractions of saturation for the model-vs-DES sweep.
#: 0.7 is the top: past it the DES p99 estimate itself swings +-10%
#: between seeds (busy-period luck), drowning the model bias.
VALIDATION_LOADS = (0.3, 0.5, 0.6, 0.7)
DES_TOLERANCE = 0.15
NATIVE_TOLERANCE = 0.25

#: PR 3 admission control in front of the broker: a transient that
#: outruns even predict-ahead scaling degrades by bounded shedding.
OVERLOAD = OverloadPolicy(
    max_concurrency=600,
    queue_limit=300,
    codel_target_delay_s=0.05,
    codel_interval_s=0.1,
)


def _capacity_model() -> CapacityModel:
    profile = ServiceTimeProfile.from_demand_model(DEMAND)
    return CapacityModel(profile=profile, spec=SPEC)


def _arrivals(horizon_s: float, base_qps: float, peak_qps: float):
    """The diurnal + flash-crowd envelope for one compressed day."""
    return DiurnalArrivals(
        base_qps=base_qps,
        peak_qps=peak_qps,
        period_s=horizon_s,
        peak_time_s=0.6 * horizon_s,
        flash_crowds=(
            FlashCrowd(
                start_s=0.3 * horizon_s,
                magnitude=1.8,
                ramp_s=0.05 * horizon_s,
                hold_s=0.067 * horizon_s,
                decay_s=0.083 * horizon_s,
            ),
        ),
    )


def _autoscale_config(initial: int, static_n: int) -> AutoscaleConfig:
    return AutoscaleConfig(
        spec=SPEC,
        shards=1,
        initial_replicas=initial,
        min_replicas=1,
        max_replicas=max(12, static_n),
        warmup_s=90.0,
        control_interval_s=30.0,
        scale_down_cooldown_s=180.0,
        scale_down_stability=3,
        overload=OVERLOAD,
    )


def _realize(arrivals, horizon_s: float, seed: int = SEED):
    """One common trace every policy replays (common random numbers)."""
    streams = RandomStreams(seed)
    times = arrivals.realize_trace(horizon_s, streams.stream("arrivals"))
    demands = DEMAND.demands(times.size, streams.stream("demands"))
    return times, demands


def _policy_suite(model: CapacityModel, arrivals, horizon_s: float):
    """(policy, initial_replicas) for static / reactive / model."""
    static_n = peak_replicas(
        model, arrivals, SLO_S, horizon_s=horizon_s, headroom=1.1
    )
    start_qps = float(arrivals.envelope_qps(0.0)) * 1.15
    dynamic_start = model.replicas_for_slo(start_qps, SLO_S)
    lookahead = 90.0 + 30.0  # warm-up + one control interval
    return static_n, [
        (StaticPolicy(static_n), static_n),
        (ReactivePolicy(target_utilization=0.55), dynamic_start),
        (
            ModelPolicy(
                model, SLO_S, lookahead_s=lookahead, headroom=1.15
            ),
            dynamic_start,
        ),
    ]


def _run_policies(params, seed: int = SEED):
    model = _capacity_model()
    arrivals = _arrivals(**params)
    horizon = params["horizon_s"]
    times, demands = _realize(arrivals, horizon, seed)
    static_n, suite = _policy_suite(model, arrivals, horizon)
    rows = []
    for policy, initial in suite:
        config = _autoscale_config(initial, static_n)
        result = run_autoscaled_cluster(
            config, policy, times, demands, horizon_s=horizon, seed=seed
        )
        latencies = result.latencies()
        rows.append(
            {
                "policy": policy.name,
                "replica_hours": result.replica_hours(),
                "static_hours": static_replica_hours(static_n, horizon),
                "p50": float(np.quantile(latencies, 0.50)),
                "p99": float(np.quantile(latencies, 0.99)),
                "attainment": result.slo_attainment(SLO_S),
                "shed": result.shed_count,
                "scale_ups": result.scale_up_events,
                "scale_downs": result.scale_down_events,
                "max_replicas": result.max_provisioned(),
                "queries": len(result.records),
            }
        )
    return static_n, rows


def _validate_vs_des(num_queries: int, replica_counts=(1, 2)):
    """Model p99 vs DES p99 across a below-knee load sweep.

    Each point pools latencies from four independently seeded DES
    runs: near the knee a single run's p99 swings +-20% with the luck
    of its longest busy period, which would drown the model bias the
    sweep is meant to bound.
    """
    model = _capacity_model()
    points = []
    for replicas in replica_counts:
        saturation = model.saturation_qps(1, replicas)
        for fraction in VALIDATION_LOADS:
            qps = saturation * fraction
            predicted = model.predict(qps, shards=1, replicas=replicas)
            config = ClusterConfig(
                num_servers=1, spec=SPEC, replicas_per_shard=replicas
            )
            pooled = [
                ClusterModel(config)
                .run(
                    rate_qps=qps,
                    num_queries=num_queries,
                    demand=DEMAND,
                    seed=SEED + offset,
                )
                .latencies(0.05)
                for offset in range(4)
            ]
            des_p99 = float(np.quantile(np.concatenate(pooled), 0.99))
            points.append(
                {
                    "replicas": replicas,
                    "load_fraction": fraction,
                    "qps": qps,
                    "model_p99": predicted.p99_s,
                    "des_p99": des_p99,
                    "rel_error": (predicted.p99_s - des_p99) / des_p99,
                }
            )
    return points


def _format_validation(points):
    return format_table(
        ["replicas", "load_x", "qps", "model_p99_ms", "des_p99_ms", "err_pct"],
        [
            [
                p["replicas"],
                p["load_fraction"],
                p["qps"],
                p["model_p99"] * 1000,
                p["des_p99"] * 1000,
                p["rel_error"] * 100,
            ]
            for p in points
        ],
        title="F27a: capacity-model p99 vs DES (below-knee sweep)",
    )


def _format_policies(static_n, rows, params):
    return format_table(
        [
            "policy",
            "replica_hrs",
            "saving_pct",
            "p50_ms",
            "p99_ms",
            "slo_attain",
            "shed",
            "ups",
            "downs",
            "max_rep",
        ],
        [
            [
                row["policy"],
                row["replica_hours"],
                100.0 * (1.0 - row["replica_hours"] / row["static_hours"]),
                row["p50"] * 1000,
                row["p99"] * 1000,
                row["attainment"],
                row["shed"],
                row["scale_ups"],
                row["scale_downs"],
                row["max_replicas"],
            ]
            for row in rows
        ],
        title=(
            f"F27b: autoscaling over a {params['horizon_s'] / 3600:.2f}h "
            f"diurnal+flash day (SLO p99 <= {SLO_S * 1000:.0f} ms, "
            f"static = {static_n} replicas)"
        ),
    )


def _structured_data(static_n, rows, validation, params):
    by_policy = {row["policy"]: row for row in rows}
    model_row = by_policy["model"]
    return {
        "figure": "fig27",
        "slo_ms": SLO_S * 1000,
        "horizon_s": params["horizon_s"],
        "static_replicas": static_n,
        "policies": rows,
        "savings_pct": 100.0
        * (1.0 - model_row["replica_hours"] / model_row["static_hours"]),
        "model_vs_des_max_err_pct": 100.0
        * max(abs(p["rel_error"]) for p in validation),
        "seed": SEED,
    }


def _check(static_n, rows, validation) -> None:
    """The acceptance assertions, shared by pytest and --quick modes."""
    worst = max(abs(p["rel_error"]) for p in validation)
    assert worst <= DES_TOLERANCE, (
        f"capacity model must track the DES p99 within "
        f"{DES_TOLERANCE:.0%} below the knee; worst error {worst:.1%}"
    )
    by_policy = {row["policy"]: row for row in rows}
    static = by_policy["static"]
    model = by_policy["model"]
    assert static["attainment"] >= 0.99, (
        f"static peak provisioning must meet the SLO "
        f"(attainment {static['attainment']:.4f})"
    )
    assert model["attainment"] >= 0.99, (
        f"model-driven autoscaling must meet the SLO "
        f"(attainment {model['attainment']:.4f})"
    )
    assert model["replica_hours"] <= 0.8 * static["replica_hours"], (
        f"model-driven autoscaling must save >= 20% replica-hours: "
        f"{model['replica_hours']:.2f} vs static "
        f"{static['replica_hours']:.2f}"
    )


def _check_deterministic(params) -> None:
    """Same seed → bit-identical trace, latencies, and replica-hours."""
    first_static, first = _run_policies(params)
    second_static, second = _run_policies(params)
    assert first_static == second_static
    assert first == second, "autoscaling study must be deterministic"


def test_fig27_autoscaling(benchmark, emit):
    def _study():
        validation = _validate_vs_des(num_queries=25_000)
        static_n, rows = _run_policies(FULL)
        return static_n, rows, validation

    static_n, rows, validation = benchmark.pedantic(
        _study, rounds=1, iterations=1
    )
    emit(
        "fig27_autoscaling",
        _format_validation(validation)
        + "\n\n"
        + _format_policies(static_n, rows, FULL),
        data=_structured_data(static_n, rows, validation, FULL),
    )
    _check(static_n, rows, validation)


def test_fig27_deterministic():
    _check_deterministic(QUICK)


def test_fig27_native_validation(service):
    """Model p99 within 25% of the native-path M/G/1 p99.

    One median-of-3 native measurement pass yields the service-time
    sample; the "measured" side is then the *exact* FCFS sample path —
    the same Lindley recursion ``OpenLoopDriver(mode="replay")`` runs —
    over those natively measured services under pooled independent
    Poisson arrival sequences.  Sharing the sample between the two
    sides is deliberate: the model's queueing layer (Erlang-C wait
    probability, Allen–Cunneen mean, exponential conditional wait) is
    what is under test, and a second measurement pass would only add
    box-speed drift *between* passes — which on a shared single-core
    runner routinely exceeds the modelling error being gated.
    """
    from repro.capacity import CapacityModel, ServiceTimeProfile
    from repro.cluster.server import PartitionModelConfig
    from repro.engine.driver import replay_serial

    rng = np.random.default_rng(3)
    profile_queries = service.query_log.sample_stream(1_000, rng)
    measured = replay_serial(
        service.isn, profile_queries, repeats=3, warmup=10
    )
    service_s = np.asarray(
        [m.service_seconds for m in measured], dtype=np.float64
    )
    profile = ServiceTimeProfile.from_measurements(service_s)
    # Measured service times already include every native overhead, so
    # the model's cost layer must stay flat (total_work == demand).
    model = CapacityModel(
        profile=profile,
        spec=ServerSpec(
            name="native-core",
            num_cores=1,
            core_speed=1.0,
            idle_power_watts=1.0,
            peak_power_watts=2.0,
        ),
        partitioning=PartitionModelConfig(
            partition_overhead=0.0, merge_base=0.0, merge_per_partition=0.0
        ),
        broker_merge_per_server=0.0,
    )
    saturation = model.saturation_qps(1, 1)

    def fcfs_p99(qps, seed):
        """Lindley recursion over the measured services — identical to
        ``OpenLoopDriver._run_replay``'s wait derivation."""
        gaps = np.random.default_rng(seed).exponential(
            1.0 / qps, service_s.size
        )
        wait = 0.0
        latencies = np.empty_like(service_s)
        latencies[0] = service_s[0]
        for i in range(1, service_s.size):
            wait = max(0.0, wait + service_s[i - 1] - gaps[i])
            latencies[i] = wait + service_s[i]
        return latencies

    errors = {}
    for fraction in (0.25, 0.4, 0.55, 0.65):
        qps = saturation * fraction
        predicted = model.predict(qps)
        pooled = np.concatenate(
            [fcfs_p99(qps, seed) for seed in (0, 1, 2, 3)]
        )
        native_p99 = float(np.quantile(pooled, 0.99))
        errors[fraction] = (predicted.p99_s - native_p99) / native_p99
    worst = max(abs(e) for e in errors.values())
    assert worst <= NATIVE_TOLERANCE, (
        f"capacity model must track measured native p99 within "
        f"{NATIVE_TOLERANCE:.0%} below the knee; errors {errors}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: compressed trace and smaller DES sweeps",
    )
    args = parser.parse_args(argv)
    params = QUICK if args.quick else FULL
    validation = _validate_vs_des(
        num_queries=6_000 if args.quick else 25_000
    )
    print(_format_validation(validation))
    static_n, rows = _run_policies(params)
    print(_format_policies(static_n, rows, params))
    _check(static_n, rows, validation)
    _check_deterministic(QUICK)

    from _structured import write_bench_json

    write_bench_json(
        "fig27", _structured_data(static_n, rows, validation, params)
    )
    print("fig27 acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
