"""Machine-readable ``BENCH_<fig>.json`` summaries at the repo root.

The rendered tables in ``benchmarks/results/`` are for humans; the
growth loop and perf-trajectory tooling read repo-root ``BENCH_*.json``
files instead.  Both the pytest ``emit`` fixture (``data=`` argument)
and the standalone ``--quick`` entry points of the bench scripts write
through :func:`write_bench_json`, so the JSON is refreshed by whichever
path ran last.

Importable from both execution modes: pytest puts ``benchmarks/`` on
``sys.path`` for the rootdir-less bench modules, and running a bench as
a script puts its directory there too.
"""

from __future__ import annotations

import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def bench_json_path(name: str) -> Path:
    """Repo-root path of the summary for ``name`` (e.g. ``"fig27"``)."""
    return REPO_ROOT / f"BENCH_{name}.json"


def write_bench_json(name: str, data: dict) -> Path:
    """Write one figure's machine-readable summary; returns the path."""
    path = bench_json_path(name)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"[bench data written to {path}]")
    return path
