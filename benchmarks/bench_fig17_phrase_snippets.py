"""F17 (extension) — Functionality costs: phrase queries and snippets.

Characterizes the cost of the benchmark's richer result-page features
against plain bag-of-words retrieval: (a) the same term pairs run as
OR, AND, and phrase queries; (b) snippet generation per result page.
Shape: AND ≤ OR in work (intersection skips), phrase > AND (position
verification on top of intersection), and snippets add a per-hit cost
proportional to document length.
"""

import time

import numpy as np

from repro.core.reporting import format_table
from repro.engine.snippets import SnippetGenerator
from repro.search.daat import score_daat
from repro.search.phrase import score_phrase
from repro.search.query import ParsedQuery, QueryMode


def _adjacent_pairs(service, count):
    """Real adjacent term pairs from documents (so phrases exist)."""
    analyzer = service.analyzer
    pairs = []
    for document in service.collection:
        terms = analyzer.analyze(document.body)
        if len(terms) >= 2 and terms[0] != terms[1]:
            pairs.append((terms[0], terms[1]))
        if len(pairs) >= count:
            break
    return pairs


def test_fig17_phrase_snippets(
    benchmark, service, positional_index, emit
):
    pairs = _adjacent_pairs(service, 150)
    index = positional_index.index

    def timed(callable_):
        start = time.perf_counter()
        result = callable_()
        return result, time.perf_counter() - start

    def run_characterization():
        rows = {"or": [], "and": [], "phrase": []}
        phrase_hits_total = 0
        for pair in pairs:
            _, or_seconds = timed(
                lambda: score_daat(index, ParsedQuery(terms=pair, k=10))
            )
            _, and_seconds = timed(
                lambda: score_daat(
                    index,
                    ParsedQuery(terms=pair, mode=QueryMode.AND, k=10),
                )
            )
            hits, phrase_seconds = timed(
                lambda: score_phrase(positional_index, pair, k=10)
            )
            phrase_hits_total += len(hits)
            rows["or"].append(or_seconds)
            rows["and"].append(and_seconds)
            rows["phrase"].append(phrase_seconds)
        return rows, phrase_hits_total

    (rows, phrase_hits_total) = benchmark.pedantic(
        run_characterization, rounds=1, iterations=1
    )

    means = {mode: float(np.mean(times)) * 1000 for mode, times in rows.items()}
    p99s = {
        mode: float(np.percentile(times, 99)) * 1000
        for mode, times in rows.items()
    }

    # Snippet cost on real result pages.
    generator = SnippetGenerator(service.analyzer, window_tokens=30)
    snippet_times = []
    for pair in pairs[:50]:
        hits = score_daat(index, ParsedQuery(terms=pair, k=10))
        start = time.perf_counter()
        for hit in hits:
            generator.snippet(service.collection[hit.doc_id], list(pair))
        snippet_times.append(time.perf_counter() - start)
    snippet_mean = float(np.mean(snippet_times)) * 1000

    emit(
        "fig17_phrase_snippets",
        format_table(
            ["query mode", "mean_ms", "p99_ms"],
            [
                ["OR (bag of words)", means["or"], p99s["or"]],
                ["AND (conjunctive)", means["and"], p99s["and"]],
                ["phrase (positional)", means["phrase"], p99s["phrase"]],
            ],
            title="F17a: two-term query cost by evaluation mode",
        )
        + f"\n\nF17b: snippet generation for a 10-hit page: "
        f"{snippet_mean:.2f} ms mean "
        f"(= {snippet_mean / means['or'] * 100:.0f}% of the OR query cost)",
    )

    # Shape: phrases found, AND cheaper than OR, phrase dearer than AND.
    assert phrase_hits_total > 0
    assert means["and"] < means["or"]
    assert means["phrase"] > means["and"]
