"""T2 — Index-size scaling: service time vs. corpus size (native).

Regenerates the characterization's scaling table: build the benchmark
at several corpus sizes (same vocabulary, same query log) and measure
how index statistics and serial service times grow.  Shape: postings
volume and service time grow near-linearly with document count; the
tail ratio stays roughly constant (the skew is a property of the
vocabulary, not the corpus size).
"""

from dataclasses import replace

from repro.core.characterization import index_scaling_study
from repro.core.reporting import format_table

from conftest import BENCH_CORPUS

SIZES = [1_500, 3_000, 6_000, 12_000]


def test_table2_index_scaling(benchmark, emit):
    configs = [
        replace(BENCH_CORPUS, num_documents=size) for size in SIZES
    ]

    rows = benchmark.pedantic(
        index_scaling_study,
        args=(configs,),
        kwargs={"queries_per_size": 120, "repeats": 1, "seed": 0},
        rounds=1,
        iterations=1,
    )

    emit(
        "table2_index_scaling",
        format_table(
            [
                "documents", "terms", "postings",
                "mean_ms", "p50_ms", "p99_ms", "p99/p50",
            ],
            [
                [
                    row.num_documents,
                    row.index_stats.num_terms,
                    row.index_stats.total_postings,
                    row.service_summary.mean * 1000,
                    row.service_summary.p50 * 1000,
                    row.service_summary.p99 * 1000,
                    row.service_summary.tail_ratio,
                ]
                for row in rows
            ],
            title="T2: index-size scaling (native, single partition)",
        ),
    )

    # Shape: postings and service time grow with corpus size.
    assert rows[-1].index_stats.total_postings > 4 * rows[0].index_stats.total_postings
    assert rows[-1].service_summary.mean > 2 * rows[0].service_summary.mean
    # The heavy tail is present at every size.
    for row in rows:
        assert row.service_summary.tail_ratio > 1.5
