"""F11 (extension) — Result caching: hit rates and latency effect.

Characterizes the benchmark's front-end result cache: (a) LRU hit rate
vs. cache capacity under the log's Zipfian popularity, (b) the latency
distribution at fixed load with and without the cache.  Shape: a cache
holding a few percent of the unique queries already absorbs a large
traffic share; the mean latency collapses with the hit rate while the
p99 — made of the long, missing queries — barely moves.  Caching
complements partitioning; it does not replace it.
"""

from repro.cluster.simulation import ClusterConfig
from repro.core.caching import caching_latency_study, hit_rate_vs_capacity
from repro.core.reporting import format_series, format_table
from repro.servers.catalog import BIG_SERVER

CAPACITIES = [10, 30, 100, 300, 1_000]
LATENCY_CAPACITIES = [0, 100, 1_000]


def test_fig11_query_cache(
    benchmark, service, demand_model, cost_model, emit
):
    hit_rates = benchmark.pedantic(
        hit_rate_vs_capacity,
        args=(service.query_log, CAPACITIES),
        kwargs={"num_queries": 30_000, "seed": 0},
        rounds=1,
        iterations=1,
    )

    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    points = caching_latency_study(
        ClusterConfig(spec=BIG_SERVER, partitioning=cost_model),
        demand_model,
        cache_capacities=LATENCY_CAPACITIES,
        rate_qps=0.4 * capacity_qps,
        num_queries=6_000,
        seed=0,
    )

    emit(
        "fig11_query_cache",
        format_series(
            "F11a: LRU hit rate vs cache capacity "
            f"({len(service.query_log)} unique queries)",
            "capacity",
            CAPACITIES,
            [("hit_rate", hit_rates)],
        )
        + "\n\n"
        + format_table(
            ["capacity", "hit_rate", "mean_ms", "p50_ms", "p99_ms", "util"],
            [
                [
                    point.cache_capacity,
                    point.hit_rate,
                    point.summary.mean * 1000,
                    point.summary.p50 * 1000,
                    point.summary.p99 * 1000,
                    point.utilization,
                ]
                for point in points
            ],
            title="F11b: latency at fixed load, with/without result cache",
        ),
    )

    # Shape: hit rate grows (concavely) with capacity.
    assert hit_rates == sorted(hit_rates)
    assert hit_rates[1] > 0.15  # 3% of uniques -> outsize traffic share
    # Shape: cache cuts the mean more than the tail.
    uncached, *cached = points
    assert cached[-1].summary.mean < 0.7 * uncached.summary.mean
    mean_cut = uncached.summary.mean / cached[-1].summary.mean
    p99_cut = uncached.summary.p99 / cached[-1].summary.p99
    assert mean_cut > p99_cut
