"""Shared fixtures for the table/figure regeneration benchmarks.

The expensive artifacts — the native benchmark instance (corpus +
partitioned index + ISN) and the calibration run that bridges native
measurements into the simulator — are built once per pytest session and
shared by every bench.  Each bench writes its regenerated table to
``benchmarks/results/<id>.txt`` and prints it, so one
``pytest benchmarks/ --benchmark-only`` run refreshes everything that
EXPERIMENTS.md records.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.calibration import (
    calibrate_isn,
    cost_model_from_calibration,
    demand_model_from_calibration,
)
from repro.corpus.generator import CorpusConfig
from repro.corpus.querylog import QueryLogConfig
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.service import SearchService, SearchServiceConfig

#: The reference benchmark instance every bench measures.
BENCH_CORPUS = CorpusConfig(
    num_documents=6_000,
    vocabulary=VocabularyConfig(size=30_000, exponent=1.0, seed=7),
    mean_length=250,
    length_sigma=0.7,
    seed=42,
)
BENCH_QUERY_LOG = QueryLogConfig(num_unique_queries=1_000, seed=1234)

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    """Execution-backend selection for the native side of the benches.

    ``--bench-backend=processes`` runs the native engine (and therefore
    the calibration every DES bench derives its cost model from) on the
    GIL-free process backend — the configuration the fig5/parity
    studies need on multi-core runners.  Defaults stay on threads so a
    plain run matches historical results on any machine.
    """
    parser.addoption(
        "--bench-backend",
        choices=("threads", "processes"),
        default="threads",
        help="native execution backend for the benchmark instance",
    )
    parser.addoption(
        "--bench-workers",
        type=int,
        default=None,
        help="worker count for the chosen backend (default: auto)",
    )


@pytest.fixture(scope="session")
def bench_backend(request):
    return request.config.getoption("--bench-backend")


@pytest.fixture(scope="session")
def service(request, bench_backend):
    """The native benchmark instance (single partition)."""
    from repro.engine.execution import ExecutionConfig

    config = SearchServiceConfig(
        corpus=BENCH_CORPUS,
        query_log=BENCH_QUERY_LOG,
        num_partitions=1,
        execution=ExecutionConfig(
            backend=bench_backend,
            workers=request.config.getoption("--bench-workers"),
        ),
    )
    instance = SearchService(config)
    yield instance
    instance.close()


@pytest.fixture(scope="session")
def calibration(service):
    """Affine work model fitted to the native engine."""
    return calibrate_isn(
        service.isn, service.query_log, num_queries=150, repeats=3, seed=0
    )


@pytest.fixture(scope="session")
def demand_model(service, calibration):
    """Calibrated per-query demand model for the simulator."""
    return demand_model_from_calibration(
        calibration, service.partitioned[0].index, service.query_log
    )


@pytest.fixture(scope="session")
def cost_model(calibration):
    """Calibrated partitioning cost model for the simulator."""
    return cost_model_from_calibration(calibration)


@pytest.fixture(scope="session")
def positional_index(service):
    """Positional index over the reference corpus (for phrase/snippet
    characterization)."""
    from repro.index.positional import PositionalIndexBuilder

    return PositionalIndexBuilder(service.analyzer).build(service.collection)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, request):
    """Write a rendered table to results/ and echo it to stdout.

    With ``data=``, additionally write the machine-readable repo-root
    ``BENCH_<fig>.json`` summary (the perf trajectory the growth loop
    reads); the figure id is the leading ``figN``/``tableN`` token of
    ``name``.
    """

    def _emit(name: str, text: str, data: dict | None = None) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")
        if data is not None:
            from _structured import write_bench_json

            write_bench_json(name.split("_")[0], data)

    return _emit
