"""F16 (extension) — Replica selection and hedged requests.

On a 4-shard × 2-replica cluster with independent per-replica GC-like
pauses, compares the broker's tail-taming options.  Each server runs 8
intra-server partitions, so the *intrinsic* long-query tail is already
parallelized away (F4) and what remains of the p99 is pause- and
queue-driven — the part selection and hedging can attack.  Shape:
smarter replica selection (least-outstanding) trims the tail at zero
extra work; hedging at a short deadline removes the pause tail almost
entirely for a few percent of duplicated shard requests — the Dean &
Barroso "tail at scale" remedy, composed with the paper's partitioning.
"""

from repro.cluster.replication import ReplicatedClusterConfig
from repro.cluster.server import PartitionModelConfig
from repro.core.replication import replication_policy_study
from repro.core.reporting import format_table
from repro.servers.catalog import BIG_SERVER
from repro.sim.hiccups import HiccupConfig

# ~3% of wall time paused (30 ms pause per second): a tuned 2015-era
# heap.  The pause fraction matters: hedging leaves a residual tail of
# *simultaneous* pauses on both replicas, whose per-query probability is
# roughly (shards × fraction²) — at 3% that sits well below the p99.
PAUSES = HiccupConfig(mean_interval=1.0, pause_duration=0.03)


def test_fig16_replication(benchmark, demand_model, cost_model, emit):
    partitioning = PartitionModelConfig(
        num_partitions=8,
        partition_overhead=cost_model.partition_overhead,
        merge_base=cost_model.merge_base,
        merge_per_partition=cost_model.merge_per_partition,
    )
    base = ReplicatedClusterConfig(
        num_shards=4,
        replicas=2,
        spec=BIG_SERVER,
        partitioning=partitioning,
        hiccups=PAUSES,
    )
    # Per-shard work is ~demand/4 split over 8 partition tasks; the
    # clean per-shard latency is ~1 ms, so hedge deadlines of a few ms
    # fire almost only on pause-struck requests.
    mean_demand = demand_model.mean_demand()
    rate = 0.3 * BIG_SERVER.compute_capacity / (
        partitioning.total_work(mean_demand / 4)
    )
    hedge_delays = [mean_demand / 2, mean_demand]

    points = benchmark.pedantic(
        replication_policy_study,
        args=(base, demand_model, rate),
        kwargs={
            "hedge_delays": hedge_delays,
            "num_queries": 6_000,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    emit(
        "fig16_replication",
        format_table(
            ["policy", "p50_ms", "p99_ms", "p999_ms", "hedge_fraction"],
            [
                [
                    point.label,
                    point.summary.p50 * 1000,
                    point.summary.p99 * 1000,
                    point.summary.p999 * 1000,
                    point.hedge_fraction,
                ]
                for point in points
            ],
            title=(
                "F16: replica selection & hedging on a 4x2 cluster with "
                f"GC pauses ({rate:.0f} qps)"
            ),
        ),
    )

    by_label = {point.label: point for point in points}
    best_hedge = min(
        (p for p in points if p.hedge_delay is not None),
        key=lambda p: p.summary.p99,
    )
    # Least-outstanding >= random on the tail (ties allowed, no worse
    # than 10%), hedging strictly better than the best pure selection.
    assert (
        by_label["least_outstanding"].summary.p99
        <= 1.1 * by_label["random"].summary.p99
    )
    assert best_hedge.summary.p99 < 0.8 * by_label["least_outstanding"].summary.p99
    # And the duplicate-work budget stays modest.
    assert best_hedge.hedge_fraction < 0.35
