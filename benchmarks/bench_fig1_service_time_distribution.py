"""F1 — Query service-time distribution (native engine).

Regenerates the service-time CDF/percentile figure: replay a
popularity-weighted query stream serially, report the distribution's
order statistics, and fit log-normal vs. exponential models.  The
paper-shape claims: strong right skew (mean > median, p99 ≫ p50) and a
log-normal body.
"""

import numpy as np

from repro.core.characterization import characterize_service_times
from repro.core.reporting import format_series, format_table
from repro.metrics.histogram import cdf_points


def test_fig1_service_time_distribution(benchmark, service, emit):
    characterization = benchmark.pedantic(
        characterize_service_times,
        args=(service.isn, service.query_log),
        kwargs={"num_queries": 400, "repeats": 1, "seed": 0},
        rounds=1,
        iterations=1,
    )

    summary = characterization.summary.scaled(1000.0)  # -> milliseconds
    stat_rows = [
        ["queries", summary.count],
        ["mean (ms)", summary.mean],
        ["p50 (ms)", summary.p50],
        ["p90 (ms)", summary.p90],
        ["p99 (ms)", summary.p99],
        ["max (ms)", summary.max],
        ["p99/p50", characterization.tail_ratio],
        ["lognormal KS", characterization.lognormal.ks_distance],
        ["exponential KS", characterization.exponential.ks_distance],
    ]
    points = cdf_points(characterization.samples() * 1000.0, num_points=11)
    cdf_table = format_series(
        "F1b: service-time CDF (ms)",
        "percentile",
        [round(fraction * 100) for _, fraction in points],
        [("service_ms", [value for value, _ in points])],
    )
    emit(
        "fig1_service_time_distribution",
        format_table(
            ["statistic", "value"],
            stat_rows,
            title="F1: service-time distribution (single partition)",
        )
        + "\n\n"
        + cdf_table,
    )

    # Paper-shape assertions.
    assert characterization.summary.mean > characterization.summary.p50
    assert characterization.tail_ratio > 1.5
    assert characterization.lognormal_fits_better
