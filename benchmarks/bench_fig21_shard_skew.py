"""F21 (ablation) — Shard work skew vs. the partitioning tail win.

Sweeps the Dirichlet concentration of the per-query work split at
fixed P=8 and load — from near-perfect shards down to the heavy skew a
CONTIGUOUS assignment of a drifting crawl produces (F14).  Shape: as
shards skew, the straggler term eats the fork-join win and the p99
climbs back toward the unpartitioned level — an uneven partitioning is
hardly a partitioning at all.
"""

from repro.core.partitioning import imbalance_sensitivity, run_partitioning_sweep
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER

# From near-even (1e6) down to heavily skewed (2).
CONCENTRATIONS = [1e6, 60.0, 10.0, 4.0, 2.0]


def test_fig21_shard_skew(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.35 * capacity_qps

    points = benchmark.pedantic(
        imbalance_sensitivity,
        args=(BIG_SERVER, demand_model, CONCENTRATIONS, rate),
        kwargs={
            "num_partitions": 8,
            "cost_model": cost_model,
            "num_queries": 8_000,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )
    # Reference: the unpartitioned server under the same workload.
    baseline = run_partitioning_sweep(
        BIG_SERVER, demand_model, [1], rate,
        cost_model=cost_model, num_queries=8_000, seed=0,
    )[0]

    emit(
        "fig21_shard_skew",
        format_series(
            f"F21: p99 vs shard work skew (P=8, {rate:.0f} qps; "
            f"P=1 reference p99 = {baseline.summary.p99 * 1000:.1f} ms)",
            "concentration",
            CONCENTRATIONS,
            [
                ("p99_ms", [p.summary.p99 * 1000 for p in points]),
                ("p50_ms", [p.summary.p50 * 1000 for p in points]),
                (
                    "mean_skew_ms",
                    [p.mean_straggler_skew * 1000 for p in points],
                ),
            ],
        ),
    )

    p99s = [p.summary.p99 for p in points]
    skews = [p.mean_straggler_skew for p in points]
    # Skew grows monotonically as concentration falls...
    assert skews == sorted(skews)
    # ...and the tail pays monotonically for it (the per-query Dirichlet
    # resampling averages the worst splits out, so the cost is a steady
    # erosion rather than a collapse).
    assert p99s == sorted(p99s)
    assert p99s[-1] > 1.1 * p99s[0]
    # Even heavily skewed, P=8 still clearly beats P=1.
    assert p99s[-1] < 0.7 * baseline.summary.p99