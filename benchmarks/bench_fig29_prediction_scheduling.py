"""F29 — service-time prediction & deadline-aware scheduling.

Three questions, one calibrated predictor:

1. **Is service time predictable at admission?**  The predictor sees
   only dictionary-resident features (term count, summed posting-list
   lengths — no postings traversal) and is fitted/scored on disjoint
   query texts.  Gate: holdout MAPE <= 35%.
2. **Does prediction-aware routing help a mixed fleet?**  One big +
   three little replicas at the same offered load: demand-oblivious
   spray vs :class:`~repro.predict.scheduler.DeadlineScheduler`
   routing on *predicted* demand (true demand perturbed by the
   predictor's measured error model).  Gate: p99 cut >= 15% at equal
   energy (ratio <= 1.10).
3. **Does deadline-driven early termination move the fig6 crossover
   left?**  The big-vs-little partition sweep re-run with the DES
   mirror of the native BMW depth cap; the little server's qualifying
   partition count must drop without discarding the workload (served
   work fraction >= 85% at the crossover point).

Plus the parity contract: an ISN built with a routing-only scheduler
returns bit-identical hits to ``scheduler=None``, the depth-capped
BMW path actually truncates (``predict.depth_capped`` > 0) while
still filling the page, and the whole study is deterministic under a
fixed seed.

Run standalone (CI smoke):
``python benchmarks/bench_fig29_prediction_scheduling.py --quick``
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace

import numpy as np

from repro.api import (
    BIG_SERVER,
    SMALL_SERVER,
    DeadlineScheduler,
    PoissonArrivals,
    WorkloadScenario,
    calibrate_predictor,
    compare_servers_vs_partitions_scheduled,
    crossover_partitions,
    format_table,
)
from repro.cluster.hetero import HeterogeneousConfig, run_heterogeneous_open_loop
from repro.engine.isn import IndexServingNode
from repro.obs.registry import MetricsRegistry

MAPE_GATE = 0.35
P99_CUT_GATE = 0.15
ENERGY_RATIO_GATE = 1.10
MIN_SERVED_FRACTION = 0.85

FLEET_PARTITIONS = 4
FLEET_NUM_LITTLE = 3
SEED = 29_29

FULL = dict(
    calibration_queries=150,
    calibration_repeats=3,
    fleet_queries=4_000,
    sweep_queries=4_000,
    partitions=(1, 2, 4, 8, 16),
    identity_queries=30,
)
QUICK = dict(
    calibration_queries=100,
    calibration_repeats=2,
    fleet_queries=2_000,
    sweep_queries=2_000,
    partitions=(1, 2, 4, 8),
    identity_queries=15,
)


# ----------------------------------------------------------------------
# Standalone-mode service construction (pytest mode uses the session
# fixtures from conftest.py instead).


def _build_service():
    from conftest import BENCH_CORPUS, BENCH_QUERY_LOG
    from repro.engine.service import SearchService, SearchServiceConfig

    return SearchService(
        SearchServiceConfig(corpus=BENCH_CORPUS, query_log=BENCH_QUERY_LOG)
    )


def _derived_models(service):
    from repro.core.calibration import (
        calibrate_isn,
        cost_model_from_calibration,
        demand_model_from_calibration,
    )

    calibration = calibrate_isn(
        service.isn, service.query_log, num_queries=150, repeats=3, seed=0
    )
    demand = demand_model_from_calibration(
        calibration, service.partitioned[0].index, service.query_log
    )
    return demand, cost_model_from_calibration(calibration)


# ----------------------------------------------------------------------
# Study pieces.


def _fleet_deadline(demand_model, partitioning) -> float:
    """Deadline for the mixed-fleet study, derived from the workload.

    Half the time a little server needs for a p99-demand query: tight
    enough that predicted-long queries must overflow to the big
    server, loose enough that the bulk still fits the littles.
    """
    probe = demand_model.demands(2_000, np.random.default_rng(9))
    p99_demand = float(np.quantile(probe, 0.99))
    parallelism = min(SMALL_SERVER.num_cores, partitioning.num_partitions)
    return (
        0.5
        * partitioning.total_work(p99_demand)
        / (SMALL_SERVER.core_speed * parallelism)
    )


def _fleet_study(demand_model, cost_model, predictor, params):
    """Spray vs predicted-demand routing on the 1-big/3-little fleet."""
    partitioning = replace(cost_model, num_partitions=FLEET_PARTITIONS)
    mean_work = partitioning.total_work(demand_model.mean_demand())
    fleet_capacity = (
        BIG_SERVER.compute_capacity
        + FLEET_NUM_LITTLE * SMALL_SERVER.compute_capacity
    ) / mean_work
    rate = 0.45 * fleet_capacity
    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(rate),
        demands=demand_model,
        num_queries=params["fleet_queries"],
    )
    deadline = _fleet_deadline(demand_model, partitioning)

    def fleet(scheduler):
        return HeterogeneousConfig(
            big_spec=BIG_SERVER,
            num_big=1,
            little_spec=SMALL_SERVER,
            num_little=FLEET_NUM_LITTLE,
            partitioning=partitioning,
            scheduler=scheduler,
        )

    scheduler = DeadlineScheduler(predictor=predictor, deadline_s=deadline)
    rows = []
    for label, config in (
        ("spray", fleet(None)),
        ("predicted", fleet(scheduler)),
    ):
        result = run_heterogeneous_open_loop(config, scenario, seed=SEED)
        summary = result.summary(warmup_fraction=0.1)
        rows.append(
            {
                "router": label,
                "p50_s": summary.p50,
                "p99_s": summary.p99,
                "energy_j": result.energy_per_query_joules(),
                "routed_big": result.routed_to_big,
                "routed_little": result.routed_to_little,
            }
        )
    spray, predicted = rows
    return {
        "rate_qps": rate,
        "deadline_s": deadline,
        "rows": rows,
        "p99_cut": 1.0 - predicted["p99_s"] / spray["p99_s"],
        "energy_ratio": predicted["energy_j"] / spray["energy_j"],
    }


def _crossover_study(demand_model, cost_model, predictor, params):
    """The fig6 sweep with and without deadline-capped early termination."""
    partitions = list(params["partitions"])
    base = replace(cost_model, num_partitions=1)
    small_capacity = SMALL_SERVER.compute_capacity / base.total_work(
        demand_model.mean_demand()
    )
    rate = 0.3 * small_capacity
    common = dict(
        demands=demand_model,
        partition_counts=partitions,
        rate_qps=rate,
        cost_model=cost_model,
        num_queries=params["sweep_queries"],
        seed=SEED,
    )
    plain = compare_servers_vs_partitions_scheduled(
        [BIG_SERVER, SMALL_SERVER], scheduler=None, **common
    )
    big1 = next(
        p
        for p in plain
        if p.server_name == BIG_SERVER.name and p.num_partitions == 1
    )
    # QoS bar: within 30% of the big server's 1-partition p99, floored
    # just above the little server's own best plain point so the
    # unscheduled sweep always qualifies *somewhere* — the study then
    # measures where, not whether.  The deadline equals the big-server
    # p99 ("finish about when the big server would") and truncation
    # keeps >= 25% of any query's work.
    best_little = min(
        p.summary.p99
        for p in plain
        if p.server_name == SMALL_SERVER.name
    )
    target = max(1.3 * big1.summary.p99, 1.05 * best_little)
    deadline = big1.summary.p99
    scheduler = DeadlineScheduler(
        predictor=predictor,
        deadline_s=deadline,
        depth_from_budget=True,
        min_depth_fraction=0.25,
    )
    scheduled = compare_servers_vs_partitions_scheduled(
        [BIG_SERVER, SMALL_SERVER], scheduler=scheduler, **common
    )
    return {
        "rate_qps": rate,
        "p99_target_s": target,
        "deadline_s": deadline,
        "plain": [
            {
                "server": p.server_name,
                "partitions": p.num_partitions,
                "p99_s": p.summary.p99,
                "served_fraction": p.served_fraction,
            }
            for p in plain
        ],
        "scheduled": [
            {
                "server": p.server_name,
                "partitions": p.num_partitions,
                "p99_s": p.summary.p99,
                "served_fraction": p.served_fraction,
            }
            for p in scheduled
        ],
        "crossover_without": crossover_partitions(
            plain, SMALL_SERVER.name, target
        ),
        "crossover_with": crossover_partitions(
            scheduled,
            SMALL_SERVER.name,
            target,
            min_served_fraction=MIN_SERVED_FRACTION,
        ),
    }


def _native_parity(service, predictor, params):
    """Routing-only scheduler must not change a single hit; the
    depth-capped BMW path must truncate yet still fill pages."""
    texts = [q.text for q in list(service.query_log)[: params["identity_queries"]]]
    baseline = [service.isn.execute(text, k=10) for text in texts]

    median_predicted = float(
        np.median(
            [predictor.predict(f) for f in params["holdout_features"]]
        )
    )
    routing_only = IndexServingNode(
        service.partitioned,
        scheduler=DeadlineScheduler(
            predictor=predictor,
            long_query_threshold_s=max(median_predicted, 1e-9),
        ),
    )
    try:
        routed = [routing_only.execute(text, k=10) for text in texts]
    finally:
        routing_only.close()
    identical = all(
        [(h.doc_id, h.score) for h in a.hits]
        == [(h.doc_id, h.score) for h in b.hits]
        for a, b in zip(baseline, routed)
    )

    metrics = MetricsRegistry()
    capped_isn = IndexServingNode(
        service.partitioned,
        algorithm="block_max_wand",
        scheduler=DeadlineScheduler(
            predictor=predictor,
            deadline_s=max(median_predicted, 1e-6),
            depth_from_budget=True,
            min_depth_fraction=0.05,
        ),
        metrics=metrics,
    )
    try:
        capped_pages = [capped_isn.execute(text, k=10) for text in texts]
    finally:
        capped_isn.close()
    return {
        "identity_queries": len(texts),
        "routing_only_identical": identical,
        "depth_capped_queries": metrics.counter("predict.depth_capped").value,
        "capped_pages_with_hits": sum(
            1 for page in capped_pages if len(page.hits) > 0
        ),
    }


def _run_study(service, demand_model, cost_model, params):
    calibration = calibrate_predictor(
        service.isn,
        service.query_log,
        num_queries=params["calibration_queries"],
        repeats=params["calibration_repeats"],
        seed=0,
    )
    predictor = calibration.predictor
    fleet = _fleet_study(demand_model, cost_model, predictor, params)
    crossover = _crossover_study(demand_model, cost_model, predictor, params)
    parity = _native_parity(
        service,
        predictor,
        {**params, "holdout_features": calibration.holdout_features},
    )
    return {
        "figure": "fig29",
        "seed": SEED,
        "predictor": {
            "base_s": predictor.base_seconds,
            "per_term_s": predictor.per_term_seconds,
            "per_posting_s": predictor.per_posting_seconds,
            "residual_log_sigma": predictor.residual_log_sigma,
            "train_mape": calibration.train_mape,
            "holdout_mape": calibration.holdout_mape,
            "num_train": calibration.num_train,
            "num_holdout": calibration.num_holdout,
        },
        "fleet": fleet,
        "crossover": crossover,
        "parity": parity,
    }


def _format_study(study) -> str:
    predictor = study["predictor"]
    fleet = study["fleet"]
    crossover = study["crossover"]
    parity = study["parity"]
    tables = [
        format_table(
            ["quantity", "value"],
            [
                ["holdout MAPE (%)", predictor["holdout_mape"] * 100],
                ["train MAPE (%)", predictor["train_mape"] * 100],
                ["residual log-sigma", predictor["residual_log_sigma"]],
                ["per posting (ns)", predictor["per_posting_s"] * 1e9],
                ["holdout n", predictor["num_holdout"]],
            ],
            title="F29a: admission-time service-time prediction",
        ),
        format_table(
            ["router", "p50_ms", "p99_ms", "J/query", "big", "little"],
            [
                [
                    row["router"],
                    row["p50_s"] * 1000,
                    row["p99_s"] * 1000,
                    row["energy_j"],
                    row["routed_big"],
                    row["routed_little"],
                ]
                for row in fleet["rows"]
            ],
            title=(
                f"F29b: mixed fleet (1 big + {FLEET_NUM_LITTLE} little) at "
                f"{fleet['rate_qps']:.0f} qps, deadline "
                f"{fleet['deadline_s'] * 1000:.1f} ms — p99 cut "
                f"{fleet['p99_cut']:+.1%}, energy ratio "
                f"{fleet['energy_ratio']:.3f}"
            ),
        ),
        format_table(
            ["server", "P", "plain p99 (ms)", "sched p99 (ms)", "served"],
            [
                [
                    plain["server"],
                    plain["partitions"],
                    plain["p99_s"] * 1000,
                    sched["p99_s"] * 1000,
                    sched["served_fraction"],
                ]
                for plain, sched in zip(
                    crossover["plain"], crossover["scheduled"]
                )
            ],
            title=(
                f"F29c: fig6 crossover with deadline-capped early "
                f"termination (target p99 <= "
                f"{crossover['p99_target_s'] * 1000:.1f} ms) — little "
                f"crossover {crossover['crossover_without']} -> "
                f"{crossover['crossover_with']} partitions"
            ),
        ),
        format_table(
            ["check", "value"],
            [
                [
                    "routing-only hits identical",
                    parity["routing_only_identical"],
                ],
                ["depth-capped queries", parity["depth_capped_queries"]],
                [
                    "capped pages with hits",
                    f"{parity['capped_pages_with_hits']}"
                    f"/{parity['identity_queries']}",
                ],
            ],
            title="F29d: native parity & truncation",
        ),
    ]
    return "\n\n".join(tables)


def _check(study) -> None:
    """The acceptance assertions, shared by pytest and --quick modes."""
    predictor = study["predictor"]
    assert predictor["holdout_mape"] <= MAPE_GATE, (
        f"holdout MAPE {predictor['holdout_mape']:.1%} exceeds the "
        f"{MAPE_GATE:.0%} gate — admission-time features no longer "
        "predict service time"
    )
    fleet = study["fleet"]
    assert fleet["p99_cut"] >= P99_CUT_GATE, (
        f"prediction-aware routing cut p99 by only {fleet['p99_cut']:.1%} "
        f"(gate {P99_CUT_GATE:.0%}) vs demand-oblivious spray"
    )
    assert fleet["energy_ratio"] <= ENERGY_RATIO_GATE, (
        f"routing win is not at equal energy: ratio "
        f"{fleet['energy_ratio']:.3f} > {ENERGY_RATIO_GATE}"
    )
    crossover = study["crossover"]
    assert crossover["crossover_without"] is not None, (
        "plain little server never met the p99 target — the sweep's "
        "load point is mis-tuned"
    )
    assert crossover["crossover_with"] is not None, (
        "scheduled little server never met the p99 target with served "
        f"fraction >= {MIN_SERVED_FRACTION}"
    )
    assert crossover["crossover_with"] < crossover["crossover_without"], (
        f"early termination must move the crossover left: "
        f"{crossover['crossover_with']} vs "
        f"{crossover['crossover_without']} partitions"
    )
    parity = study["parity"]
    assert parity["routing_only_identical"], (
        "a routing-only scheduler changed native hits — it must be "
        "bit-identical to scheduler=None"
    )
    assert parity["depth_capped_queries"] > 0, (
        "the depth-capped BMW configuration never truncated a query"
    )
    assert (
        parity["capped_pages_with_hits"] == parity["identity_queries"]
    ), "depth-capped pages must still return hits"


def _check_deterministic(demand_model, cost_model, predictor, params) -> None:
    """Same seed → identical fleet and crossover results."""
    first = _fleet_study(demand_model, cost_model, predictor, params)
    second = _fleet_study(demand_model, cost_model, predictor, params)
    assert first == second, "fleet study must be deterministic"
    first = _crossover_study(demand_model, cost_model, predictor, params)
    second = _crossover_study(demand_model, cost_model, predictor, params)
    assert first == second, "crossover study must be deterministic"


def test_fig29_prediction_scheduling(benchmark, service, demand_model, cost_model, emit):
    study = benchmark.pedantic(
        lambda: _run_study(service, demand_model, cost_model, FULL),
        rounds=1,
        iterations=1,
    )
    emit("fig29_prediction_scheduling", _format_study(study), data=study)
    _check(study)


def test_fig29_deterministic(service, demand_model, cost_model):
    calibration = calibrate_predictor(
        service.isn,
        service.query_log,
        num_queries=QUICK["calibration_queries"],
        repeats=1,
        seed=0,
    )
    _check_deterministic(
        demand_model, cost_model, calibration.predictor, QUICK
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: smaller calibration and simulations",
    )
    args = parser.parse_args(argv)
    params = QUICK if args.quick else FULL
    service = _build_service()
    try:
        demand_model, cost_model = _derived_models(service)
        study = _run_study(service, demand_model, cost_model, params)
        print(_format_study(study))
        _check(study)
        calibration = calibrate_predictor(
            service.isn,
            service.query_log,
            num_queries=QUICK["calibration_queries"],
            repeats=1,
            seed=0,
        )
        _check_deterministic(
            demand_model, cost_model, calibration.predictor, QUICK
        )
    finally:
        service.close()

    from _structured import write_bench_json

    write_bench_json("fig29", study)
    print("fig29 acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(__import__("pathlib").Path(__file__).parent))
    sys.exit(main())
