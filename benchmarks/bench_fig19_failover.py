"""F19 (extension) — Replica brownout: failover behaviour under load.

Scripts a 500 ms brownout of one replica mid-run and measures how the
broker's policies contain the damage.  Shape: with random selection,
requests keep landing on the stalled replica and wait out the
brownout (seconds-scale worst case); least-outstanding selection
steers new traffic away, shrinking the damage to the requests already
in flight; hedging rescues even those, capping the worst case near
the hedge deadline plus one service time.
"""

from repro.cluster.replication import (
    HedgeConfig,
    ReplicaSelection,
    ReplicatedClusterConfig,
    run_replicated_open_loop,
)
from repro.cluster.server import PartitionModelConfig
from repro.core.reporting import format_table
from repro.servers.catalog import BIG_SERVER
from repro.sim.outages import OutageSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario

BROWNOUT = OutageSpec(shard=0, replica=0, start=3.0, duration=0.5)


def test_fig19_failover(benchmark, demand_model, cost_model, emit):
    partitioning = PartitionModelConfig(
        num_partitions=4,
        partition_overhead=cost_model.partition_overhead,
        merge_base=cost_model.merge_base,
        merge_per_partition=cost_model.merge_per_partition,
    )
    rate = 0.3 * BIG_SERVER.compute_capacity / partitioning.total_work(
        demand_model.mean_demand() / 2
    )
    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(rate),
        demands=demand_model,
        num_queries=8_000,
    )
    policies = [
        ("random", ReplicaSelection.RANDOM, None),
        ("least_outstanding", ReplicaSelection.LEAST_OUTSTANDING, None),
        (
            "least_outstanding+hedge",
            ReplicaSelection.LEAST_OUTSTANDING,
            HedgeConfig(delay_s=2.0 * demand_model.mean_demand()),
        ),
    ]

    def run_all():
        results = {}
        for label, selection, hedge in policies:
            config = ReplicatedClusterConfig(
                num_shards=2,
                replicas=2,
                spec=BIG_SERVER,
                partitioning=partitioning,
                selection=selection,
                hedge=hedge,
                outages=(BROWNOUT,),
            )
            results[label] = run_replicated_open_loop(
                config, scenario, seed=0
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    emit(
        "fig19_failover",
        format_table(
            ["policy", "p50_ms", "p99_ms", "p999_ms", "max_ms"],
            [
                [
                    label,
                    result.summary().p50 * 1000,
                    result.summary().p99 * 1000,
                    result.summary().p999 * 1000,
                    result.summary().max * 1000,
                ]
                for label, result in results.items()
            ],
            title=(
                f"F19: 500 ms brownout of one replica at {rate:.0f} qps "
                "(2 shards x 2 replicas)"
            ),
        ),
    )

    random_max = results["random"].summary().max
    jsq_max = results["least_outstanding"].summary().max
    hedged_max = results["least_outstanding+hedge"].summary().max
    # The brownout is visible under naive selection...
    assert random_max > 0.2
    # ...and hedging caps the worst case far below the brownout length.
    assert hedged_max < 0.25 * random_max
    assert hedged_max < 0.1
    # Selection alone already improves the tail.
    assert (
        results["least_outstanding"].summary().p999
        <= results["random"].summary().p999
    )