"""F4 — Response-time percentiles vs. intra-server partition count.

The paper's central figure: at a fixed moderate load on the big
server, sweeping P ∈ {1..16} cuts the p99 steeply for the first few
partitions, then flattens as per-partition overhead and core
contention take over.
"""

from repro.core.partitioning import run_partitioning_sweep
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER

PARTITIONS = [1, 2, 4, 8, 16]


def test_fig4_partitioning_tail(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.35 * capacity_qps

    points = benchmark.pedantic(
        run_partitioning_sweep,
        args=(BIG_SERVER, demand_model, PARTITIONS, rate),
        kwargs={"cost_model": cost_model, "num_queries": 8_000, "seed": 0},
        rounds=1,
        iterations=1,
    )

    emit(
        "fig4_partitioning_tail",
        format_series(
            f"F4: latency vs partitions (big server, {rate:.0f} qps)",
            "partitions",
            PARTITIONS,
            [
                ("p50_ms", [p.summary.p50 * 1000 for p in points]),
                ("p90_ms", [p.summary.p90 * 1000 for p in points]),
                ("p99_ms", [p.summary.p99 * 1000 for p in points]),
                ("util", [p.utilization for p in points]),
            ],
        ),
    )

    by_partitions = {p.num_partitions: p.summary for p in points}
    # Headline: partitioning reduces tail latency...
    assert by_partitions[4].p99 < 0.6 * by_partitions[1].p99
    assert by_partitions[8].p99 < by_partitions[1].p99
    # ...with diminishing returns: the 8->16 step gains far less than 1->4.
    gain_first = by_partitions[1].p99 - by_partitions[4].p99
    gain_last = by_partitions[8].p99 - by_partitions[16].p99
    assert gain_last < 0.5 * gain_first
