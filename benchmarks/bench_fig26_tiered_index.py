"""F26 — Tiered larger-than-RAM index: paging cost under a block cache.

The paper's engine keeps the whole inverted index RAM-resident; this
figure quantifies what serving the same Zipf workload costs when the
postings live in a block store and only an admission-controlled cache's
worth of blocks is resident.  Cells:

- **resident** — the baseline fully-RAM index.
- **tiered 10%** — block store behind a TinyLFU-admitted cache whose
  byte budget is 10% of the pageable index bytes.
- **tiered 10% (no admission)** — same budget, plain LRU: shows what
  the admission filter buys against scan-like cold queries.
- **tiered cold** — zero cache budget; every block touch re-fetches
  (the correctness-under-thrash bound, not a serving configuration).

Tiering is an I/O change, not a scoring change: every cell must return
bit-identical top-k results (ids AND scores) to the resident index.
The Zipf query log re-touches hot blocks, so the cached cells read far
fewer bytes than the index holds — the working-set effect the block
cache exists to exploit.

Acceptance contract (mirrors ISSUE criteria):

- every tiered cell's per-query hits are bit-identical to resident;
- with the 10% budget, serving p99 latency stays <= 2x resident p99;
- with the 10% budget, ``store.bytes_read`` over the whole log stays
  well below the total index bytes (< 60% cold-start included, < 35%
  on the second, warm pass);
- the sweep is deterministic: rebuilding a cell reproduces identical
  hits and fetch counters.

Run standalone (CI smoke):
``python benchmarks/bench_fig26_tiered_index.py --quick``
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.api import format_table
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import QueryLogConfig, QueryLogGenerator
from repro.corpus.vocabulary import VocabularyConfig
from repro.index.builder import IndexBuilder
from repro.index.store import tier_index
from repro.search.executor import Searcher

CORPUS = CorpusConfig(
    num_documents=4_000,
    vocabulary=VocabularyConfig(size=15_000, exponent=1.0, seed=7),
    mean_length=120,
    length_sigma=0.7,
    seed=42,
)
# A skewed popularity model (web logs measure ~0.85; 1.1 concentrates
# the stream harder) keeps the hot working set well inside the cache —
# the regime a tiered index is provisioned for.
QUERY_LOG = QueryLogConfig(
    num_unique_queries=50, popularity_exponent=1.1, seed=9
)
BLOCK_SIZE = 64
STREAM_SEED = 17
NUM_QUERIES = 600
QUICK_QUERIES = 200
CACHE_FRACTION = 0.10

#: Acceptance ceilings.
MAX_P99_RATIO = 2.0
MAX_COLD_READ_FRACTION = 0.60
MAX_WARM_READ_FRACTION = 0.35


def _build_instance():
    """Corpus, resident index, and the Zipf-sampled query stream."""
    generator = CorpusGenerator(CORPUS)
    collection = generator.generate()
    index = IndexBuilder(block_size=BLOCK_SIZE).build(collection)
    query_log = QueryLogGenerator(generator.vocabulary, QUERY_LOG).generate()
    stream = query_log.sample_stream(
        NUM_QUERIES, np.random.default_rng(STREAM_SEED)
    )
    return index, [query.text for query in stream]


def _budget(index) -> int:
    """The 10%-of-pageable-bytes cache budget for ``index``."""
    probe = tier_index(index, cache_budget_bytes=0)
    return int(probe.total_block_bytes * CACHE_FRACTION)


def _serve(searcher, texts):
    """Serve the stream; return per-query hits and latencies."""
    hits = []
    latencies = []
    for text in texts:
        start = time.perf_counter()
        result = searcher.search(text)
        latencies.append(time.perf_counter() - start)
        hits.append(tuple((h.doc_id, h.score) for h in result.hits))
    return hits, np.array(latencies)


def _run_cell(index, texts, label, budget=None, admission=True):
    """One cell: build the (tiered) searcher, serve the log twice.

    The first pass is the cold start (cache fills); the second pass is
    the steady state a long-running server sees.  Fetch counters are
    split per pass via snapshot deltas.
    """
    if budget is None:
        serving_index = index
        total_block_bytes = 0
    else:
        serving_index = tier_index(
            index, cache_budget_bytes=budget, admission=admission
        )
        total_block_bytes = serving_index.total_block_bytes
    searcher = Searcher(serving_index, algorithm="block_max_wand")
    cold_hits, cold_latencies = _serve(searcher, texts)
    cold = (
        serving_index.store_stats() if budget is not None else None
    )
    warm_hits, warm_latencies = _serve(searcher, texts)
    warm = (
        serving_index.store_stats().delta(cold)
        if budget is not None
        else None
    )
    return {
        "label": label,
        "hits": cold_hits,
        "warm_hits": warm_hits,
        "p50_ms": float(np.percentile(warm_latencies, 50)) * 1e3,
        "p99_ms": float(np.percentile(warm_latencies, 99)) * 1e3,
        "cold_p99_ms": float(np.percentile(cold_latencies, 99)) * 1e3,
        "total_block_bytes": total_block_bytes,
        "cold_blocks_fetched": cold.blocks_fetched if cold else 0,
        "cold_bytes_read": cold.bytes_read if cold else 0,
        "warm_blocks_fetched": warm.blocks_fetched if warm else 0,
        "warm_bytes_read": warm.bytes_read if warm else 0,
        "admission_rejects": (
            serving_index.store_stats().admission_rejects if budget is not None else 0
        ),
    }


def _sweep(texts, instance):
    index, _ = instance
    budget = _budget(index)
    return [
        _run_cell(index, texts, "resident"),
        _run_cell(index, texts, "tiered 10%", budget=budget),
        _run_cell(
            index, texts, "tiered 10% no-adm", budget=budget, admission=False
        ),
        _run_cell(index, texts, "tiered cold", budget=0),
    ]


def _format(rows, num_queries):
    total = max(row["total_block_bytes"] for row in rows)
    return format_table(
        [
            "cell",
            "p50_ms",
            "p99_ms",
            "cold_bytes_read",
            "warm_bytes_read",
            "read_frac_warm",
            "adm_rejects",
        ],
        [
            [
                row["label"],
                round(row["p50_ms"], 3),
                round(row["p99_ms"], 3),
                row["cold_bytes_read"],
                row["warm_bytes_read"],
                (
                    round(row["warm_bytes_read"] / total, 4)
                    if row["total_block_bytes"]
                    else 0.0
                ),
                row["admission_rejects"],
            ]
            for row in rows
        ],
        title=(
            f"F26: tiered index paging cost "
            f"({CORPUS.num_documents} docs, {num_queries} Zipf queries, "
            f"block size {BLOCK_SIZE}, cache {CACHE_FRACTION:.0%} of "
            f"{total} block bytes)"
        ),
    )


def _check(rows) -> None:
    """The acceptance assertions, shared by pytest and --quick modes."""
    by_label = {row["label"]: row for row in rows}
    resident = by_label["resident"]
    for label, row in by_label.items():
        if label == "resident":
            continue
        assert row["hits"] == resident["hits"], (
            f"{label} cold-pass results must be bit-identical to resident"
        )
        assert row["warm_hits"] == resident["hits"], (
            f"{label} warm-pass results must be bit-identical to resident"
        )

    cached = by_label["tiered 10%"]
    ratio = cached["p99_ms"] / resident["p99_ms"]
    assert ratio <= MAX_P99_RATIO, (
        f"tiered p99 must stay <= {MAX_P99_RATIO}x resident p99: "
        f"{cached['p99_ms']:.3f} ms vs {resident['p99_ms']:.3f} ms "
        f"({ratio:.2f}x)"
    )

    total = cached["total_block_bytes"]
    cold_fraction = cached["cold_bytes_read"] / total
    warm_fraction = cached["warm_bytes_read"] / total
    assert cold_fraction <= MAX_COLD_READ_FRACTION, (
        f"cold pass must read <= {MAX_COLD_READ_FRACTION:.0%} of the "
        f"index, read {cold_fraction:.1%}"
    )
    assert warm_fraction <= MAX_WARM_READ_FRACTION, (
        f"warm pass must read <= {MAX_WARM_READ_FRACTION:.0%} of the "
        f"index, read {warm_fraction:.1%}"
    )

    # The warm cache converts misses to hits: steady state fetches far
    # fewer blocks than the cold start, while the zero-budget cell never
    # stops fetching.
    assert cached["warm_blocks_fetched"] < cached["cold_blocks_fetched"]
    cold_cell = by_label["tiered cold"]
    assert cold_cell["warm_blocks_fetched"] >= cold_cell["cold_blocks_fetched"]


def _check_deterministic(instance, texts) -> None:
    """Same cell rebuilt twice → identical hits and fetch counters."""
    index, _ = instance
    budget = _budget(index)
    cells = [
        _run_cell(index, texts, "tiered 10%", budget=budget)
        for _ in range(2)
    ]
    comparable = [
        {
            key: value
            for key, value in cell.items()
            if "ms" not in key  # wall-clock timings legitimately vary
        }
        for cell in cells
    ]
    assert comparable[0] == comparable[1], (
        "tiered serving must be deterministic: identical hits and counters"
    )


def test_fig26_tiered_index(benchmark, emit):
    instance = _build_instance()
    texts = instance[1][:NUM_QUERIES]
    rows = benchmark.pedantic(
        lambda: _sweep(texts, instance), rounds=1, iterations=1
    )
    emit("fig26_tiered_index", _format(rows, len(texts)))
    _check(rows)


def test_fig26_deterministic():
    instance = _build_instance()
    _check_deterministic(instance, instance[1][:QUICK_QUERIES])


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: {QUICK_QUERIES} queries instead of {NUM_QUERIES}",
    )
    args = parser.parse_args(argv)
    num_queries = QUICK_QUERIES if args.quick else NUM_QUERIES
    instance = _build_instance()
    texts = instance[1][:num_queries]
    rows = _sweep(texts, instance)
    print(_format(rows, num_queries))
    _check(rows)
    _check_deterministic(instance, texts)
    print("fig26 acceptance checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
