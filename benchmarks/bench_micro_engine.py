"""Micro-benchmarks of the search engine's inner loops.

Not tied to a paper figure; these track the per-query costs of the
three traversal algorithms, the merge, and the postings codec, so
engine regressions are caught where they originate.
"""

import os
import time

import numpy as np
import pytest

from repro.engine.execution import ExecutionConfig
from repro.engine.isn import IndexServingNode
from repro.index.compression import decode_postings, encode_postings
from repro.index.postings import PostingsList
from repro.search.executor import Searcher
from repro.search.merger import merge_shard_results
from repro.search.topk import SearchHit


@pytest.fixture(scope="module")
def query_sample(service):
    rng = np.random.default_rng(3)
    return [q.text for q in service.query_log.sample_stream(50, rng)]


@pytest.mark.parametrize(
    "algorithm", ["daat", "taat", "wand", "block_max_wand"]
)
def test_micro_query_throughput(benchmark, service, query_sample, algorithm):
    searcher = Searcher(service.partitioned[0].index, algorithm=algorithm)

    def run_batch():
        for text in query_sample:
            searcher.search(text)

    benchmark.pedantic(run_batch, rounds=3, iterations=1)


def test_micro_bmw_prunes_vs_exhaustive(service, query_sample):
    """Perf gate: Block-Max WAND must do measurably less scoring work.

    Wall-clock microbenchmarks are noisy in CI, so the gate is on the
    deterministic scored-docs counters: over the sample workload BMW
    must score at most half the documents exhaustive DAAT scores while
    returning bit-identical top-k results.
    """
    index = service.partitioned[0].index
    exhaustive = Searcher(index, algorithm="daat")
    bmw = Searcher(index, algorithm="block_max_wand")
    exhaustive_docs = 0
    bmw_docs = 0
    for text in query_sample:
        full = exhaustive.search(text)
        pruned = bmw.search(text)
        assert pruned.doc_ids() == full.doc_ids()
        assert pruned.scores() == full.scores()
        exhaustive_docs += full.docs_scored
        bmw_docs += pruned.docs_scored
    assert bmw_docs * 2 <= exhaustive_docs, (
        f"BMW must score >= 2x fewer docs than exhaustive DAAT: "
        f"{bmw_docs} vs {exhaustive_docs}"
    )


def test_micro_process_backend_scaling(service, query_sample):
    """Perf gate: the process backend must actually escape the GIL.

    Batched execution over the reference instance must be bit-identical
    (doc ids *and* float scores) between the thread backend and the
    process backend at every worker count — asserted unconditionally —
    and, on machines with the cores to show it, 4 workers must deliver
    at least 2x the 1-worker throughput.
    """

    def run(execution):
        with IndexServingNode(
            service.partitioned, execution=execution
        ) as node:
            node.execute_batch(query_sample[:8])  # warm pools/workers
            start = time.perf_counter()
            responses = node.execute_batch(query_sample)
            elapsed = time.perf_counter() - start
        pairs = [
            [(hit.doc_id, hit.score) for hit in response.hits]
            for response in responses
        ]
        return len(query_sample) / elapsed, pairs

    _, expected = run(ExecutionConfig(backend="threads"))
    throughput = {}
    for workers in (1, 4):
        throughput[workers], pairs = run(
            ExecutionConfig(backend="processes", workers=workers)
        )
        assert pairs == expected, f"workers={workers} diverged"

    cores = len(os.sched_getaffinity(0))
    if cores < 4:
        pytest.skip(f"scaling gate needs 4 cores, have {cores}")
    assert throughput[4] >= 2.0 * throughput[1], throughput


def test_micro_analyzer_throughput(benchmark, service):
    """Tokens/second through the full analyzer chain."""
    texts = [doc.body for doc in list(service.collection)[:50]]

    def analyze_batch():
        for text in texts:
            service.analyzer.analyze(text)

    benchmark.pedantic(analyze_batch, rounds=3, iterations=1)


def test_micro_index_build(benchmark, service):
    """Index-construction throughput over a 300-document slice."""
    from repro.corpus.documents import Document, DocumentCollection
    from repro.index.builder import IndexBuilder

    collection = DocumentCollection()
    for local_id, document in enumerate(list(service.collection)[:300]):
        collection.add(
            Document(
                doc_id=local_id,
                url=document.url,
                title=document.title,
                body=document.body,
            )
        )
    builder = IndexBuilder(service.analyzer)
    benchmark.pedantic(builder.build, args=(collection,), rounds=2,
                       iterations=1)


def test_micro_snippet_generation(benchmark, service):
    """Per-snippet rendering cost on real documents."""
    from repro.engine.snippets import SnippetGenerator

    generator = SnippetGenerator(service.analyzer, window_tokens=30)
    documents = list(service.collection)[:30]
    terms = service.analyzer.analyze(documents[0].body)[:2]

    def render_batch():
        for document in documents:
            generator.snippet(document, terms)

    benchmark.pedantic(render_batch, rounds=3, iterations=1)


def test_micro_merge(benchmark):
    rng = np.random.default_rng(0)
    shard_hits = [
        [
            SearchHit(score=float(score), doc_id=int(doc_id))
            for score, doc_id in zip(
                rng.random(10), rng.integers(0, 1_000_000, 10)
            )
        ]
        for _ in range(16)
    ]
    benchmark(merge_shard_results, shard_hits, 10)


@pytest.mark.parametrize("algorithm", ["merge", "gallop"])
def test_micro_skewed_intersection(benchmark, algorithm):
    """Galloping must dominate the linear merge on 1:1000-skewed lists."""
    from repro.search.intersection import intersect_gallop, intersect_merge

    rng = np.random.default_rng(4)
    small = np.sort(rng.choice(np.arange(2_000_000), 200, replace=False))
    large = np.sort(rng.choice(np.arange(2_000_000), 200_000, replace=False))
    function = intersect_gallop if algorithm == "gallop" else intersect_merge

    benchmark.pedantic(function, args=(small, large), rounds=3, iterations=1)


def test_micro_postings_codec(benchmark):
    rng = np.random.default_rng(1)
    doc_ids = np.sort(
        rng.choice(np.arange(1_000_000), size=20_000, replace=False)
    )
    frequencies = rng.integers(1, 20, size=20_000)
    postings = PostingsList(doc_ids, frequencies)

    def roundtrip():
        decode_postings(encode_postings(postings))

    benchmark.pedantic(roundtrip, rounds=3, iterations=1)
