"""F18 (extension) — Bursty traffic: provisioning for the peak.

Compares Poisson arrivals against an equal-average-rate MMPP (bursts
at 3x the base rate) across the partition sweep.  Shape: burstiness
inflates the tail at equal average load; in the peak-heavy regime the
burst tail is queue-dominated, so partitioning's work inflation
*reverses* its benefit at high partition counts — the partition count
(like every other resource) must be provisioned for the peak incoming
traffic load, which is precisely the QoS framing of the paper's
abstract.
"""

from repro.core.bursts import burst_study
from repro.core.reporting import format_series
from repro.servers.catalog import BIG_SERVER

PARTITIONS = [1, 2, 4, 8, 16]
BURST_FACTOR = 3.0


def test_fig18_bursty_traffic(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    average_rate = 0.4 * capacity_qps  # burst state ≈ 0.9x capacity

    points = benchmark.pedantic(
        burst_study,
        args=(BIG_SERVER, demand_model, PARTITIONS, average_rate),
        kwargs={
            "burst_factor": BURST_FACTOR,
            "cost_model": cost_model,
            "num_queries": 8_000,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    def series(kind, stat):
        return [
            getattr(point.summary, stat) * 1000
            for point in points
            if point.arrival_kind == kind
        ]

    emit(
        "fig18_bursty_traffic",
        format_series(
            f"F18: Poisson vs bursty (MMPP {BURST_FACTOR:.0f}x) at "
            f"{average_rate:.0f} qps average",
            "partitions",
            PARTITIONS,
            [
                ("poisson_p99_ms", series("poisson", "p99")),
                ("mmpp_p99_ms", series("mmpp", "p99")),
                ("poisson_p50_ms", series("poisson", "p50")),
                ("mmpp_p50_ms", series("mmpp", "p50")),
            ],
        ),
    )

    poisson = {
        p.num_partitions: p.summary
        for p in points
        if p.arrival_kind == "poisson"
    }
    mmpp = {
        p.num_partitions: p.summary
        for p in points
        if p.arrival_kind == "mmpp"
    }
    # Bursts inflate the tail at every partition count.
    for num_partitions in PARTITIONS:
        assert mmpp[num_partitions].p99 > poisson[num_partitions].p99
    # Poisson: the familiar partitioning win.
    assert poisson[4].p99 < 0.6 * poisson[1].p99
    # Peak-heavy bursts: the win shrinks or reverses at high P.
    poisson_gain = poisson[1].p99 / poisson[8].p99
    mmpp_gain = mmpp[1].p99 / mmpp[8].p99
    assert mmpp_gain < poisson_gain
    assert mmpp[16].p99 > mmpp[1].p99  # over-partitioning hurts at peak
