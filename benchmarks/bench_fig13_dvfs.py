"""F13 (extension) — DVFS: frequency scaling vs. partitioning.

Down-clocks the big server (cubic dynamic-power rule) at fixed load
and reports latency, power, and the smallest partition count that
restores the full-frequency p99.  Shape: each frequency step saves
super-linear power but costs tail latency; moderate partitioning buys
the latency back — frequency and intra-query parallelism are
substitutes, the within-one-server version of the low-power finding.
"""

from repro.core.dvfs import dvfs_study
from repro.core.reporting import format_table
from repro.servers.catalog import BIG_SERVER

FREQUENCIES = [1.0, 0.8, 0.6, 0.4]


def test_fig13_dvfs(benchmark, demand_model, cost_model, emit):
    capacity_qps = BIG_SERVER.compute_capacity / cost_model.total_work(
        demand_model.mean_demand()
    )
    rate = 0.25 * capacity_qps

    points = benchmark.pedantic(
        dvfs_study,
        args=(BIG_SERVER, demand_model, FREQUENCIES, rate),
        kwargs={
            "cost_model": cost_model,
            "compensation_partitions": (1, 2, 4, 8, 16),
            "num_queries": 5_000,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    emit(
        "fig13_dvfs",
        format_table(
            [
                "freq", "p50_ms", "p99_ms", "power_W", "J_per_query",
                "partitions_to_recover_p99",
            ],
            [
                [
                    point.frequency_factor,
                    point.summary.p50 * 1000,
                    point.summary.p99 * 1000,
                    point.power_watts,
                    point.energy_per_query_joules,
                    point.compensating_partitions
                    if point.compensating_partitions is not None
                    else "none<=16",
                ]
                for point in points
            ],
            title=f"F13: DVFS sweep at {rate:.0f} qps (big server, P=1)",
        ),
    )

    by_frequency = {p.frequency_factor: p for p in points}
    # Latency cost and power savings both monotone in frequency.
    p99s = [by_frequency[f].summary.p99 for f in FREQUENCIES]
    assert p99s == sorted(p99s)
    powers = [by_frequency[f].power_watts for f in FREQUENCIES]
    assert powers == sorted(powers, reverse=True)
    # Partitioning compensates at least one down-clocked point.
    assert any(
        point.compensating_partitions is not None
        and point.compensating_partitions > 1
        for point in points
    )
