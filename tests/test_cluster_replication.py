"""Tests for replicated shards, replica selection, and hedging."""

import numpy as np
import pytest

from repro.cluster.replication import (
    HedgeConfig,
    ReplicaSelection,
    ReplicatedClusterConfig,
    run_replicated_open_loop,
)
from repro.cluster.server import PartitionModelConfig
from repro.core.replication import replication_policy_study
from repro.servers.catalog import BIG_SERVER
from repro.sim.hiccups import HiccupConfig
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.0, sigma=0.6)
PARTITIONING = PartitionModelConfig(
    num_partitions=1,
    partition_overhead=0.0002,
    merge_base=0.0001,
    merge_per_partition=0.0,
)


def scenario(rate=60.0, num_queries=1_500):
    return WorkloadScenario(
        arrivals=PoissonArrivals(rate), demands=DEMAND, num_queries=num_queries
    )


def config(**overrides):
    defaults = dict(
        num_shards=2,
        replicas=2,
        spec=BIG_SERVER,
        partitioning=PARTITIONING,
    )
    defaults.update(overrides)
    return ReplicatedClusterConfig(**defaults)


class TestReplicatedClusterConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            config(num_shards=0)
        with pytest.raises(ValueError):
            config(replicas=0)
        with pytest.raises(ValueError):
            config(replicas=1, hedge=HedgeConfig(delay_s=0.01))
        with pytest.raises(ValueError):
            HedgeConfig(delay_s=0.0)

    def test_num_servers(self):
        assert config(num_shards=3, replicas=2).num_servers == 6


class TestRunReplicatedOpenLoop:
    def test_all_queries_complete(self):
        result = run_replicated_open_loop(config(), scenario())
        assert len(result) == 1_500
        assert result.total_hedges == 0
        assert result.total_shard_requests == 1_500 * 2

    def test_deterministic(self):
        first = run_replicated_open_loop(config(), scenario(), seed=4)
        second = run_replicated_open_loop(config(), scenario(), seed=4)
        assert np.array_equal(first.latencies(), second.latencies())

    @pytest.mark.parametrize("selection", list(ReplicaSelection))
    def test_every_selection_policy_runs(self, selection):
        result = run_replicated_open_loop(
            config(selection=selection), scenario(num_queries=500)
        )
        assert len(result) == 500

    def test_hedging_issues_duplicates(self):
        hedged = config(hedge=HedgeConfig(delay_s=0.01))
        result = run_replicated_open_loop(hedged, scenario())
        assert result.total_hedges > 0
        assert 0.0 < result.hedge_fraction < 1.0

    def test_late_hedge_deadline_rarely_fires(self):
        early = run_replicated_open_loop(
            config(hedge=HedgeConfig(delay_s=0.005)), scenario()
        )
        late = run_replicated_open_loop(
            config(hedge=HedgeConfig(delay_s=0.2)), scenario()
        )
        assert late.total_hedges < early.total_hedges

    def test_replication_spreads_load(self):
        """With 2 replicas, the same offered load sees lower latency
        than with 1 replica (each request has two queues to choose)."""
        # High enough load that queueing dominates on the single-replica
        # cluster (per-server utilization ~80% vs ~40% with 2 replicas).
        single = run_replicated_open_loop(
            config(replicas=1), scenario(rate=600.0, num_queries=3_000)
        )
        double = run_replicated_open_loop(
            config(replicas=2, selection=ReplicaSelection.LEAST_OUTSTANDING),
            scenario(rate=600.0, num_queries=3_000),
        )
        assert double.summary().p99 < single.summary().p99

    def test_hedging_cuts_hiccup_tail(self):
        """Per-replica pauses are independent, so a hedge escapes them."""
        pauses = HiccupConfig(mean_interval=0.2, pause_duration=0.04)
        plain = run_replicated_open_loop(
            config(hiccups=pauses), scenario(), seed=1
        )
        hedged = run_replicated_open_loop(
            config(hiccups=pauses, hedge=HedgeConfig(delay_s=0.02)),
            scenario(),
            seed=1,
        )
        assert hedged.summary().p99 < 0.8 * plain.summary().p99

    def test_warmup_filtering(self):
        result = run_replicated_open_loop(
            config(), scenario(num_queries=400)
        )
        assert result.latencies(0.5).size == 200
        with pytest.raises(ValueError):
            result.latencies(-0.1)


class TestReplicationPolicyStudy:
    def test_study_structure_and_ordering(self):
        points = replication_policy_study(
            config(hiccups=HiccupConfig(mean_interval=0.2, pause_duration=0.04)),
            DEMAND,
            rate_qps=60.0,
            hedge_delays=[0.02],
            num_queries=1_500,
        )
        labels = [point.label for point in points]
        assert labels[:3] == ["random", "round_robin", "least_outstanding"]
        assert labels[3].startswith("hedge@")
        by_label = {point.label: point for point in points}
        # Hedging beats the best pure-selection policy on the tail.
        assert (
            by_label["hedge@20ms"].summary.p99
            < by_label["least_outstanding"].summary.p99
        )
        assert by_label["hedge@20ms"].hedge_fraction > 0

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            replication_policy_study(config(), DEMAND, rate_qps=0.0)
