"""Unit tests for distribution fitting and statistics helpers."""

import numpy as np
import pytest

from repro.analysis.distributions import fit_exponential, fit_lognormal
from repro.analysis.stats import bootstrap_ci, linear_fit, tail_index


class TestFitLognormal:
    def test_recovers_parameters(self):
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=-2.0, sigma=0.6, size=20_000)
        fit = fit_lognormal(samples)
        assert fit.mu == pytest.approx(-2.0, abs=0.05)
        assert fit.sigma == pytest.approx(0.6, abs=0.05)
        assert fit.ks_distance < 0.02

    def test_mean_median_consistency(self):
        rng = np.random.default_rng(1)
        samples = rng.lognormal(-1.0, 0.5, 10_000)
        fit = fit_lognormal(samples)
        assert fit.mean() > fit.median()  # right skew
        assert fit.median() == pytest.approx(np.exp(-1.0), rel=0.05)

    def test_percentile(self):
        fit = fit_lognormal(np.random.default_rng(2).lognormal(0, 1, 5_000))
        assert fit.percentile(99) > fit.percentile(50)

    def test_lognormal_beats_exponential_on_lognormal_data(self):
        rng = np.random.default_rng(3)
        samples = rng.lognormal(-3.0, 0.8, 5_000)
        assert fit_lognormal(samples).ks_distance < fit_exponential(
            samples
        ).ks_distance

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_lognormal([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_lognormal([])

    def test_constant_samples(self):
        fit = fit_lognormal([2.0] * 10)
        assert fit.median() == pytest.approx(2.0)


class TestFitExponential:
    def test_recovers_rate(self):
        rng = np.random.default_rng(4)
        samples = rng.exponential(scale=0.25, size=20_000)
        fit = fit_exponential(samples)
        assert fit.rate == pytest.approx(4.0, rel=0.05)
        assert fit.mean() == pytest.approx(0.25, rel=0.05)
        assert fit.ks_distance < 0.02


class TestBootstrapCi:
    def test_interval_brackets_estimate(self):
        samples = np.random.default_rng(5).exponential(1.0, 500)
        point, low, high = bootstrap_ci(samples, np.mean, num_resamples=300)
        assert low <= point <= high

    def test_tighter_with_more_data(self):
        rng = np.random.default_rng(6)
        _, low_small, high_small = bootstrap_ci(
            rng.exponential(1.0, 50), np.mean, num_resamples=300, seed=1
        )
        _, low_big, high_big = bootstrap_ci(
            rng.exponential(1.0, 5_000), np.mean, num_resamples=300, seed=1
        )
        assert (high_big - low_big) < (high_small - low_small)

    def test_deterministic_given_seed(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        first = bootstrap_ci(samples, np.mean, seed=9)
        second = bootstrap_ci(samples, np.mean, seed=9)
        assert first == second

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean, confidence=1.5)


class TestLinearFit:
    def test_exact_line(self):
        x = [0.0, 1.0, 2.0, 3.0]
        y = [1.0, 3.0, 5.0, 7.0]
        intercept, slope, r_squared = linear_fit(x, y)
        assert intercept == pytest.approx(1.0)
        assert slope == pytest.approx(2.0)
        assert r_squared == pytest.approx(1.0)

    def test_noisy_line(self):
        rng = np.random.default_rng(7)
        x = np.linspace(0, 10, 200)
        y = 0.5 + 2.0 * x + rng.normal(0, 0.1, 200)
        intercept, slope, r_squared = linear_fit(x, y)
        assert slope == pytest.approx(2.0, abs=0.05)
        assert r_squared > 0.99

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            linear_fit([1.0], [1.0])
        with pytest.raises(ValueError):
            linear_fit([1.0, 2.0], [1.0])


class TestTailIndex:
    def test_pareto_tail_recovered(self):
        rng = np.random.default_rng(8)
        alpha = 2.5
        samples = (1.0 / rng.random(50_000)) ** (1.0 / alpha)  # Pareto(alpha)
        assert tail_index(samples, 0.05) == pytest.approx(alpha, rel=0.15)

    def test_lighter_tail_gives_larger_index(self):
        rng = np.random.default_rng(9)
        heavy = (1.0 / rng.random(20_000)) ** (1.0 / 1.5)
        light = rng.lognormal(0, 0.3, 20_000)
        assert tail_index(light) > tail_index(heavy)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            tail_index([1.0, -1.0])
        with pytest.raises(ValueError):
            tail_index([1.0, 2.0], tail_fraction=1.5)
