"""Shared fixtures: a small deterministic corpus, index, and query log.

Session-scoped because index construction is the expensive step; all
consumers treat these objects as immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import QueryLogConfig, QueryLogGenerator
from repro.corpus.vocabulary import VocabularyConfig
from repro.index.builder import IndexBuilder


SMALL_CORPUS_CONFIG = CorpusConfig(
    num_documents=300,
    vocabulary=VocabularyConfig(size=2_000, exponent=1.0, seed=3),
    mean_length=60,
    length_sigma=0.6,
    topic_terms=5,
    seed=11,
)


@pytest.fixture(scope="session")
def corpus_generator():
    return CorpusGenerator(SMALL_CORPUS_CONFIG)


@pytest.fixture(scope="session")
def small_collection(corpus_generator):
    return corpus_generator.generate()


@pytest.fixture(scope="session")
def small_index(small_collection):
    return IndexBuilder().build(small_collection)


@pytest.fixture(scope="session")
def small_query_log(corpus_generator):
    generator = QueryLogGenerator(
        corpus_generator.vocabulary,
        QueryLogConfig(num_unique_queries=100, seed=5),
    )
    return generator.generate()


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
