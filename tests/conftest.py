"""Shared fixtures: a small deterministic corpus, index, and query log.

Session-scoped because index construction is the expensive step; all
consumers treat these objects as immutable.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import QueryLogConfig, QueryLogGenerator
from repro.corpus.vocabulary import VocabularyConfig
from repro.index.builder import IndexBuilder


SMALL_CORPUS_CONFIG = CorpusConfig(
    num_documents=300,
    vocabulary=VocabularyConfig(size=2_000, exponent=1.0, seed=3),
    mean_length=60,
    length_sigma=0.6,
    topic_terms=5,
    seed=11,
)


@pytest.fixture(scope="session")
def corpus_generator():
    return CorpusGenerator(SMALL_CORPUS_CONFIG)


@pytest.fixture(scope="session")
def small_collection(corpus_generator):
    return corpus_generator.generate()


@pytest.fixture(scope="session")
def small_index(small_collection):
    return IndexBuilder().build(small_collection)


@pytest.fixture(scope="session")
def small_query_log(corpus_generator):
    generator = QueryLogGenerator(
        corpus_generator.vocabulary,
        QueryLogConfig(num_unique_queries=100, seed=5),
    )
    return generator.generate()


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


# --- chaos-harness fixtures ---------------------------------------------
# Declarative fault plans any integration test can run under; the same
# plan objects drive the native engine (wall clock) and the simulated
# cluster (simulated time).


@pytest.fixture()
def flapping_plan():
    """Shard 1 crashes for half of every 200 ms period (DES timelines)."""
    from repro.resilience.faults import FaultPlan

    return FaultPlan.flapping_shard(
        1, period_s=0.2, duty=0.5, horizon_s=60.0
    )


@pytest.fixture()
def crashed_shard_plan():
    """Shard 1 is down for the whole test — deterministic on wall clocks."""
    from repro.resilience.faults import FaultPlan, ShardCrash

    return FaultPlan(
        crashes=(ShardCrash(shard=1, start_s=0.0, duration_s=3600.0),)
    )


@pytest.fixture()
def chaos_service(crashed_shard_plan):
    """A small native service whose shard 1 always fails, with breakers."""
    from repro.engine.service import SearchService, SearchServiceConfig
    from repro.corpus.querylog import QueryLogConfig
    from repro.resilience.breaker import BreakerConfig

    config = SearchServiceConfig(
        corpus=CorpusConfig(
            num_documents=120,
            vocabulary=VocabularyConfig(size=900),
            mean_length=40,
            seed=11,
        ),
        query_log=QueryLogConfig(num_unique_queries=30, seed=5),
        num_partitions=2,
        breakers=BreakerConfig(failure_threshold=2, recovery_time_s=30.0),
        faults=crashed_shard_plan,
    )
    with SearchService(config) as service:
        yield service
