"""Tests for the DES replica fault model (MTTF/MTTR crash/recovery).

Three layers are pinned down:

- the **failure models** themselves — seeded window generation, trace
  validation, steady-state availability;
- the **determinism discipline** — failure draws come from dedicated
  per-row random substreams, so enabling (or merely attaching) a
  failure model never perturbs the arrival/demand/imbalance streams: a
  run whose failure model injects nothing is bit-identical to a run
  with no model at all;
- the **crash semantics inside the autoscaler** — a crash fails
  exactly the queries in flight on the dead replica (typed
  ``replica_crash`` shed reason, counted as SLO misses), removes the
  replica from the dispatchable set, and the replacement serves again
  only after the warm-up.
"""

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry
from repro.servers.spec import ServerSpec
from repro.sim.autoscale import (
    AutoscaleConfig,
    StaticPolicy,
    run_autoscaled_cluster,
)
from repro.sim.failures import (
    SHED_REPLICA_CRASH,
    MttfMttrFailures,
    ReplicaFailureModel,
    TraceFailures,
    steady_state_availability,
)
from repro.sim.random import RandomStreams
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)

SPEC = ServerSpec(
    name="failures-test-node",
    num_cores=2,
    core_speed=0.5,
    idle_power_watts=30.0,
    peak_power_watts=90.0,
)


def make_trace(horizon_s=300.0, rate_qps=40.0, seed=0):
    """A steady Poisson stream realized into (arrival_times, demands)."""
    streams = RandomStreams(seed)
    rng = streams.stream("arrivals")
    gaps = rng.exponential(1.0 / rate_qps, size=int(rate_qps * horizon_s * 2))
    times = np.cumsum(gaps)
    times = times[times < horizon_s]
    demands = DEMAND.demands(times.size, streams.stream("demands"))
    return times, demands


def make_config(**overrides):
    params = dict(
        spec=SPEC,
        initial_replicas=3,
        min_replicas=3,
        max_replicas=3,
        warmup_s=15.0,
    )
    params.update(overrides)
    return AutoscaleConfig(**params)


def run(config, horizon_s=300.0, rate_qps=40.0, seed=0, metrics=None):
    times, demands = make_trace(
        horizon_s=horizon_s, rate_qps=rate_qps, seed=seed
    )
    return run_autoscaled_cluster(
        config,
        StaticPolicy(config.initial_replicas),
        times,
        demands,
        horizon_s=horizon_s,
        seed=seed,
        metrics=metrics,
    )


class TestSteadyStateAvailability:
    def test_formula(self):
        assert steady_state_availability(300.0, 100.0) == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ValueError):
            steady_state_availability(0.0, 100.0)
        with pytest.raises(ValueError):
            steady_state_availability(300.0, -1.0)


class TestMttfMttrFailures:
    def test_is_a_failure_model(self):
        model = MttfMttrFailures(mttf_s=100.0, mttr_s=20.0)
        assert isinstance(model, ReplicaFailureModel)

    def test_validation(self):
        with pytest.raises(ValueError):
            MttfMttrFailures(mttf_s=0.0, mttr_s=20.0)
        with pytest.raises(ValueError):
            MttfMttrFailures(mttf_s=100.0, mttr_s=0.0)

    def test_windows_are_seeded_and_per_row(self):
        model = MttfMttrFailures(mttf_s=100.0, mttr_s=20.0)

        def first_windows(row_id, seed, n=4):
            streams = RandomStreams(seed)
            generator = model.windows(row_id, 0.0, streams)
            return [next(generator) for _ in range(n)]

        assert first_windows(0, seed=7) == first_windows(0, seed=7)
        assert first_windows(0, seed=7) != first_windows(0, seed=8)
        assert first_windows(0, seed=7) != first_windows(1, seed=7)

    def test_windows_advance_and_respect_min_repair(self):
        model = MttfMttrFailures(
            mttf_s=50.0, mttr_s=0.001, min_repair_s=1.0
        )
        streams = RandomStreams(0)
        generator = model.windows(0, 10.0, streams)
        previous_end = 10.0
        for _ in range(10):
            crash_at, repair_s = next(generator)
            assert crash_at > previous_end
            assert repair_s >= 1.0
            previous_end = crash_at + repair_s


class TestTraceFailures:
    def test_replays_the_given_windows(self):
        model = TraceFailures({0: ((10.0, 5.0), (40.0, 2.0))})
        streams = RandomStreams(0)
        assert list(model.windows(0, 0.0, streams)) == [
            (10.0, 5.0),
            (40.0, 2.0),
        ]
        assert list(model.windows(1, 0.0, streams)) == []

    def test_skips_windows_before_launch(self):
        model = TraceFailures({0: ((10.0, 5.0), (40.0, 2.0))})
        streams = RandomStreams(0)
        assert list(model.windows(0, 20.0, streams)) == [(40.0, 2.0)]

    def test_rejects_overlap_and_nonpositive(self):
        with pytest.raises(ValueError):
            TraceFailures({0: ((10.0, 5.0), (12.0, 1.0))})
        with pytest.raises(ValueError):
            TraceFailures({0: ((10.0, 0.0),)})
        with pytest.raises(ValueError):
            TraceFailures({0: ((-1.0, 5.0),)})


class TestCrashSemantics:
    def test_crash_fails_in_flight_queries_typed(self):
        # One long outage covering the middle of the run.
        config = make_config(
            failures=TraceFailures({r: ((100.0, 50.0),) for r in range(3)})
        )
        metrics = MetricsRegistry()
        # High utilization (~0.87 of the 3-replica fleet) keeps the
        # queues deep, so the crash instant is guaranteed to catch
        # queries in flight.
        result = run(config, rate_qps=180.0, metrics=metrics)
        assert result.replica_crashes == 3
        assert result.replica_recoveries == 3
        failed = [r for r in result.records if r.failed]
        assert failed, "an outage must fail the queries in flight"
        for record in failed:
            assert record.shed_reason == SHED_REPLICA_CRASH
            assert record.served is False
        snapshot = metrics.snapshot()
        assert snapshot["failures.replica_crashes"]["value"] == 3
        assert snapshot["failures.queries_failed"]["value"] == len(failed)

    def test_failed_queries_count_as_slo_misses(self):
        outage = TraceFailures({r: ((100.0, 50.0),) for r in range(3)})
        with_failures = run(make_config(failures=outage), rate_qps=180.0)
        without = run(make_config(), rate_qps=180.0)
        assert with_failures.failed_count > 0
        # A generous SLO every served query meets: attainment is then
        # exactly the served fraction — crash-failed queries (and the
        # arrivals refused while the whole fleet was down) are misses.
        generous = 1e9
        assert without.slo_attainment(generous) == pytest.approx(1.0)
        served_fraction = sum(
            1 for r in with_failures.records if r.served
        ) / len(with_failures.records)
        assert served_fraction < 1.0
        assert with_failures.slo_attainment(generous) == pytest.approx(
            served_fraction
        )

    def test_recovery_rejoins_after_warmup(self):
        # All replicas down at once; service must resume after the
        # repair plus the warm-up, and only then.
        config = make_config(
            warmup_s=20.0,
            failures=TraceFailures({r: ((100.0, 10.0),) for r in range(3)}),
        )
        result = run(config)
        assert result.replica_recoveries == 3
        resumed = [
            r.client_send
            for r in result.records
            if r.served and r.client_send > 100.0
        ]
        assert resumed, "service must resume after recovery"
        # Nothing can be *served* during the outage or the warm-up of
        # the replacements (dispatch requires a warmed-up row).
        assert min(resumed) >= 110.0 + 20.0

    def test_mid_outage_arrivals_fail_not_hang(self):
        config = make_config(
            failures=TraceFailures({r: ((100.0, 50.0),) for r in range(3)})
        )
        result = run(config)
        # Every record resolved: served, shed, or crash-failed.
        for record in result.records:
            assert not record.served or not np.isnan(record.client_receive)


class TestDeterminismDiscipline:
    def test_run_is_deterministic(self):
        config = make_config(
            failures=MttfMttrFailures(mttf_s=80.0, mttr_s=20.0)
        )
        first = run(config)
        second = run(config)
        assert first.replica_crashes == second.replica_crashes
        assert np.array_equal(first.latencies(), second.latencies())
        assert [r.shed_reason for r in first.records] == [
            r.shed_reason for r in second.records
        ]

    def test_inert_model_is_bit_identical_to_none(self):
        baseline = run(make_config())
        # A trace model with no windows attaches the whole failure
        # machinery but never fires.
        empty = run(make_config(failures=TraceFailures({})))
        # An MTTF far past the horizon draws only from the dedicated
        # per-row failure substreams, so the serving path is untouched.
        far = run(
            make_config(failures=MttfMttrFailures(mttf_s=1e9, mttr_s=10.0))
        )
        for result in (empty, far):
            assert result.replica_crashes == 0
            assert np.array_equal(result.latencies(), baseline.latencies())
            assert [r.client_receive for r in result.records] == [
                r.client_receive for r in baseline.records
            ]

    def test_failures_leave_pre_crash_history_identical(self):
        # Before the first crash fires, the failure run's timeline is
        # bit-identical to the baseline — the model's draws come from
        # substreams the serving path never touches.
        baseline = run(make_config())
        crashed = run(
            make_config(failures=TraceFailures({0: ((150.0, 30.0),)}))
        )
        for clean, faulty in zip(baseline.records, crashed.records):
            if clean.client_send >= 150.0:
                break
            if (
                not np.isnan(clean.client_receive)
                and clean.client_receive >= 150.0
            ):
                continue
            assert faulty.client_receive == clean.client_receive
