"""Tests for the diurnal + flash-crowd trace generator."""

import numpy as np
import pytest

from repro.sim.random import RandomStreams
from repro.workload.diurnal import DiurnalArrivals, FlashCrowd
from repro.workload.trace import TraceArrivals, save_trace


def make_day(**overrides):
    params = dict(
        base_qps=5.0,
        peak_qps=40.0,
        period_s=3_600.0,
        peak_time_s=2_000.0,
    )
    params.update(overrides)
    return DiurnalArrivals(**params)


class TestFlashCrowd:
    def test_multiplier_shape(self):
        crowd = FlashCrowd(
            start_s=100.0, magnitude=3.0, ramp_s=10.0, hold_s=20.0,
            decay_s=10.0,
        )
        t = np.array([0.0, 99.9, 105.0, 115.0, 129.9, 135.0, 140.0, 500.0])
        factor = crowd.multiplier_at(t)
        assert factor[0] == 1.0 and factor[1] == 1.0  # before
        assert factor[2] == pytest.approx(2.0)  # mid-ramp
        assert factor[3] == 3.0  # hold
        assert factor[4] == pytest.approx(3.0, abs=0.05)  # hold end
        assert factor[5] == pytest.approx(2.0)  # mid-decay
        assert factor[6] == 1.0 and factor[7] == 1.0  # after
        assert crowd.end_s == 140.0

    def test_validation(self):
        with pytest.raises(ValueError, match="magnitude"):
            FlashCrowd(start_s=0.0, magnitude=0.5)
        with pytest.raises(ValueError, match="start_s"):
            FlashCrowd(start_s=-1.0, magnitude=2.0)


class TestEnvelope:
    def test_trough_and_peak(self):
        day = make_day()
        assert float(day.envelope_qps(2_000.0)) == pytest.approx(40.0)
        trough = 2_000.0 - 1_800.0  # half a period from the peak
        assert float(day.envelope_qps(trough)) == pytest.approx(5.0)
        assert day.peak_envelope_qps() == pytest.approx(40.0, rel=0.01)

    def test_flash_crowd_multiplies_envelope(self):
        crowd = FlashCrowd(
            start_s=2_000.0, magnitude=2.0, ramp_s=1.0, hold_s=50.0,
            decay_s=1.0,
        )
        day = make_day(flash_crowds=(crowd,))
        assert float(day.envelope_qps(2_020.0)) == pytest.approx(
            80.0, rel=1e-3
        )
        assert day.peak_envelope_qps() == pytest.approx(80.0, rel=0.01)

    def test_mean_envelope_between_base_and_peak(self):
        day = make_day()
        mean = day.mean_envelope_qps()
        assert 5.0 < mean < 40.0


class TestDeterminism:
    def test_same_seed_identical_arrivals(self):
        day = make_day()
        a = day.arrival_times(2_000, np.random.default_rng(42))
        b = day.arrival_times(2_000, np.random.default_rng(42))
        assert np.array_equal(a, b)
        t1 = day.realize_trace(1_800.0, np.random.default_rng(7))
        t2 = day.realize_trace(1_800.0, np.random.default_rng(7))
        assert np.array_equal(t1, t2)

    def test_different_seeds_differ(self):
        day = make_day()
        a = day.arrival_times(500, np.random.default_rng(1))
        b = day.arrival_times(500, np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_unrelated_streams_do_not_perturb_arrivals(self):
        """The repro.sim.random contract: arrivals drawn from a named
        stream are identical no matter what other streams are consumed
        (partition count, imbalance draws, demand sampling...)."""
        day = make_day()

        def trace_with_extra_consumption(num_extra_streams):
            streams = RandomStreams(1234)
            for i in range(num_extra_streams):
                streams.stream(f"imbalance-{i}").random(1000)
            return day.realize_trace(1_200.0, streams.stream("arrivals"))

        baseline = trace_with_extra_consumption(0)
        for partitions in (2, 8):
            assert np.array_equal(
                baseline, trace_with_extra_consumption(partitions)
            )


class TestThinning:
    def test_sorted_positive_within_horizon(self):
        day = make_day()
        times = day.realize_trace(1_800.0, np.random.default_rng(0))
        assert times.size > 0
        assert np.all(np.diff(times) >= 0)
        assert times[0] >= 0.0
        assert times[-1] < 1_800.0

    def test_arrival_times_returns_exact_count(self):
        day = make_day()
        times = day.arrival_times(777, np.random.default_rng(0))
        assert times.size == 777
        assert np.all(np.diff(times) >= 0)

    def test_realized_rate_tracks_envelope(self):
        """Windowed arrival counts match the deterministic envelope."""
        day = make_day()
        times = day.realize_trace(3_600.0, np.random.default_rng(5))
        for window in ((1_800.0, 2_200.0), (100.0, 500.0)):
            lo, hi = window
            count = int(np.sum((times >= lo) & (times < hi)))
            grid = np.linspace(lo, hi, 200)
            expected = float(np.trapezoid(day.envelope_qps(grid), grid))
            assert count == pytest.approx(expected, rel=0.15)

    def test_flash_crowd_adds_arrivals(self):
        crowd = FlashCrowd(
            start_s=500.0, magnitude=3.0, ramp_s=30.0, hold_s=200.0,
            decay_s=30.0,
        )
        plain = make_day()
        flashy = make_day(flash_crowds=(crowd,))
        t_plain = plain.realize_trace(1_000.0, np.random.default_rng(9))
        t_flash = flashy.realize_trace(1_000.0, np.random.default_rng(9))
        in_window = lambda t: int(np.sum((t >= 500.0) & (t < 760.0)))  # noqa: E731
        assert in_window(t_flash) > 2 * in_window(t_plain)

    def test_bursty_modulation_is_deterministic_and_sorted(self):
        day = make_day(
            burst_multiplier=2.5,
            mean_burst_dwell_s=2.0,
            mean_base_dwell_s=10.0,
        )
        a = day.realize_trace(600.0, np.random.default_rng(3))
        b = day.realize_trace(600.0, np.random.default_rng(3))
        assert np.array_equal(a, b)
        assert np.all(np.diff(a) >= 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_day(base_qps=0.0)
        with pytest.raises(ValueError):
            make_day(peak_qps=4.0)  # below base
        with pytest.raises(ValueError):
            make_day(period_s=-1.0)
        with pytest.raises(ValueError):
            make_day(burst_multiplier=0.5)


class TestTraceInterop:
    def test_save_and_replay_round_trip(self, tmp_path, rng):
        """A generated day survives save_trace -> TraceArrivals."""
        day = make_day()
        times = day.realize_trace(1_200.0, np.random.default_rng(21))
        path = tmp_path / "diurnal.trace"
        assert save_trace(times, path) == times.size
        replayed = TraceArrivals.from_file(path)
        assert replayed.trace_length == times.size
        assert np.allclose(
            replayed.arrival_times(times.size, rng), times, atol=1e-8
        )
