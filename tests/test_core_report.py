"""Tests for the one-call characterization report."""

import pytest

from repro.core.report import ReportOptions, characterization_report
from repro.corpus.generator import CorpusConfig
from repro.corpus.querylog import QueryLogConfig
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.service import SearchService, SearchServiceConfig


@pytest.fixture(scope="module")
def report_service():
    config = SearchServiceConfig(
        corpus=CorpusConfig(
            num_documents=250,
            vocabulary=VocabularyConfig(size=2_000, seed=3),
            mean_length=60,
            seed=11,
        ),
        query_log=QueryLogConfig(num_unique_queries=80, seed=5),
        num_partitions=1,
    )
    with SearchService(config) as service:
        yield service


@pytest.fixture(scope="module")
def report(report_service):
    return characterization_report(
        report_service, ReportOptions(num_queries=80, repeats=1)
    )


class TestCharacterizationReport:
    def test_all_sections_present(self, report):
        for heading in (
            "# Web search benchmark characterization report",
            "## Index statistics",
            "## Workload profile",
            "## Service-time distribution",
            "## What drives service time",
            "## Simulator calibration",
        ):
            assert heading in report

    def test_key_figures_rendered(self, report):
        assert "250 documents" in report
        assert "tail ratio" in report
        assert "Affine work model" in report
        assert "R²" in report

    def test_writes_file(self, report_service, tmp_path):
        path = tmp_path / "report.md"
        text = characterization_report(
            report_service,
            ReportOptions(num_queries=40, repeats=1),
            path=path,
        )
        assert path.read_text(encoding="utf-8") == text

    def test_invalid_options(self):
        with pytest.raises(ValueError):
            ReportOptions(num_queries=0)
        with pytest.raises(ValueError):
            ReportOptions(repeats=0)
        with pytest.raises(ValueError):
            ReportOptions(profile_stream_length=0)
