"""Tests for segment-based incremental indexing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.segments import MergePolicy, SegmentedIndex
from repro.search.executor import Searcher
from repro.text.analyzer import Analyzer, AnalyzerConfig

PLAIN = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))


def doc(text, doc_id=0):
    return Document(doc_id=doc_id, url=f"u{text[:8]}-{doc_id}", title="",
                    body=text)


def fresh_reference(segmented):
    """A monolithic index over the segmented index's live documents,
    renumbered densely — used to compare rankings by URL."""
    collection = DocumentCollection()
    live = [
        (global_id, segmented.document(global_id))
        for global_id in range(segmented._next_global_id)
        if global_id in segmented._documents
        and global_id not in segmented._deleted
    ]
    for local_id, (_, document) in enumerate(live):
        collection.add(
            Document(
                doc_id=local_id,
                url=document.url,
                title=document.title,
                body=document.body,
            )
        )
    return collection, Searcher(IndexBuilder(PLAIN).build(collection))


class TestSegmentedIndexBasics:
    def test_add_and_search(self):
        segmented = SegmentedIndex(analyzer=PLAIN)
        ids = segmented.add_documents([doc("cat dog"), doc("dog bird")])
        assert ids == [0, 1]
        assert segmented.num_documents == 2
        assert segmented.num_segments == 1
        hits = segmented.search("dog")
        assert sorted(h.doc_id for h in hits) == [0, 1]

    def test_each_batch_is_a_segment(self):
        segmented = SegmentedIndex(
            analyzer=PLAIN, merge_policy=MergePolicy(max_segments=100)
        )
        for _ in range(5):
            segmented.add_documents([doc("xx yy")])
        assert segmented.num_segments == 5

    def test_search_spans_segments(self):
        segmented = SegmentedIndex(
            analyzer=PLAIN, merge_policy=MergePolicy(max_segments=100)
        )
        segmented.add_documents([doc("shared alpha")])
        segmented.add_documents([doc("shared beta")])
        hits = segmented.search("shared")
        assert sorted(h.doc_id for h in hits) == [0, 1]

    def test_empty_batch(self):
        segmented = SegmentedIndex(analyzer=PLAIN)
        assert segmented.add_documents([]) == []
        assert segmented.num_segments == 0
        assert segmented.search("anything") == []

    def test_document_lookup(self):
        segmented = SegmentedIndex(analyzer=PLAIN)
        segmented.add_documents([doc("hello world")])
        assert segmented.document(0).body == "hello world"
        with pytest.raises(KeyError):
            segmented.document(99)


class TestDeletes:
    def test_deleted_documents_never_surface(self):
        segmented = SegmentedIndex(analyzer=PLAIN)
        segmented.add_documents([doc("target one"), doc("target two")])
        segmented.delete_document(0)
        hits = segmented.search("target")
        assert [h.doc_id for h in hits] == [1]
        assert segmented.num_documents == 1
        assert segmented.num_deleted == 1

    def test_delete_twice_rejected(self):
        segmented = SegmentedIndex(analyzer=PLAIN)
        segmented.add_documents([doc("x y")])
        segmented.delete_document(0)
        with pytest.raises(KeyError):
            segmented.delete_document(0)
        with pytest.raises(KeyError):
            segmented.document(0)

    def test_delete_unknown_rejected(self):
        with pytest.raises(KeyError):
            SegmentedIndex(analyzer=PLAIN).delete_document(5)

    def test_tombstones_do_not_starve_the_page(self):
        segmented = SegmentedIndex(
            analyzer=PLAIN, merge_policy=MergePolicy(max_segments=100)
        )
        segmented.add_documents([doc(f"common word{i}", i) for i in range(20)])
        for global_id in range(10):
            segmented.delete_document(global_id)
        hits = segmented.search("common", k=10)
        assert len(hits) == 10
        assert all(h.doc_id >= 10 for h in hits)


class TestMerging:
    def test_policy_bounds_segment_count(self):
        policy = MergePolicy(max_segments=3, merge_factor=2)
        segmented = SegmentedIndex(analyzer=PLAIN, merge_policy=policy)
        for i in range(10):
            segmented.add_documents([doc(f"w{i} shared", i)])
        assert segmented.num_segments <= 4  # at most max+1 transiently
        assert segmented.merges_performed > 0

    def test_force_merge_single_segment(self):
        segmented = SegmentedIndex(
            analyzer=PLAIN, merge_policy=MergePolicy(max_segments=100)
        )
        for i in range(6):
            segmented.add_documents([doc(f"tok{i} shared", i)])
        segmented.force_merge()
        assert segmented.num_segments == 1
        hits = segmented.search("shared", k=10)
        assert len(hits) == 6

    def test_merge_reclaims_tombstones(self):
        segmented = SegmentedIndex(
            analyzer=PLAIN, merge_policy=MergePolicy(max_segments=100)
        )
        segmented.add_documents([doc("aa bb", 0), doc("aa cc", 1)])
        segmented.delete_document(0)
        segmented.force_merge()
        assert segmented.num_deleted == 0
        assert segmented.num_documents == 1
        assert [h.doc_id for h in segmented.search("aa")] == [1]

    def test_global_ids_stable_across_merges(self):
        segmented = SegmentedIndex(
            analyzer=PLAIN, merge_policy=MergePolicy(max_segments=100)
        )
        segmented.add_documents([doc("unique0", 0)])
        segmented.add_documents([doc("unique1", 1)])
        segmented.force_merge()
        assert [h.doc_id for h in segmented.search("unique1")] == [1]
        assert segmented.document(1).body == "unique1"

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            MergePolicy(max_segments=0)
        with pytest.raises(ValueError):
            MergePolicy(merge_factor=1)


class TestLayoutInvariance:
    """Rankings must not depend on the segment layout."""

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.sampled_from(["aa", "bb", "cc", "dd", "ee"]),
                min_size=1,
                max_size=6,
            ).map(" ".join),
            min_size=1,
            max_size=10,
        ),
        st.data(),
    )
    def test_matches_monolithic_index(self, texts, data):
        segmented = SegmentedIndex(
            analyzer=PLAIN, merge_policy=MergePolicy(max_segments=3,
                                                     merge_factor=2)
        )
        # Feed documents in random batch sizes.
        position = 0
        doc_id = 0
        while position < len(texts):
            size = data.draw(
                st.integers(min_value=1, max_value=len(texts) - position)
            )
            batch = []
            for text in texts[position : position + size]:
                batch.append(doc(text, doc_id))
                doc_id += 1
            segmented.add_documents(batch)
            position += size

        collection, reference = fresh_reference(segmented)
        for term in ("aa", "cc", "ee"):
            segmented_hits = segmented.search(term, k=5)
            reference_hits = reference.search(term, k=5)
            segmented_urls = [
                segmented.document(h.doc_id).url for h in segmented_hits
            ]
            reference_urls = [
                collection[h.doc_id].url for h in reference_hits.hits
            ]
            assert segmented_urls == reference_urls

    def test_matches_monolithic_after_deletes_and_merge(self):
        segmented = SegmentedIndex(
            analyzer=PLAIN, merge_policy=MergePolicy(max_segments=2,
                                                     merge_factor=2)
        )
        rng = np.random.default_rng(3)
        words = ["red", "green", "blue", "cyan", "pink"]
        for i in range(30):
            text = " ".join(rng.choice(words, size=4))
            segmented.add_documents([doc(text, i)])
        for global_id in (1, 5, 9, 20):
            segmented.delete_document(global_id)
        collection, reference = fresh_reference(segmented)
        for term in words:
            segmented_urls = [
                segmented.document(h.doc_id).url
                for h in segmented.search(term, k=8)
            ]
            reference_urls = [
                collection[h.doc_id].url
                for h in reference.search(term, k=8).hits
            ]
            assert segmented_urls == reference_urls
