"""Tests for intersection algorithms and conjunctive scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.search.daat import score_daat
from repro.search.intersection import (
    gallop_to,
    intersect_adaptive,
    intersect_gallop,
    intersect_merge,
    score_conjunctive,
)
from repro.search.query import ParsedQuery, QueryMode

sorted_unique = st.lists(
    st.integers(min_value=0, max_value=500), max_size=80, unique=True
).map(lambda values: np.asarray(sorted(values), dtype=np.int64))


class TestGallopTo:
    def test_finds_first_geq(self):
        haystack = np.array([2, 4, 6, 8, 10])
        assert gallop_to(haystack, 5, 0) == 2
        assert gallop_to(haystack, 6, 0) == 2
        assert gallop_to(haystack, 1, 0) == 0
        assert gallop_to(haystack, 11, 0) == 5

    def test_respects_low(self):
        haystack = np.array([2, 4, 6, 8, 10])
        assert gallop_to(haystack, 4, 2) == 2  # search starts past it
        assert gallop_to(haystack, 10, 3) == 4

    def test_low_past_end(self):
        assert gallop_to(np.array([1, 2]), 1, 5) == 2


class TestPairwiseIntersections:
    def test_merge_basic(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5, 8])
        assert list(intersect_merge(a, b)) == [3, 5]

    def test_gallop_basic(self):
        small = np.array([3, 5, 9])
        large = np.array([1, 2, 3, 4, 5, 6, 7, 8, 10])
        assert list(intersect_gallop(small, large)) == [3, 5]

    def test_empty_inputs(self):
        empty = np.empty(0, dtype=np.int64)
        some = np.array([1, 2])
        assert intersect_merge(empty, some).size == 0
        assert intersect_gallop(empty, some).size == 0
        assert intersect_gallop(some, empty).size == 0

    @settings(max_examples=60)
    @given(sorted_unique, sorted_unique)
    def test_all_algorithms_agree_with_numpy(self, a, b):
        expected = list(np.intersect1d(a, b))
        assert list(intersect_merge(a, b)) == expected
        assert list(intersect_gallop(a, b)) == expected
        assert list(intersect_gallop(b, a)) == expected

    @settings(max_examples=40)
    @given(st.lists(sorted_unique, min_size=1, max_size=4))
    def test_adaptive_matches_reduce(self, lists):
        expected = lists[0]
        for other in lists[1:]:
            expected = np.intersect1d(expected, other)
        assert list(intersect_adaptive(lists)) == list(expected)

    def test_adaptive_empty_list_of_lists(self):
        assert intersect_adaptive([]).size == 0


class TestScoreConjunctive:
    def test_matches_daat_and_mode(self, small_index, small_query_log):
        from repro.search.query import QueryParser

        parser = QueryParser(small_index.analyzer)
        compared = 0
        for query in small_query_log:
            parsed = parser.parse(query.text, mode=QueryMode.AND, k=10)
            if len(parsed.terms) < 2:
                continue
            fast = score_conjunctive(small_index, parsed)
            reference = score_daat(small_index, parsed)
            assert [h.doc_id for h in fast] == [h.doc_id for h in reference]
            for a, b in zip(fast, reference):
                assert a.score == pytest.approx(b.score)
            compared += 1
            if compared >= 20:
                break
        assert compared >= 10

    def test_rejects_or_mode(self, small_index):
        with pytest.raises(ValueError):
            score_conjunctive(
                small_index, ParsedQuery(terms=("x",), mode=QueryMode.OR)
            )

    def test_missing_term_empty(self, small_index):
        parsed = ParsedQuery(
            terms=("zzzznotaterm",), mode=QueryMode.AND, k=5
        )
        assert score_conjunctive(small_index, parsed) == []

    def test_empty_query(self, small_index):
        parsed = ParsedQuery(terms=(), mode=QueryMode.AND, k=5)
        assert score_conjunctive(small_index, parsed) == []
