"""Tests for the analytical capacity model and provisioning planner."""

import numpy as np
import pytest

from repro.capacity import (
    CapacityModel,
    CapacityPrediction,
    ProvisioningPlan,
    ServiceTimeProfile,
    peak_replicas,
    plan_provisioning,
    static_replica_hours,
)
from repro.cluster.server import PartitionModelConfig
from repro.servers.spec import ServerSpec
from repro.workload.diurnal import DiurnalArrivals
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)

SPEC = ServerSpec(
    name="test-node",
    num_cores=2,
    core_speed=0.5,
    idle_power_watts=30.0,
    peak_power_watts=90.0,
)


@pytest.fixture(scope="module")
def model():
    return CapacityModel(
        profile=ServiceTimeProfile.from_demand_model(DEMAND), spec=SPEC
    )


class TestServiceTimeProfile:
    def test_from_demand_model_is_deterministic(self):
        a = ServiceTimeProfile.from_demand_model(DEMAND)
        b = ServiceTimeProfile.from_demand_model(DEMAND)
        assert np.array_equal(a.samples, b.samples)

    def test_moments_match_the_parametric_model(self):
        profile = ServiceTimeProfile.from_demand_model(DEMAND)
        assert profile.mean == pytest.approx(DEMAND.mean_demand(), rel=0.02)
        assert profile.quantile(0.5) == pytest.approx(
            np.exp(DEMAND.mu), rel=0.05
        )
        assert profile.scv > 0.5  # heavy-tailed, not deterministic

    def test_from_measurements(self):
        profile = ServiceTimeProfile.from_measurements([0.01, 0.02, 0.03])
        assert profile.mean == pytest.approx(0.02)

    def test_validation(self):
        with pytest.raises(ValueError, match="two samples"):
            ServiceTimeProfile(samples=np.array([0.01]))
        with pytest.raises(ValueError, match="non-negative"):
            ServiceTimeProfile(samples=np.array([0.01, -0.5]))
        with pytest.raises(ValueError, match="quantile"):
            ServiceTimeProfile.from_demand_model(DEMAND).quantile(1.5)


class TestPredict:
    def test_prediction_fields(self, model):
        pred = model.predict(20.0)
        assert isinstance(pred, CapacityPrediction)
        assert pred.stable
        assert 0.0 < pred.utilization < 1.0
        assert 0.0 < pred.p50_s < pred.p95_s < pred.p99_s
        assert pred.as_dict()["p99_s"] == pred.p99_s

    def test_latency_monotone_in_load(self, model):
        sat = model.saturation_qps(1, 1)
        p99s = [
            model.predict(sat * f).p99_s for f in (0.2, 0.4, 0.6, 0.8)
        ]
        assert p99s == sorted(p99s)

    def test_replicas_reduce_latency(self, model):
        qps = 0.7 * model.saturation_qps(1, 1)
        single = model.predict(qps, replicas=1)
        doubled = model.predict(qps, replicas=2)
        assert doubled.p99_s < single.p99_s
        assert doubled.utilization == pytest.approx(
            single.utilization / 2.0
        )

    def test_unstable_beyond_saturation(self, model):
        qps = 1.1 * model.saturation_qps(1, 1)
        pred = model.predict(qps)
        assert not pred.stable
        assert pred.p99_s == float("inf")

    def test_deterministic(self, model):
        a = model.predict(30.0, shards=4, replicas=2)
        b = model.predict(30.0, shards=4, replicas=2)
        assert a == b

    def test_merge_revisit_raises_the_wait(self):
        """A nonzero merge step re-queues at the core bank in the DES;
        the model must charge that second visit."""
        profile = ServiceTimeProfile.from_demand_model(DEMAND)
        with_merge = CapacityModel(profile=profile, spec=SPEC)
        flat = CapacityModel(
            profile=profile,
            spec=SPEC,
            partitioning=PartitionModelConfig(
                merge_base=0.0, merge_per_partition=0.0
            ),
        )
        qps = 0.6 * with_merge.saturation_qps(1, 1)
        assert (
            with_merge.predict(qps).mean_wait_s
            > 1.5 * flat.predict(qps).mean_wait_s
        )

    def test_validation(self, model):
        with pytest.raises(ValueError, match="qps"):
            model.predict(0.0)
        with pytest.raises(ValueError, match="shards"):
            model.predict(10.0, shards=0)
        with pytest.raises(ValueError, match="replicas"):
            model.predict(10.0, replicas=-1)


class TestPredictVsDes:
    def test_p99_tracks_the_simulator(self, model):
        """One mid-load point against the DES (the full sweep is the
        fig27 benchmark's job)."""
        from repro.api import ClusterConfig, ClusterModel

        qps = 0.5 * model.saturation_qps(1, 1)
        predicted = model.predict(qps).p99_s
        pooled = np.concatenate(
            [
                ClusterModel(ClusterConfig(num_servers=1, spec=SPEC))
                .run(
                    rate_qps=qps,
                    num_queries=10_000,
                    demand=DEMAND,
                    seed=seed,
                )
                .latencies(0.05)
                for seed in (1, 2)
            ]
        )
        des = float(np.quantile(pooled, 0.99))
        assert predicted == pytest.approx(des, rel=0.2)


class TestReplicasForSlo:
    def test_returns_minimal_count(self, model):
        qps = 2.5 * model.saturation_qps(1, 1)
        slo = 0.25
        needed = model.replicas_for_slo(qps, slo)
        assert model.predict(qps, replicas=needed).p99_s <= slo
        if needed > 1:
            worse = model.predict(qps, replicas=needed - 1)
            assert not worse.stable or worse.p99_s > slo

    def test_impossible_slo_raises(self, model):
        # Below the unloaded service floor: no fleet size can meet it.
        with pytest.raises(ValueError, match="no replica count"):
            model.replicas_for_slo(10.0, 1e-4, max_replicas=8)

    def test_validation(self, model):
        with pytest.raises(ValueError, match="p99_slo_s"):
            model.replicas_for_slo(10.0, 0.0)


class TestAvailabilityAwarePlanning:
    """N+k sizing under an MTTF/MTTR replica fault model."""

    MTTF_S = 150.0
    MTTR_S = 50.0  # availability 0.75

    def test_attainment_is_a_probability(self, model):
        qps = 1.5 * model.saturation_qps(1, 1)
        for replicas in (2, 3, 4):
            attainment = model.attainment(qps, 0.25, replicas=replicas)
            assert 0.0 <= attainment <= 1.0

    def test_attainment_zero_when_unstable(self, model):
        qps = 2.0 * model.saturation_qps(1, 1)
        assert model.attainment(qps, 0.25, replicas=1) == 0.0

    def test_attainment_improves_with_replicas(self, model):
        qps = 1.5 * model.saturation_qps(1, 1)
        assert model.attainment(qps, 0.25, replicas=4) >= model.attainment(
            qps, 0.25, replicas=2
        )

    def test_expected_attainment_below_ideal(self, model):
        qps = 1.5 * model.saturation_qps(1, 1)
        ideal = model.attainment(qps, 0.25, replicas=3)
        expected = model.expected_slo_attainment(
            qps, 0.25, 1, 3, self.MTTF_S, self.MTTR_S
        )
        assert 0.0 <= expected < ideal

    def test_expected_attainment_monotone_in_replicas(self, model):
        qps = 1.5 * model.saturation_qps(1, 1)
        values = [
            model.expected_slo_attainment(
                qps, 0.25, 1, n, self.MTTF_S, self.MTTR_S
            )
            for n in range(2, 8)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_replicas_for_slo_adds_spares(self, model):
        qps = 2.5 * model.saturation_qps(1, 1)
        naive = model.replicas_for_slo(qps, 0.25)
        planned = model.replicas_for_slo(
            qps, 0.25, mttf_s=self.MTTF_S, mttr_s=self.MTTR_S
        )
        assert planned > naive
        assert (
            model.expected_slo_attainment(
                qps, 0.25, 1, planned, self.MTTF_S, self.MTTR_S
            )
            >= 0.99
        )
        if planned > 1:
            assert (
                model.expected_slo_attainment(
                    qps, 0.25, 1, planned - 1, self.MTTF_S, self.MTTR_S
                )
                < 0.99
            )

    def test_perfect_availability_matches_naive(self, model):
        # MTTR ~ 0: replicas are effectively always up, so the
        # availability-aware plan collapses to the load-only sizing.
        qps = 2.5 * model.saturation_qps(1, 1)
        naive = model.replicas_for_slo(qps, 0.25)
        planned = model.replicas_for_slo(
            qps, 0.25, mttf_s=1e12, mttr_s=1e-9, attainment_target=0.99
        )
        assert planned == naive

    def test_both_or_neither_validation(self, model):
        with pytest.raises(ValueError, match="mttf_s and mttr_s"):
            model.replicas_for_slo(10.0, 0.25, mttf_s=100.0)
        with pytest.raises(ValueError, match="mttf_s and mttr_s"):
            model.replicas_for_slo(10.0, 0.25, mttr_s=100.0)

    def test_unreachable_target_raises(self, model):
        # Availability so poor that no fleet within the cap meets the
        # target.
        with pytest.raises(ValueError, match="no replica count"):
            model.replicas_for_slo(
                2.0 * model.saturation_qps(1, 1),
                0.25,
                max_replicas=4,
                mttf_s=1.0,
                mttr_s=100.0,
            )


class TestProvisioningPlan:
    @pytest.fixture(scope="class")
    def day(self):
        return DiurnalArrivals(
            base_qps=10.0,
            peak_qps=120.0,
            period_s=3_600.0,
            peak_time_s=1_800.0,
        )

    def test_peak_replicas_covers_the_peak(self, model, day):
        static_n = peak_replicas(model, day, 0.3, horizon_s=3_600.0)
        peak = day.peak_envelope_qps(3_600.0)
        assert model.predict(1.1 * peak, replicas=static_n).p99_s <= 0.3

    def test_plan_saves_replica_hours(self, model, day):
        static_n = peak_replicas(model, day, 0.3, horizon_s=3_600.0)
        plan = plan_provisioning(
            model, day, 0.3, horizon_s=3_600.0, interval_s=450.0
        )
        assert isinstance(plan, ProvisioningPlan)
        assert plan.static_replicas == static_n
        assert plan.replica_hours() < plan.static_hours()
        assert 0.0 < plan.savings_fraction() < 1.0
        # The planned fleet at the peak matches static sizing...
        assert plan.replicas_at(1_800.0) == static_n
        # ...and the trough needs fewer.
        assert plan.replicas_at(0.0) < static_n

    def test_static_replica_hours(self):
        assert static_replica_hours(4, 1_800.0) == pytest.approx(2.0)
