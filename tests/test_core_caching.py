"""Tests for the caching study and the cached demand model."""

import numpy as np
import pytest

from repro.cluster.simulation import ClusterConfig
from repro.core.caching import caching_latency_study, hit_rate_vs_capacity
from repro.servers.catalog import BIG_SERVER
from repro.workload.cached import CachedDemand
from repro.workload.servicetime import IndexDerivedDemand


@pytest.fixture(scope="module")
def base_demand(small_index, small_query_log):
    return IndexDerivedDemand(
        index=small_index,
        query_log=small_query_log,
        base_seconds=0.002,
        per_posting_seconds=2e-5,
    )


class TestHitRateVsCapacity:
    def test_monotone_in_capacity(self, small_query_log):
        rates = hit_rate_vs_capacity(
            small_query_log, capacities=[1, 10, 50], num_queries=8_000
        )
        assert rates[0] < rates[1] < rates[2]

    def test_full_log_capacity_hits_everything(self, small_query_log):
        rates = hit_rate_vs_capacity(
            small_query_log,
            capacities=[len(small_query_log)],
            num_queries=8_000,
        )
        # After warm-up every unique query is resident.
        assert rates[0] > 0.95

    def test_zipf_head_gives_outsize_hit_rate(self, small_query_log):
        # A cache of 10% of the unique queries captures far more than
        # 10% of the traffic under Zipf popularity.
        capacity = max(1, len(small_query_log) // 10)
        rates = hit_rate_vs_capacity(
            small_query_log, capacities=[capacity], num_queries=8_000
        )
        assert rates[0] > 0.2

    def test_invalid_inputs(self, small_query_log):
        with pytest.raises(ValueError):
            hit_rate_vs_capacity(small_query_log, capacities=[])
        with pytest.raises(ValueError):
            hit_rate_vs_capacity(small_query_log, capacities=[0])


class TestCachedDemand:
    def test_hits_cost_less(self, base_demand, rng):
        cached = CachedDemand(
            base=base_demand, cache_capacity=50, hit_cost_seconds=1e-5
        )
        demands = cached.demands(2_000, rng)
        hits = demands == 1e-5
        assert hits.any(), "expected some cache hits"
        assert (~hits).any(), "expected some cache misses"

    def test_mean_demand_below_uncached(self, base_demand):
        cached = CachedDemand(base=base_demand, cache_capacity=50)
        assert cached.mean_demand() < base_demand.mean_demand()

    def test_bigger_cache_lower_mean(self, base_demand):
        small = CachedDemand(base=base_demand, cache_capacity=5)
        large = CachedDemand(base=base_demand, cache_capacity=80)
        assert large.mean_demand() < small.mean_demand()

    def test_measured_hit_rate_in_unit_interval(self, base_demand):
        cached = CachedDemand(base=base_demand, cache_capacity=30)
        rate = cached.measured_hit_rate(num_queries=5_000)
        assert 0.0 < rate < 1.0

    def test_invalid_params(self, base_demand):
        with pytest.raises(ValueError):
            CachedDemand(base=base_demand, cache_capacity=0)
        with pytest.raises(ValueError):
            CachedDemand(
                base=base_demand, cache_capacity=1, hit_cost_seconds=-1.0
            )


class TestCachingLatencyStudy:
    def test_cache_cuts_mean_latency(self, base_demand):
        points = caching_latency_study(
            ClusterConfig(spec=BIG_SERVER),
            base_demand,
            cache_capacities=[0, 50],
            rate_qps=100.0,
            num_queries=3_000,
        )
        uncached, cached = points
        assert cached.hit_rate > 0
        assert cached.summary.mean < uncached.summary.mean
        assert cached.utilization < uncached.utilization

    def test_tail_shrinks_less_than_mean(self, base_demand):
        """The asymmetry the study demonstrates: hits thin the body,
        but the p99 is made of misses and moves much less."""
        points = caching_latency_study(
            ClusterConfig(spec=BIG_SERVER),
            base_demand,
            cache_capacities=[0, 50],
            rate_qps=100.0,
            num_queries=3_000,
        )
        uncached, cached = points
        mean_reduction = uncached.summary.mean / cached.summary.mean
        p99_reduction = uncached.summary.p99 / cached.summary.p99
        assert mean_reduction > p99_reduction

    def test_invalid_rate(self, base_demand):
        with pytest.raises(ValueError):
            caching_latency_study(
                ClusterConfig(spec=BIG_SERVER),
                base_demand,
                cache_capacities=[0],
                rate_qps=0.0,
            )
