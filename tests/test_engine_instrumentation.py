"""Tests for timing instrumentation."""

import time

import pytest

from repro.engine.instrumentation import ComponentTimings, Timer
from repro.obs.tracing import Tracer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert timer.elapsed < 0.5

    def test_nested_timers_independent(self):
        with Timer() as outer:
            with Timer() as inner:
                time.sleep(0.005)
        assert outer.elapsed >= inner.elapsed

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_exit_without_enter_does_not_raise(self):
        """Regression: __exit__ before __enter__ must stay silent.

        Raising from __exit__ would replace whatever exception is
        already propagating out of the with-body.
        """
        timer = Timer()
        timer.__exit__(None, None, None)
        assert timer.elapsed == 0.0

    def test_body_exception_not_masked(self):
        class BodyError(Exception):
            pass

        timer = Timer()
        timer._start = None  # simulate a half-initialized timer
        with pytest.raises(BodyError):
            try:
                raise BodyError()
            finally:
                # Mirrors interpreter behaviour on `with` teardown: if
                # __exit__ raised here, BodyError would be replaced.
                timer.__exit__(BodyError, BodyError(), None)

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= 0.005
        assert timer.elapsed != first


class TestComponentTimings:
    def test_slowest_shard(self):
        timings = ComponentTimings(shard_seconds=[0.1, 0.5, 0.2])
        assert timings.slowest_shard_seconds == 0.5

    def test_skew(self):
        timings = ComponentTimings(shard_seconds=[0.1, 0.5, 0.2])
        assert timings.skew_seconds == pytest.approx(0.4)

    def test_empty_shards(self):
        timings = ComponentTimings()
        assert timings.slowest_shard_seconds == 0.0
        assert timings.skew_seconds == 0.0

    def test_single_shard_no_skew(self):
        """Regression: one shard has no straggler, so skew is 0.0."""
        assert ComponentTimings(shard_seconds=[0.3]).skew_seconds == 0.0


def record_isn_tree(tracer, *, shards=(), parse=None, fanout=None, merge=None):
    root = tracer.record_span("isn.execute", start=0.0, end=10.0, parent=None)
    if parse is not None:
        tracer.record_span("parse", start=parse[0], end=parse[1], parent=root)
    if fanout is not None:
        fanout_span = tracer.record_span(
            "fanout", start=fanout[0], end=fanout[1], parent=root
        )
        for start, end in shards:
            tracer.record_span(
                "shard", start=start, end=end, parent=fanout_span
            )
    if merge is not None:
        tracer.record_span("merge", start=merge[0], end=merge[1], parent=root)
    return root


class TestFromSpan:
    def test_full_tree(self):
        root = record_isn_tree(
            Tracer(),
            parse=(0.0, 1.0),
            fanout=(1.0, 8.0),
            shards=[(1.0, 4.0), (1.5, 7.5)],
            merge=(8.0, 9.5),
        )
        timings = ComponentTimings.from_span(root)
        assert timings == ComponentTimings(
            parse_seconds=1.0,
            shard_seconds=[3.0, 6.0],
            fanout_seconds=7.0,
            merge_seconds=1.5,
            total_seconds=10.0,
        )
        assert timings.skew_seconds == pytest.approx(3.0)

    def test_missing_components_default_to_zero(self):
        """A cache-hit trace has only parse under the root."""
        root = record_isn_tree(Tracer(), parse=(0.0, 1.0))
        timings = ComponentTimings.from_span(root)
        assert timings.parse_seconds == 1.0
        assert timings.shard_seconds == []
        assert timings.fanout_seconds == 0.0
        assert timings.merge_seconds == 0.0
        assert timings.total_seconds == 10.0

    def test_bare_root(self):
        root = Tracer().record_span("isn.execute", 0.0, 2.5, parent=None)
        assert ComponentTimings.from_span(root) == ComponentTimings(
            total_seconds=2.5
        )

    def test_foreign_children_ignored(self):
        tracer = Tracer()
        root = record_isn_tree(tracer, parse=(0.0, 1.0))
        tracer.record_span("snippets", start=1.0, end=2.0, parent=root)
        timings = ComponentTimings.from_span(root)
        assert timings.parse_seconds == 1.0
        assert timings.shard_seconds == []
