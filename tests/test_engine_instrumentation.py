"""Tests for timing instrumentation."""

import time

import pytest

from repro.engine.instrumentation import ComponentTimings, Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.01
        assert timer.elapsed < 0.5

    def test_nested_timers_independent(self):
        with Timer() as outer:
            with Timer() as inner:
                time.sleep(0.005)
        assert outer.elapsed >= inner.elapsed

    def test_elapsed_zero_before_use(self):
        assert Timer().elapsed == 0.0


class TestComponentTimings:
    def test_slowest_shard(self):
        timings = ComponentTimings(shard_seconds=[0.1, 0.5, 0.2])
        assert timings.slowest_shard_seconds == 0.5

    def test_skew(self):
        timings = ComponentTimings(shard_seconds=[0.1, 0.5, 0.2])
        assert timings.skew_seconds == pytest.approx(0.4)

    def test_empty_shards(self):
        timings = ComponentTimings()
        assert timings.slowest_shard_seconds == 0.0
        assert timings.skew_seconds == 0.0

    def test_single_shard_no_skew(self):
        assert ComponentTimings(shard_seconds=[0.3]).skew_seconds == 0.0
