"""Tests for the DVFS study."""

import pytest

from repro.cluster.server import PartitionModelConfig
from repro.core.dvfs import dvfs_study
from repro.servers.catalog import BIG_SERVER
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.0, sigma=0.6)
COST_MODEL = PartitionModelConfig(
    partition_overhead=0.0003, merge_base=0.0002, merge_per_partition=0.0001
)


class TestDvfsStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return dvfs_study(
            BIG_SERVER,
            DEMAND,
            frequency_factors=[1.0, 0.7, 0.5],
            rate_qps=40.0,
            cost_model=COST_MODEL,
            compensation_partitions=(1, 2, 4, 8),
            num_queries=2_500,
        )

    def test_downclocking_raises_latency(self, points):
        p99s = {p.frequency_factor: p.summary.p99 for p in points}
        assert p99s[0.7] > p99s[1.0]
        assert p99s[0.5] > p99s[0.7]

    def test_downclocking_saves_power(self, points):
        powers = {p.frequency_factor: p.power_watts for p in points}
        assert powers[0.5] < powers[0.7] < powers[1.0]

    def test_full_frequency_needs_no_compensation(self, points):
        full = next(p for p in points if p.frequency_factor == 1.0)
        assert full.compensating_partitions == 1

    def test_partitioning_compensates_downclocking(self, points):
        slow = next(p for p in points if p.frequency_factor == 0.5)
        assert slow.compensating_partitions is not None
        assert slow.compensating_partitions > 1

    def test_energy_per_query_decreases(self, points):
        energies = {
            p.frequency_factor: p.energy_per_query_joules for p in points
        }
        assert energies[0.5] < energies[1.0]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            dvfs_study(BIG_SERVER, DEMAND, [], rate_qps=10.0)
        with pytest.raises(ValueError):
            dvfs_study(BIG_SERVER, DEMAND, [0.0], rate_qps=10.0)
        with pytest.raises(ValueError):
            dvfs_study(BIG_SERVER, DEMAND, [1.0], rate_qps=0.0)
