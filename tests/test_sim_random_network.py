"""Unit tests for RNG streams and network models."""

import numpy as np
import pytest

from repro.sim.network import FixedDelay, LognormalDelay, NoDelay
from repro.sim.random import RandomStreams


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(7)
        assert streams.stream("arrivals") is streams.stream("arrivals")

    def test_reproducible_across_instances(self):
        first = RandomStreams(7).stream("arrivals").random(5)
        second = RandomStreams(7).stream("arrivals").random(5)
        assert np.array_equal(first, second)

    def test_independent_of_request_order(self):
        streams_a = RandomStreams(7)
        streams_a.stream("demands")
        a = streams_a.stream("arrivals").random(5)
        streams_b = RandomStreams(7)
        b = streams_b.stream("arrivals").random(5)
        assert np.array_equal(a, b)

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        a = streams.stream("arrivals").random(5)
        b = streams.stream("demands").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random(5)
        b = RandomStreams(2).stream("x").random(5)
        assert not np.array_equal(a, b)


class TestNetworkModels:
    def test_no_delay(self, rng):
        assert NoDelay().delay(rng) == 0.0

    def test_fixed_delay(self, rng):
        assert FixedDelay(0.001).delay(rng) == 0.001

    def test_fixed_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDelay(-0.1)

    def test_lognormal_delay_positive(self, rng):
        model = LognormalDelay(median=0.001, sigma=0.5)
        delays = [model.delay(rng) for _ in range(500)]
        assert all(delay > 0 for delay in delays)

    def test_lognormal_delay_median(self, rng):
        model = LognormalDelay(median=0.002, sigma=0.3)
        delays = np.array([model.delay(rng) for _ in range(5_000)])
        assert np.median(delays) == pytest.approx(0.002, rel=0.1)

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LognormalDelay(median=0.0)
        with pytest.raises(ValueError):
            LognormalDelay(median=1.0, sigma=-1.0)
