"""Unit tests for query-log generation."""

import numpy as np
import pytest

from repro.corpus.querylog import (
    Query,
    QueryLog,
    QueryLogConfig,
    QueryLogGenerator,
)
from repro.corpus.vocabulary import Vocabulary, VocabularyConfig


@pytest.fixture(scope="module")
def vocabulary():
    return Vocabulary(VocabularyConfig(size=2_000, seed=3))


class TestQueryLogGenerator:
    def test_unique_query_count(self, small_query_log):
        assert len(small_query_log) == 100

    def test_queries_are_unique_texts(self, small_query_log):
        texts = [query.text for query in small_query_log]
        assert len(set(texts)) == len(texts)

    def test_dense_query_ids(self, small_query_log):
        assert [query.query_id for query in small_query_log] == list(range(100))

    def test_terms_within_query_distinct(self, small_query_log):
        for query in small_query_log:
            terms = query.raw_terms
            assert len(set(terms)) == len(terms)

    def test_term_count_mix_respected(self, vocabulary):
        config = QueryLogConfig(
            num_unique_queries=1_000,
            term_count_mix=((1, 0.5), (3, 0.5)),
            seed=7,
        )
        log = QueryLogGenerator(vocabulary, config).generate()
        histogram = log.term_count_histogram()
        assert set(histogram) == {1, 3}
        assert histogram[1] == pytest.approx(500, abs=80)

    def test_deterministic(self, vocabulary):
        config = QueryLogConfig(num_unique_queries=50, seed=13)
        first = QueryLogGenerator(vocabulary, config).generate()
        second = QueryLogGenerator(vocabulary, config).generate()
        assert [q.text for q in first] == [q.text for q in second]

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            QueryLogConfig(term_count_mix=((1, 0.5), (2, 0.4)))
        with pytest.raises(ValueError):
            QueryLogConfig(term_count_mix=((0, 1.0),))

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            QueryLogConfig(num_unique_queries=0)


class TestQueryLog:
    def test_popularity_is_zipfian(self, small_query_log):
        assert small_query_log.popularity(0) > small_query_log.popularity(50)
        total = sum(
            small_query_log.popularity(query_id)
            for query_id in range(len(small_query_log))
        )
        assert total == pytest.approx(1.0)

    def test_sample_stream_length_and_membership(self, small_query_log, rng):
        stream = small_query_log.sample_stream(500, rng)
        assert len(stream) == 500
        unique_ids = {query.query_id for query in stream}
        assert unique_ids <= set(range(len(small_query_log)))

    def test_sample_stream_head_heavy(self, small_query_log, rng):
        stream = small_query_log.sample_stream(5_000, rng)
        ids = np.array([query.query_id for query in stream])
        head_share = np.mean(ids < 10)
        assert head_share > 10 / len(small_query_log)

    def test_sample_stream_negative(self, small_query_log, rng):
        with pytest.raises(ValueError):
            small_query_log.sample_stream(-1, rng)

    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(queries=[])

    def test_query_raw_terms(self):
        query = Query(query_id=0, text="foo bar baz")
        assert query.raw_terms == ["foo", "bar", "baz"]
