"""Unit tests for the DES kernel and core bank."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.resources import CoreBank


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, order.append, "b")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(3.0, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 3.0
        assert sim.events_processed == 3

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "first")
        sim.schedule(1.0, order.append, "second")
        sim.run()
        assert order == ["first", "second"]

    def test_schedule_during_run(self):
        sim = Simulator()
        order = []

        def chain():
            order.append("root")
            sim.schedule_after(1.0, order.append, "child")

        sim.schedule(1.0, chain)
        sim.run()
        assert order == ["root", "child"]
        assert sim.now == 2.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule_after(-1.0, lambda: None)

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(10.0, fired.append, 10)
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1
        sim.run()
        assert fired == [1, 10]

    def test_run_until_beyond_last_event_advances_clock(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "x")
        assert sim.step() is True
        assert fired == ["x"]
        assert sim.step() is False


class TestCoreBank:
    def test_idle_core_starts_immediately(self):
        bank = CoreBank(2)
        start, end = bank.submit(5.0, 1.0)
        assert start == 5.0
        assert end == 6.0

    def test_parallel_tasks_use_separate_cores(self):
        bank = CoreBank(2)
        _, end_a = bank.submit(0.0, 1.0)
        _, end_b = bank.submit(0.0, 1.0)
        assert end_a == 1.0
        assert end_b == 1.0

    def test_third_task_queues(self):
        bank = CoreBank(2)
        bank.submit(0.0, 1.0)
        bank.submit(0.0, 1.0)
        start, end = bank.submit(0.0, 1.0)
        assert start == 1.0
        assert end == 2.0

    def test_fcfs_order(self):
        bank = CoreBank(1)
        _, end_a = bank.submit(0.0, 2.0)
        start_b, _ = bank.submit(0.5, 1.0)
        assert start_b == end_a

    def test_speed_scales_duration(self):
        bank = CoreBank(1, speed=0.5)
        start, end = bank.submit(0.0, 1.0)
        assert end - start == pytest.approx(2.0)

    def test_out_of_order_submission_rejected(self):
        bank = CoreBank(1)
        bank.submit(5.0, 1.0)
        with pytest.raises(ValueError):
            bank.submit(4.0, 1.0)

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            CoreBank(1).submit(0.0, -1.0)

    def test_zero_demand_allowed(self):
        start, end = CoreBank(1).submit(1.0, 0.0)
        assert start == end == 1.0

    def test_utilization(self):
        bank = CoreBank(2)
        bank.submit(0.0, 1.0)
        bank.submit(0.0, 1.0)
        assert bank.utilization(2.0) == pytest.approx(0.5)
        assert bank.busy_time == pytest.approx(2.0)

    def test_utilization_accounts_speed(self):
        bank = CoreBank(1, speed=2.0)
        bank.submit(0.0, 4.0)  # runs for 2 wall seconds
        assert bank.utilization(4.0) == pytest.approx(0.5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CoreBank(0)
        with pytest.raises(ValueError):
            CoreBank(1, speed=0)

    def test_next_free_time(self):
        bank = CoreBank(2)
        bank.submit(0.0, 3.0)
        assert bank.next_free_time() == 0.0
        bank.submit(0.0, 1.0)
        assert bank.next_free_time() == 1.0
