"""Tests for DAAT/TAAT/WAND traversal: correctness and cross-agreement."""

import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.search.daat import score_daat
from repro.search.query import ParsedQuery, QueryMode
from repro.search.taat import score_taat
from repro.search.scoring import TfIdfScorer
from repro.search.wand import score_wand
from repro.text.analyzer import Analyzer, AnalyzerConfig


def build_index(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return IndexBuilder(
        Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
    ).build(collection)


@pytest.fixture(scope="module")
def tiny_index():
    return build_index(
        [
            "cat dog",
            "dog dog bird",
            "cat cat cat fish",
            "fish",
            "cat dog bird fish",
            "unrelated words here",
        ]
    )


class TestDaat:
    def test_single_term(self, tiny_index):
        hits = score_daat(tiny_index, ParsedQuery(terms=("fish",), k=10))
        assert sorted(hit.doc_id for hit in hits) == [2, 3, 4]

    def test_or_query_union(self, tiny_index):
        hits = score_daat(tiny_index, ParsedQuery(terms=("cat", "bird"), k=10))
        assert sorted(hit.doc_id for hit in hits) == [0, 1, 2, 4]

    def test_and_query_intersection(self, tiny_index):
        query = ParsedQuery(terms=("cat", "dog"), mode=QueryMode.AND, k=10)
        hits = score_daat(tiny_index, query)
        assert sorted(hit.doc_id for hit in hits) == [0, 4]

    def test_and_with_missing_term_empty(self, tiny_index):
        query = ParsedQuery(terms=("cat", "zzzz"), mode=QueryMode.AND, k=10)
        assert score_daat(tiny_index, query) == []

    def test_or_with_missing_term_ignores_it(self, tiny_index):
        with_missing = score_daat(
            tiny_index, ParsedQuery(terms=("cat", "zzzz"), k=10)
        )
        without = score_daat(tiny_index, ParsedQuery(terms=("cat",), k=10))
        assert [h.doc_id for h in with_missing] == [h.doc_id for h in without]

    def test_unknown_terms_only(self, tiny_index):
        assert score_daat(tiny_index, ParsedQuery(terms=("zzzz",), k=10)) == []

    def test_empty_query(self, tiny_index):
        assert score_daat(tiny_index, ParsedQuery(terms=(), k=10)) == []

    def test_k_limits_results(self, tiny_index):
        hits = score_daat(tiny_index, ParsedQuery(terms=("cat", "dog"), k=2))
        assert len(hits) == 2

    def test_scores_descending(self, tiny_index):
        hits = score_daat(
            tiny_index, ParsedQuery(terms=("cat", "dog", "fish"), k=10)
        )
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_higher_tf_ranks_higher_single_term(self, tiny_index):
        # doc 2 has "cat" x3 and is shorter-per-match than doc 4.
        hits = score_daat(tiny_index, ParsedQuery(terms=("cat",), k=10))
        assert hits[0].doc_id == 2

    def test_custom_scorer(self, tiny_index):
        scorer = TfIdfScorer(num_documents=tiny_index.num_documents)
        hits = score_daat(tiny_index, ParsedQuery(terms=("cat",), k=10), scorer)
        assert hits[0].doc_id == 2  # tf wins under tf-idf too


class TestAgreement:
    """DAAT, TAAT, and WAND must agree on every query."""

    QUERIES = [
        ParsedQuery(terms=("cat",), k=5),
        ParsedQuery(terms=("cat", "dog"), k=5),
        ParsedQuery(terms=("cat", "dog", "bird", "fish"), k=3),
        ParsedQuery(terms=("fish", "zzzz"), k=5),
        ParsedQuery(terms=("unrelated",), k=5),
    ]

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_taat_matches_daat(self, tiny_index, query_index):
        query = self.QUERIES[query_index]
        daat = score_daat(tiny_index, query)
        taat = score_taat(tiny_index, query)
        assert [(h.doc_id, pytest.approx(h.score)) for h in daat] == [
            (h.doc_id, h.score) for h in taat
        ]

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_wand_matches_daat_scores(self, tiny_index, query_index):
        query = self.QUERIES[query_index]
        daat = score_daat(tiny_index, query)
        wand = score_wand(tiny_index, query)
        assert [round(h.score, 9) for h in wand] == [
            round(h.score, 9) for h in daat
        ]

    def test_and_mode_agreement(self, tiny_index):
        query = ParsedQuery(terms=("cat", "fish"), mode=QueryMode.AND, k=5)
        daat = score_daat(tiny_index, query)
        taat = score_taat(tiny_index, query)
        assert [h.doc_id for h in daat] == [h.doc_id for h in taat]

    def test_wand_rejects_and_mode(self, tiny_index):
        query = ParsedQuery(terms=("cat",), mode=QueryMode.AND, k=5)
        with pytest.raises(ValueError):
            score_wand(tiny_index, query)

    def test_agreement_on_realistic_corpus(self, small_index, small_query_log):
        from repro.search.query import QueryParser

        parser = QueryParser(small_index.analyzer)
        for query_text in [q.text for q in list(small_query_log)[:25]]:
            query = parser.parse(query_text)
            daat = score_daat(small_index, query)
            taat = score_taat(small_index, query)
            wand = score_wand(small_index, query)
            assert [h.doc_id for h in daat] == [h.doc_id for h in taat]
            assert [round(h.score, 9) for h in wand] == [
                round(h.score, 9) for h in daat
            ]
