"""Tests for DAAT/TAAT/WAND traversal: correctness and cross-agreement."""

import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.search.block_max_wand import score_block_max_wand
from repro.search.daat import score_daat
from repro.search.query import ParsedQuery, QueryMode
from repro.search.taat import score_taat
from repro.search.scoring import TfIdfScorer
from repro.search.wand import score_wand
from repro.text.analyzer import Analyzer, AnalyzerConfig


def build_index(texts, block_size=128):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return IndexBuilder(
        Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False)),
        block_size=block_size,
    ).build(collection)


@pytest.fixture(scope="module")
def tiny_index():
    return build_index(
        [
            "cat dog",
            "dog dog bird",
            "cat cat cat fish",
            "fish",
            "cat dog bird fish",
            "unrelated words here",
        ]
    )


class TestDaat:
    def test_single_term(self, tiny_index):
        hits = score_daat(tiny_index, ParsedQuery(terms=("fish",), k=10))
        assert sorted(hit.doc_id for hit in hits) == [2, 3, 4]

    def test_or_query_union(self, tiny_index):
        hits = score_daat(tiny_index, ParsedQuery(terms=("cat", "bird"), k=10))
        assert sorted(hit.doc_id for hit in hits) == [0, 1, 2, 4]

    def test_and_query_intersection(self, tiny_index):
        query = ParsedQuery(terms=("cat", "dog"), mode=QueryMode.AND, k=10)
        hits = score_daat(tiny_index, query)
        assert sorted(hit.doc_id for hit in hits) == [0, 4]

    def test_and_with_missing_term_empty(self, tiny_index):
        query = ParsedQuery(terms=("cat", "zzzz"), mode=QueryMode.AND, k=10)
        assert score_daat(tiny_index, query) == []

    def test_or_with_missing_term_ignores_it(self, tiny_index):
        with_missing = score_daat(
            tiny_index, ParsedQuery(terms=("cat", "zzzz"), k=10)
        )
        without = score_daat(tiny_index, ParsedQuery(terms=("cat",), k=10))
        assert [h.doc_id for h in with_missing] == [h.doc_id for h in without]

    def test_unknown_terms_only(self, tiny_index):
        assert score_daat(tiny_index, ParsedQuery(terms=("zzzz",), k=10)) == []

    def test_empty_query(self, tiny_index):
        assert score_daat(tiny_index, ParsedQuery(terms=(), k=10)) == []

    def test_k_limits_results(self, tiny_index):
        hits = score_daat(tiny_index, ParsedQuery(terms=("cat", "dog"), k=2))
        assert len(hits) == 2

    def test_scores_descending(self, tiny_index):
        hits = score_daat(
            tiny_index, ParsedQuery(terms=("cat", "dog", "fish"), k=10)
        )
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)

    def test_higher_tf_ranks_higher_single_term(self, tiny_index):
        # doc 2 has "cat" x3 and is shorter-per-match than doc 4.
        hits = score_daat(tiny_index, ParsedQuery(terms=("cat",), k=10))
        assert hits[0].doc_id == 2

    def test_custom_scorer(self, tiny_index):
        scorer = TfIdfScorer(num_documents=tiny_index.num_documents)
        hits = score_daat(tiny_index, ParsedQuery(terms=("cat",), k=10), scorer)
        assert hits[0].doc_id == 2  # tf wins under tf-idf too


class TestAgreement:
    """DAAT, TAAT, and WAND must agree on every query."""

    QUERIES = [
        ParsedQuery(terms=("cat",), k=5),
        ParsedQuery(terms=("cat", "dog"), k=5),
        ParsedQuery(terms=("cat", "dog", "bird", "fish"), k=3),
        ParsedQuery(terms=("fish", "zzzz"), k=5),
        ParsedQuery(terms=("unrelated",), k=5),
    ]

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_taat_matches_daat(self, tiny_index, query_index):
        query = self.QUERIES[query_index]
        daat = score_daat(tiny_index, query)
        taat = score_taat(tiny_index, query)
        assert [(h.doc_id, pytest.approx(h.score)) for h in daat] == [
            (h.doc_id, h.score) for h in taat
        ]

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    def test_wand_matches_daat_scores(self, tiny_index, query_index):
        query = self.QUERIES[query_index]
        daat = score_daat(tiny_index, query)
        wand = score_wand(tiny_index, query)
        assert [round(h.score, 9) for h in wand] == [
            round(h.score, 9) for h in daat
        ]

    @pytest.mark.parametrize("query_index", range(len(QUERIES)))
    @pytest.mark.parametrize("block_size", [2, 128])
    def test_block_max_wand_bit_identical_to_daat(
        self, query_index, block_size
    ):
        index = build_index(
            [
                "cat dog",
                "dog dog bird",
                "cat cat cat fish",
                "fish",
                "cat dog bird fish",
                "unrelated words here",
            ],
            block_size=block_size,
        )
        query = self.QUERIES[query_index]
        daat = score_daat(index, query)
        bmw = score_block_max_wand(index, query)
        assert [(h.doc_id, h.score) for h in bmw] == [
            (h.doc_id, h.score) for h in daat
        ]

    def test_and_mode_agreement(self, tiny_index):
        query = ParsedQuery(terms=("cat", "fish"), mode=QueryMode.AND, k=5)
        daat = score_daat(tiny_index, query)
        taat = score_taat(tiny_index, query)
        assert [h.doc_id for h in daat] == [h.doc_id for h in taat]

    def test_wand_rejects_and_mode(self, tiny_index):
        query = ParsedQuery(terms=("cat",), mode=QueryMode.AND, k=5)
        with pytest.raises(ValueError):
            score_wand(tiny_index, query)

    def test_agreement_on_realistic_corpus(self, small_index, small_query_log):
        from repro.search.query import QueryParser

        parser = QueryParser(small_index.analyzer)
        for query_text in [q.text for q in list(small_query_log)[:25]]:
            query = parser.parse(query_text)
            daat = score_daat(small_index, query)
            taat = score_taat(small_index, query)
            wand = score_wand(small_index, query)
            bmw = score_block_max_wand(small_index, query)
            assert [h.doc_id for h in daat] == [h.doc_id for h in taat]
            assert [round(h.score, 9) for h in wand] == [
                round(h.score, 9) for h in daat
            ]
            assert [(h.doc_id, h.score) for h in bmw] == [
                (h.doc_id, h.score) for h in daat
            ]


@pytest.mark.parametrize(
    "traversal", [score_wand, score_block_max_wand], ids=["wand", "bmw"]
)
class TestWandFamilyEdgeCases:
    """Edge cases shared by WAND and Block-Max WAND."""

    def test_empty_query(self, tiny_index, traversal):
        assert traversal(tiny_index, ParsedQuery(terms=(), k=10)) == []

    def test_unknown_terms_only(self, tiny_index, traversal):
        assert (
            traversal(tiny_index, ParsedQuery(terms=("zzzz", "qqqq"), k=10))
            == []
        )

    def test_missing_term_ignored(self, tiny_index, traversal):
        with_missing = traversal(
            tiny_index, ParsedQuery(terms=("cat", "zzzz"), k=10)
        )
        without = score_daat(tiny_index, ParsedQuery(terms=("cat",), k=10))
        assert [(h.doc_id, h.score) for h in with_missing] == [
            (h.doc_id, h.score) for h in without
        ]

    def test_duplicate_query_terms(self, tiny_index, traversal):
        query = ParsedQuery(terms=("cat", "cat", "dog"), k=10)
        daat = score_daat(tiny_index, query)
        pruned = traversal(tiny_index, query)
        assert [(h.doc_id, round(h.score, 9)) for h in pruned] == [
            (h.doc_id, round(h.score, 9)) for h in daat
        ]

    def test_k_larger_than_match_count(self, tiny_index, traversal):
        query = ParsedQuery(terms=("fish",), k=500)
        daat = score_daat(tiny_index, query)
        pruned = traversal(tiny_index, query)
        assert len(pruned) == 3
        assert [(h.doc_id, round(h.score, 9)) for h in pruned] == [
            (h.doc_id, round(h.score, 9)) for h in daat
        ]

    def test_k_one(self, tiny_index, traversal):
        query = ParsedQuery(terms=("cat", "dog", "fish"), k=1)
        daat = score_daat(tiny_index, query)
        pruned = traversal(tiny_index, query)
        assert [(h.doc_id, round(h.score, 9)) for h in pruned] == [
            (h.doc_id, round(h.score, 9)) for h in daat
        ]

    def test_rejects_and_mode(self, tiny_index, traversal):
        query = ParsedQuery(terms=("cat",), mode=QueryMode.AND, k=5)
        with pytest.raises(ValueError):
            traversal(tiny_index, query)

    def test_single_document_corpus(self, traversal):
        index = build_index(["lonely document text"], block_size=2)
        query = ParsedQuery(terms=("lonely", "text"), k=5)
        daat = score_daat(index, query)
        pruned = traversal(index, query)
        assert [(h.doc_id, h.score) for h in pruned] == [
            (h.doc_id, h.score) for h in daat
        ]


class TestExhaustedCursor:
    @staticmethod
    def _postings():
        import numpy as np
        from types import SimpleNamespace

        return SimpleNamespace(
            doc_ids=np.array([0], dtype=np.int64),
            frequencies=np.array([1], dtype=np.int64),
        )

    def test_wand_cursor_current_raises_when_exhausted(self):
        from repro.search.wand import _WandCursor

        cursor = _WandCursor(self._postings(), idf=1.0, max_score=1.0)
        cursor.position = 1
        assert cursor.exhausted
        with pytest.raises(IndexError):
            cursor.current

    def test_bmw_cursor_current_raises_when_exhausted(self):
        import numpy as np

        from repro.index.blockmax import BlockMetadata
        from repro.search.block_max_wand import _BlockMaxCursor

        postings = self._postings()
        blocks = BlockMetadata.from_postings(
            postings, np.array([3], dtype=np.int64), block_size=2
        )
        cursor = _BlockMaxCursor(
            postings,
            idf=1.0,
            max_score=1.0,
            blocks=blocks,
            block_bounds=np.array([1.0]),
        )
        cursor.position = 1
        assert cursor.exhausted
        with pytest.raises(IndexError):
            cursor.current
