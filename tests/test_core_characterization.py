"""Tests for the service-time characterization study (F1/F2/T2)."""

import pytest

from repro.core.characterization import (
    characterize_service_times,
    index_scaling_study,
    service_time_by_term_count,
    service_time_by_volume,
)
from repro.corpus.generator import CorpusConfig
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index


@pytest.fixture(scope="module")
def characterization(small_collection, small_query_log):
    with IndexServingNode(partition_index(small_collection, 1)) as isn:
        yield characterize_service_times(
            isn, small_query_log, num_queries=150, repeats=2, seed=0
        )


class TestCharacterizeServiceTimes:
    def test_summary_populated(self, characterization):
        assert characterization.summary.count == 150
        assert characterization.summary.mean > 0

    def test_distribution_right_skewed(self, characterization):
        # The paper's F1 shape: mean above median, fat upper tail.
        assert characterization.summary.mean > characterization.summary.p50
        assert characterization.tail_ratio > 1.5

    def test_lognormal_fits_better_than_exponential(self, characterization):
        assert characterization.lognormal_fits_better

    def test_samples_accessor(self, characterization):
        samples = characterization.samples()
        assert samples.size == 150
        assert (samples > 0).all()

    def test_invalid_num_queries(self, small_collection, small_query_log):
        with IndexServingNode(partition_index(small_collection, 1)) as isn:
            with pytest.raises(ValueError):
                characterize_service_times(isn, small_query_log, num_queries=0)


class TestBucketing:
    def test_by_term_count(self, characterization):
        rows = service_time_by_term_count(characterization.measurements)
        assert rows, "expected at least one term-count bucket"
        term_counts = [row.term_count for row in rows]
        assert term_counts == sorted(term_counts)
        assert sum(row.num_queries for row in rows) == 150
        # More terms -> more postings traversed on average.
        if len(rows) >= 3:
            assert rows[-1].mean_volume > rows[0].mean_volume

    def test_by_volume_monotone_service_time(self, characterization):
        rows = service_time_by_volume(characterization.measurements, 4)
        assert len(rows) == 4
        assert sum(row.num_queries for row in rows) == 150
        # The top-volume quartile must cost more than the bottom one.
        assert rows[-1].mean_seconds > rows[0].mean_seconds
        assert rows[-1].high_volume >= rows[0].low_volume

    def test_empty_measurements_rejected(self):
        with pytest.raises(ValueError):
            service_time_by_term_count([])
        with pytest.raises(ValueError):
            service_time_by_volume([])

    def test_invalid_bucket_count(self, characterization):
        with pytest.raises(ValueError):
            service_time_by_volume(characterization.measurements, 0)


class TestIndexScaling:
    def test_service_time_grows_with_corpus(self):
        vocabulary = VocabularyConfig(size=1_500, seed=4)
        configs = [
            CorpusConfig(
                num_documents=size,
                vocabulary=vocabulary,
                mean_length=50,
                seed=17,
            )
            for size in (100, 400)
        ]
        rows = index_scaling_study(configs, queries_per_size=40, seed=0)
        assert [row.num_documents for row in rows] == [100, 400]
        assert (
            rows[1].index_stats.total_postings
            > rows[0].index_stats.total_postings
        )
        assert rows[1].service_summary.mean > rows[0].service_summary.mean

    def test_empty_configs_rejected(self):
        with pytest.raises(ValueError):
            index_scaling_study([])
