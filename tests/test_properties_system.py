"""Property-based tests of system-level invariants.

These go beyond unit behaviour: they assert the conservation laws and
equivalences the reproduction's conclusions rest on, over randomized
inputs (hypothesis) and randomized corpora.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.results import QueryRecord
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.partitioner import partition_index
from repro.index.serialization import deserialize_index, serialize_index
from repro.search.daat import score_daat
from repro.search.executor import Searcher, ShardSearcher
from repro.search.global_stats import global_scorer_factory
from repro.search.merger import merge_shard_results
from repro.search.query import ParsedQuery
from repro.search.taat import score_taat
from repro.servers.catalog import BIG_SERVER
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator
from repro.text.analyzer import Analyzer, AnalyzerConfig
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

PLAIN = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))

# Small random corpora: documents over a tiny vocabulary so terms collide.
words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)
documents_strategy = st.lists(
    st.lists(words, min_size=1, max_size=12).map(" ".join),
    min_size=1,
    max_size=12,
)
query_strategy = st.lists(words, min_size=1, max_size=4, unique=True)


def build(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return collection


class TestSearchEquivalences:
    @settings(max_examples=40, deadline=None)
    @given(documents_strategy, query_strategy)
    def test_daat_taat_agree_on_random_corpora(self, texts, terms):
        index = IndexBuilder(PLAIN).build(build(texts))
        query = ParsedQuery(terms=tuple(terms), k=5)
        daat = score_daat(index, query)
        taat = score_taat(index, query)
        assert [h.doc_id for h in daat] == [h.doc_id for h in taat]
        for a, b in zip(daat, taat):
            assert a.score == pytest.approx(b.score)

    @settings(max_examples=25, deadline=None)
    @given(
        documents_strategy,
        query_strategy,
        st.integers(min_value=1, max_value=4),
    )
    def test_partitioned_global_stats_equals_monolithic(
        self, texts, terms, num_partitions
    ):
        collection = build(texts)
        index = IndexBuilder(PLAIN).build(collection)
        partitioned = partition_index(
            collection, num_partitions, analyzer=PLAIN
        )
        factory = global_scorer_factory(partitioned)
        shard_results = [
            ShardSearcher(shard, scorer_factory=factory).search(
                ParsedQuery(terms=tuple(terms), k=5)
            ).hits
            for shard in partitioned
        ]
        merged = merge_shard_results(shard_results, k=5)
        reference = score_daat(index, ParsedQuery(terms=tuple(terms), k=5))
        assert [h.doc_id for h in merged] == [h.doc_id for h in reference]
        for a, b in zip(merged, reference):
            assert a.score == pytest.approx(b.score)

    @settings(max_examples=25, deadline=None)
    @given(documents_strategy)
    def test_index_serialization_roundtrip_random(self, texts):
        index = IndexBuilder(PLAIN).build(build(texts))
        restored = deserialize_index(serialize_index(index))
        assert restored.dictionary.terms() == index.dictionary.terms()
        for term in index.dictionary:
            assert restored.postings_for(term) == index.postings_for(term)


class TestSimulatorConservation:
    def _run(self, rate, num_partitions, num_queries=800, seed=0):
        config = ClusterConfig(
            spec=BIG_SERVER,
            partitioning=PartitionModelConfig(
                num_partitions=num_partitions,
                partition_overhead=0.0004,
                merge_base=0.0002,
                merge_per_partition=0.0001,
            ),
        )
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate),
            demands=LognormalDemand(-4.0, 0.6),
            num_queries=num_queries,
        )
        return config, run_open_loop(config, scenario, seed=seed)

    @settings(max_examples=10, deadline=None)
    @given(
        rate=st.floats(min_value=10.0, max_value=200.0),
        num_partitions=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1_000),
    )
    def test_work_conservation(self, rate, num_partitions, seed):
        """Busy core time equals the total work of all queries."""
        config, result = self._run(rate, num_partitions, seed=seed)
        expected_work = sum(
            config.partitioning.total_work(record.demand)
            for record in result.records
        )
        busy = result.core_busy_time
        assert busy == pytest.approx(expected_work, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(
        rate=st.floats(min_value=10.0, max_value=150.0),
        num_partitions=st.integers(min_value=1, max_value=8),
    )
    def test_latency_lower_bound(self, rate, num_partitions):
        """No query beats its own critical path: the largest partition
        task plus the merge, at core speed."""
        config, result = self._run(rate, num_partitions)
        merge = config.partitioning.merge_demand()
        alpha = config.partitioning.partition_overhead
        speed = BIG_SERVER.core_speed
        for record in result.records:
            # The largest task carries at least demand/P work.
            floor = (
                record.demand / num_partitions + alpha + merge
            ) / speed
            assert record.latency >= floor - 1e-9

    @settings(max_examples=8, deadline=None)
    @given(
        num_partitions=st.integers(min_value=1, max_value=16),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_common_random_numbers_across_partition_sweep(
        self, num_partitions, seed
    ):
        """Sweeping P must not perturb arrivals or per-query demands."""
        _, base = self._run(50.0, 1, num_queries=200, seed=seed)
        _, swept = self._run(50.0, num_partitions, num_queries=200, seed=seed)
        assert np.allclose(
            [r.client_send for r in base.records],
            [r.client_send for r in swept.records],
        )
        assert np.allclose(
            [r.demand for r in base.records],
            [r.demand for r in swept.records],
        )

    def test_component_decomposition_identity(self):
        """Every query's components sum exactly to its server latency."""
        _, result = self._run(80.0, 4)
        for record in result.records:
            total = (
                record.queue_wait
                + record.parallel_service
                + record.straggler_skew
                + record.merge_wait
                + record.merge_service
            )
            assert total == pytest.approx(record.server_latency, abs=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(
        demands=st.lists(
            st.floats(min_value=1e-4, max_value=0.1), min_size=1, max_size=20
        )
    )
    def test_single_core_fifo_makespan(self, demands):
        """On one core, the makespan is exactly the sum of demands when
        all queries arrive at time zero."""
        sim = Simulator()
        spec = ServerSpec("one", 1, 1.0, 0.0, 1.0)
        done = []
        server = SimulatedServer(
            sim,
            spec,
            PartitionModelConfig(
                num_partitions=1,
                partition_overhead=0.0,
                merge_base=0.0,
                merge_per_partition=0.0,
            ),
            imbalance_rng=np.random.default_rng(0),
            on_complete=done.append,
        )
        for query_id, demand in enumerate(demands):
            record = QueryRecord(
                query_id=query_id, client_send=0.0, demand=demand
            )
            sim.schedule(0.0, server.handle_arrival, record)
        sim.run()
        assert len(done) == len(demands)
        assert max(r.merge_end for r in done) == pytest.approx(sum(demands))
