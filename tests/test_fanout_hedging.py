"""Tail-tolerant DES fan-out: hedging, deadlines, and native parity.

Stragglers are scripted with :class:`OutageSpec` windows, so every
hedge/deadline assertion is deterministic.  The final test drives the
*same* policy through the native thread-pool ISN and the DES broker on
equivalent scripted scenarios and asserts both report identical
hedge-count statistics — the calibration contract between the two
interpreters of :class:`HedgingPolicy`.
"""

import math
import os
import time
from dataclasses import replace

import numpy as np
import pytest

from repro.cluster.fanout import FanoutConfig, run_fanout_open_loop
from repro.cluster.server import PartitionModelConfig
from repro.engine.execution import ExecutionConfig
from repro.engine.hedging import HedgingPolicy
from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index
from repro.obs import MetricsRegistry
from repro.servers.catalog import BIG_SERVER
from repro.sim.outages import OutageSpec
from repro.workload.arrivals import DeterministicArrivals, PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

from tests.test_hedging import ScriptedSearcher, _wait_for_cancellations

#: Constant 2 ms whole-query demand (sigma=0 → no service variability).
CONSTANT_DEMAND = LognormalDemand(mu=math.log(0.002), sigma=0.0)


def _scenario(num_queries, rate=1.0):
    """Clocked arrivals (query q at (q+1)/rate) with constant demand."""
    return WorkloadScenario(
        arrivals=DeterministicArrivals(rate=rate),
        demands=CONSTANT_DEMAND,
        num_queries=num_queries,
    )


def _outage(shard, arrival_time, duration=0.4):
    """A stall window opening just before ``arrival_time`` on replica 0."""
    return OutageSpec(
        shard=shard, replica=0, start=arrival_time - 0.1, duration=duration
    )


class TestTailTolerantBroker:
    def test_outage_stalls_unhedged_query(self):
        config = FanoutConfig(
            num_servers=1, spec=BIG_SERVER, outages=(_outage(0, 1.0),)
        )
        assert config.tail_tolerant
        result = run_fanout_open_loop(config, _scenario(1))
        # Without a second replica the query waits out the stall.
        assert result.records[0].latency >= 0.25
        assert result.hedges_issued == 0
        assert result.mean_coverage() == 1.0

    def test_hedge_to_second_replica_sidesteps_outage(self):
        config = FanoutConfig(
            num_servers=1,
            spec=BIG_SERVER,
            replicas_per_shard=2,
            outages=(_outage(0, 1.0),),
            hedging=HedgingPolicy(hedge_delay_s=0.05),
        )
        result = run_fanout_open_loop(config, _scenario(1))
        record = result.records[0]
        assert record.hedges_issued == 1
        assert record.hedges_won == 1
        assert record.coverage == 1.0
        # Latency collapses to hedge delay + healthy-replica service.
        assert 0.05 <= record.latency <= 0.1

    def test_single_replica_cannot_hedge(self):
        # A hedge must target a *different* replica (whole-server pauses
        # freeze all cores), so with one replica the policy never fires.
        config = FanoutConfig(
            num_servers=1,
            spec=BIG_SERVER,
            outages=(_outage(0, 1.0),),
            hedging=HedgingPolicy(hedge_delay_s=0.05),
        )
        result = run_fanout_open_loop(config, _scenario(1))
        assert result.hedges_issued == 0
        assert result.records[0].latency >= 0.25

    def test_deadline_miss_degrades_coverage(self):
        config = FanoutConfig(
            num_servers=2,
            spec=BIG_SERVER,
            outages=(_outage(0, 1.0),),
            hedging=HedgingPolicy(deadline_s=0.05, max_hedges=0),
        )
        result = run_fanout_open_loop(config, _scenario(1))
        record = result.records[0]
        assert record.deadline_misses == 1
        assert record.coverage == 0.5
        # The broker answered at the deadline, not at stall end.
        assert record.latency < 0.1
        assert result.mean_coverage() == 0.5

    def test_deadline_generous_enough_keeps_full_coverage(self):
        config = FanoutConfig(
            num_servers=2,
            spec=BIG_SERVER,
            outages=(_outage(0, 1.0),),
            hedging=HedgingPolicy(deadline_s=2.0, max_hedges=0),
        )
        result = run_fanout_open_loop(config, _scenario(1))
        assert result.deadline_misses == 0
        assert result.mean_coverage() == 1.0

    def test_metrics_counters_match_result_totals(self):
        metrics = MetricsRegistry()
        config = FanoutConfig(
            num_servers=2,
            spec=BIG_SERVER,
            replicas_per_shard=2,
            outages=(_outage(0, 1.0), _outage(1, 3.0)),
            hedging=HedgingPolicy(hedge_delay_s=0.05, deadline_s=1.0),
        )
        result = run_fanout_open_loop(config, _scenario(4), metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["fanout.queries"]["value"] == 4
        assert snapshot["fanout.hedges_issued"]["value"] == (
            result.hedges_issued
        )
        assert snapshot["fanout.hedges_won"]["value"] == result.hedges_won
        assert result.hedges_issued == 2
        assert result.hedges_won == 2

    def test_outage_validation(self):
        with pytest.raises(ValueError):
            FanoutConfig(
                num_servers=1, spec=BIG_SERVER, outages=(_outage(3, 1.0),)
            )
        with pytest.raises(ValueError):
            FanoutConfig(
                num_servers=1,
                spec=BIG_SERVER,
                outages=(
                    OutageSpec(shard=0, replica=1, start=0.5, duration=0.1),
                ),
            )

    def test_inert_policy_is_bit_identical_to_seed_path(self):
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate=100.0),
            demands=LognormalDemand(mu=-4.6, sigma=0.8),
            num_queries=300,
        )
        plain = FanoutConfig(num_servers=2, spec=BIG_SERVER)
        inert = FanoutConfig(
            num_servers=2, spec=BIG_SERVER, hedging=HedgingPolicy()
        )
        assert not inert.tail_tolerant
        base = run_fanout_open_loop(plain, scenario, seed=3)
        shim = run_fanout_open_loop(inert, scenario, seed=3)
        assert np.array_equal(base.latencies(), shim.latencies())

    def test_tail_tolerant_path_is_deterministic(self):
        config = FanoutConfig(
            num_servers=2,
            spec=BIG_SERVER,
            replicas_per_shard=2,
            hedging=HedgingPolicy(hedge_delay_s=0.01, deadline_s=0.5),
            outages=(_outage(0, 2.0),),
        )
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(rate=50.0),
            demands=LognormalDemand(mu=-4.6, sigma=0.8),
            num_queries=200,
        )
        first = run_fanout_open_loop(config, scenario, seed=7)
        second = run_fanout_open_loop(config, scenario, seed=7)
        assert np.array_equal(first.latencies(), second.latencies())
        assert first.hedges_issued == second.hedges_issued
        assert first.hedges_won == second.hedges_won


class TestNativeDesParity:
    """One seeded scenario, two interpreters, same hedge statistics.

    Ten queries arrive; queries 2, 5, and 7 hit a straggling shard-0
    primary (a scripted sleep natively, a scripted replica-0 outage in
    the DES).  The policy hedges after 50 ms — far above healthy
    service time, far below the straggle — so exactly those three
    queries hedge, and every hedge wins.
    """

    SLOW = {2, 5, 7}
    NUM_QUERIES = 10
    POLICY = HedgingPolicy(hedge_delay_s=0.05, max_hedges=1)

    def _native_counts(self, small_collection, small_query_log):
        partitioned = partition_index(small_collection, 2)
        issued = won = misses = 0
        cancelled = 0
        with IndexServingNode(partitioned, hedging=self.POLICY) as node:
            scripted = ScriptedSearcher(node._searchers[0])
            node._searchers[0] = scripted
            for index, query in enumerate(
                list(small_query_log)[: self.NUM_QUERIES]
            ):
                scripted.begin_query(
                    slow={0} if index in self.SLOW else ()
                )
                response = node.execute(query.text)
                issued += response.hedges_issued
                won += response.hedges_won
                misses += response.deadline_misses
                if index in self.SLOW:
                    cancelled += 1
                    _wait_for_cancellations(scripted, cancelled)
        return issued, won, misses

    def _des_counts(self):
        outages = tuple(
            # Query q arrives at t=q+1; replica 0 of shard 0 stalls
            # across that arrival, mirroring the native scripted sleep.
            _outage(0, float(q + 1)) for q in sorted(self.SLOW)
        )
        config = FanoutConfig(
            num_servers=2,
            spec=BIG_SERVER,
            replicas_per_shard=2,
            outages=outages,
            hedging=self.POLICY,
        )
        result = run_fanout_open_loop(config, _scenario(self.NUM_QUERIES))
        return (
            result.hedges_issued,
            result.hedges_won,
            result.deadline_misses,
        )

    def test_hedge_statistics_agree(self, small_collection, small_query_log):
        native = self._native_counts(small_collection, small_query_log)
        des = self._des_counts()
        assert native == des
        assert native == (len(self.SLOW), len(self.SLOW), 0)


class TestScalingParityWithDes:
    """Above one core, native scaling direction must match the DES.

    The DES has always predicted intra-node scaling — a server with
    more cores drains a saturating workload at higher goodput — but the
    thread-backend native engine could not confirm it on the wall clock
    (per-partition scoring serializes on the GIL).  The process backend
    is the fix: this test asserts the DES prediction's *direction*
    (more workers → more throughput, 1 → 2 → 4) and, when the machine
    actually has the cores, that the native engine now scales the same
    way — with bit-identical results at every worker count.
    """

    WORKERS = (1, 2, 4)

    def _des_goodput(self, cores: int) -> float:
        config = FanoutConfig(
            num_servers=1,
            spec=replace(BIG_SERVER, num_cores=cores),
            partitioning=PartitionModelConfig(num_partitions=4),
        )
        # Saturating arrivals: every query is queued almost at once, so
        # goodput measures service capacity, not offered load.
        scenario = WorkloadScenario(
            arrivals=DeterministicArrivals(rate=100_000.0),
            demands=CONSTANT_DEMAND,
            num_queries=64,
        )
        return run_fanout_open_loop(config, scenario).goodput_qps()

    def test_native_scaling_direction_matches_des(
        self, small_collection, small_query_log
    ):
        des = {w: self._des_goodput(w) for w in self.WORKERS}
        assert des[1] < des[2] < des[4], des

        partitioned = partition_index(small_collection, 4)
        texts = [q.text for q in list(small_query_log)[:40]]
        throughput = {}
        results = {}
        for workers in self.WORKERS:
            with IndexServingNode(
                partitioned,
                execution=ExecutionConfig(
                    backend="processes", workers=workers
                ),
            ) as node:
                node.execute_batch(texts[:8])  # warm the workers
                start = time.perf_counter()
                responses = node.execute_batch(texts)
                elapsed = time.perf_counter() - start
            throughput[workers] = len(texts) / elapsed
            results[workers] = [
                [(hit.doc_id, hit.score) for hit in response.hits]
                for response in responses
            ]
        # Bit-identity across worker counts holds on any machine.
        assert results[2] == results[1]
        assert results[4] == results[1]

        cores = len(os.sched_getaffinity(0))
        if cores < max(self.WORKERS):
            pytest.skip(
                f"native scaling direction needs {max(self.WORKERS)} "
                f"cores, have {cores}"
            )
        assert throughput[4] > throughput[1], throughput
