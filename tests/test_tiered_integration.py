"""Integration tests: tiered storage through the full serving path.

Bit-identity at the engine level (tiered service == resident service),
fault injection surfacing as shard failures (coverage degrades, the
breakers trip — never wrong results), composition with the chaos
harness's fault plans, paging observability (per-query counters, span
attributes, ``store.*`` metrics), and the DES cost-model mirror.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BreakerConfig,
    MetricsRegistry,
    TieredStorageConfig,
)
from repro.cluster.results import QueryRecord
from repro.cluster.server import (
    PartitionModelConfig,
    SimulatedServer,
    StorageModelConfig,
)
from repro.corpus.generator import CorpusConfig
from repro.corpus.querylog import QueryLogConfig
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.service import SearchService, SearchServiceConfig
from repro.index.store import tier_index
from repro.obs.tracing import Tracer
from repro.search.executor import Searcher
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator

TINY_CORPUS = CorpusConfig(
    num_documents=120,
    vocabulary=VocabularyConfig(size=900),
    mean_length=40,
    seed=11,
)
TINY_LOG = QueryLogConfig(num_unique_queries=30, seed=5)


def _service(tiered=None, metrics=None, tracer=None, **overrides):
    config = SearchServiceConfig(
        corpus=TINY_CORPUS,
        query_log=TINY_LOG,
        num_partitions=2,
        tiered=tiered,
        **overrides,
    )
    return SearchService(config, metrics=metrics, tracer=tracer)


class TestEngineBitIdentity:
    @pytest.mark.parametrize("algorithm", ["daat", "block_max_wand"])
    def test_tiered_service_matches_resident(self, algorithm):
        tiered_config = TieredStorageConfig(cache_budget_bytes=64 << 10)
        with _service(algorithm=algorithm) as resident, _service(
            tiered=tiered_config, algorithm=algorithm
        ) as tiered:
            for query in list(resident.query_log)[:15]:
                expected = resident.search(query.text)
                actual = tiered.search(query.text)
                assert expected.doc_ids() == actual.doc_ids(), query.text
                for left, right in zip(expected.hits, actual.hits):
                    assert left.score == right.score, query.text

    def test_zero_budget_still_identical(self):
        tiered_config = TieredStorageConfig(cache_budget_bytes=0)
        with _service() as resident, _service(
            tiered=tiered_config
        ) as tiered:
            for query in list(resident.query_log)[:5]:
                assert resident.search(query.text).doc_ids() == tiered.search(
                    query.text
                ).doc_ids()

    def test_store_counters_populated(self):
        metrics = MetricsRegistry()
        tiered_config = TieredStorageConfig(cache_budget_bytes=64 << 10)
        with _service(tiered=tiered_config, metrics=metrics) as service:
            queries = [query.text for query in list(service.query_log)[:10]]
            for text in queries:
                service.search(text)
            fetched_cold = metrics.counter("store.blocks_fetched").value
            assert fetched_cold > 0
            assert metrics.counter("store.bytes_read").value > 0
            # A second pass over the same queries hits the warm cache:
            # no new fetches, only cache hits.
            for text in queries:
                service.search(text)
            assert (
                metrics.counter("store.blocks_fetched").value == fetched_cold
            )
            assert metrics.counter("cache.block_hits").value > 0


class TestFaultSurface:
    def test_timeouts_degrade_coverage_and_trip_breakers(self):
        """A store that always times out turns into shard failures:
        partial coverage, tripped breakers — exactly the path a crashed
        shard takes, with zero wrong results."""
        tiered_config = TieredStorageConfig(
            cache_budget_bytes=64 << 10, timeout_rate=1.0, seed=3
        )
        with _service(
            tiered=tiered_config,
            breakers=BreakerConfig(failure_threshold=2, recovery_time_s=60.0),
        ) as service:
            responses = [
                service.search(query.text)
                for query in list(service.query_log)[:8]
            ]
            assert all(response.coverage < 1.0 for response in responses)
            board = service.isn.breaker_board
            trips = sum(
                board.breaker(shard).trips
                for shard in range(service.partitioned.num_partitions)
            )
            assert trips >= 1

    def test_partial_timeouts_never_return_wrong_results(self):
        """With a lossy (not dead) store, every answered shard's hits
        are exact — failures subtract coverage, they never corrupt."""
        lossy = TieredStorageConfig(
            cache_budget_bytes=0, timeout_rate=0.2, seed=17
        )
        with _service() as resident, _service(
            tiered=lossy,
            breakers=BreakerConfig(failure_threshold=50, recovery_time_s=0.01),
        ) as tiered:
            for query in list(resident.query_log)[:10]:
                expected = resident.search(query.text)
                actual = tiered.search(query.text)
                if actual.coverage >= 1.0:
                    assert actual.doc_ids() == expected.doc_ids()
                else:
                    # Partial answers are a subset of the full ranking's
                    # candidate set, re-ranked — still only true hits.
                    assert set(actual.doc_ids()) <= set(
                        doc_id
                        for shard in tiered.partitioned
                        for doc_id in shard.global_doc_ids
                    )

    @pytest.mark.parametrize(
        "plan_fixture", ["crashed_shard_plan", "flapping_plan"]
    )
    def test_composes_with_chaos_fault_plans(self, request, plan_fixture):
        """The chaos harness's injected crashes and the tiered store
        coexist: a fault plan degrades coverage the same way it does on
        a resident service, and the surviving shard still pages."""
        plan = request.getfixturevalue(plan_fixture)
        metrics = MetricsRegistry()
        tiered_config = TieredStorageConfig(cache_budget_bytes=64 << 10)
        with _service(
            tiered=tiered_config,
            metrics=metrics,
            breakers=BreakerConfig(failure_threshold=2, recovery_time_s=30.0),
            faults=plan,
        ) as service:
            responses = [
                service.search(query.text)
                for query in list(service.query_log)[:6]
            ]
        assert any(response.coverage < 1.0 for response in responses)
        assert metrics.counter("store.blocks_fetched").value > 0


class TestPagingObservability:
    def test_search_result_reports_paging(self, small_index):
        tiered = tier_index(small_index, cache_budget_bytes=64 << 10)
        searcher = Searcher(tiered, algorithm="block_max_wand")
        result = searcher.search("the of and")
        assert result.blocks_fetched is not None
        assert result.bytes_read is not None
        assert result.blocks_fetched >= 0

    def test_resident_index_reports_none(self, small_index):
        result = Searcher(small_index).search("the of and")
        assert result.blocks_fetched is None
        assert result.bytes_read is None

    def test_shard_spans_carry_paging_attributes(self):
        tracer = Tracer()
        tiered_config = TieredStorageConfig(cache_budget_bytes=64 << 10)
        with _service(tiered=tiered_config, tracer=tracer) as service:
            service.search(service.query_log[0].text)
        shard_spans = [
            span
            for trace in tracer.traces
            for span in trace.iter_tree()
            if span.name == "shard"
        ]
        assert shard_spans
        for span in shard_spans:
            assert "blocks_fetched" in span.attributes
            assert "bytes_read" in span.attributes
            assert span.attributes["blocks_fetched"] >= 0


IDEAL = PartitionModelConfig(
    num_partitions=1,
    partition_overhead=0.0,
    merge_base=0.0,
    merge_per_partition=0.0,
)


def _simulate_one(partitions, demand=0.5, metrics=None):
    sim = Simulator()
    done = []
    spec = ServerSpec(
        name="test",
        num_cores=4,
        core_speed=1.0,
        idle_power_watts=0.0,
        peak_power_watts=1.0,
    )
    server = SimulatedServer(
        sim,
        spec,
        partitions,
        imbalance_rng=np.random.default_rng(0),
        on_complete=done.append,
        metrics=metrics,
    )
    record = QueryRecord(query_id=0, client_send=0.0, demand=demand)
    sim.schedule(0.0, server.handle_arrival, record)
    sim.run()
    return record


class TestStorageCostModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            StorageModelConfig(cache_hit_rate=1.0)
        with pytest.raises(ValueError):
            StorageModelConfig(block_fetch_latency_s=-1.0)
        with pytest.raises(ValueError):
            StorageModelConfig(blocks_per_demand_s=-1.0)

    def test_fetch_arithmetic(self):
        storage = StorageModelConfig(
            block_fetch_latency_s=1e-3,
            blocks_per_demand_s=100.0,
            cache_hit_rate=0.75,
        )
        # 2 s of demand → 200 block touches → 50 misses → 50 ms.
        assert storage.blocks_fetched(2.0) == pytest.approx(50.0)
        assert storage.fetch_seconds(2.0) == pytest.approx(0.05)

    def test_effective_demand_adds_fetch_time(self):
        storage = StorageModelConfig(
            block_fetch_latency_s=1e-3,
            blocks_per_demand_s=100.0,
            cache_hit_rate=0.5,
        )
        config = PartitionModelConfig(
            num_partitions=1,
            partition_overhead=0.0,
            merge_base=0.0,
            merge_per_partition=0.0,
            storage=storage,
        )
        assert config.effective_demand(1.0) == pytest.approx(
            1.0 + 100.0 * 0.5 * 1e-3
        )

    def test_no_storage_model_is_unchanged(self):
        assert IDEAL.effective_demand(0.7) == pytest.approx(0.7)

    def test_unloaded_latency_includes_fetch_time(self):
        storage = StorageModelConfig(
            block_fetch_latency_s=1e-3,
            blocks_per_demand_s=100.0,
            cache_hit_rate=0.5,
        )
        slow = PartitionModelConfig(
            num_partitions=1,
            partition_overhead=0.0,
            merge_base=0.0,
            merge_per_partition=0.0,
            storage=storage,
        )
        resident = _simulate_one(IDEAL, demand=1.0)
        tiered = _simulate_one(slow, demand=1.0)
        assert tiered.merge_end == pytest.approx(
            resident.merge_end + 0.05
        )

    def test_sim_store_counters_emitted(self):
        metrics = MetricsRegistry()
        storage = StorageModelConfig(
            block_fetch_latency_s=1e-3,
            blocks_per_demand_s=100.0,
            cache_hit_rate=0.5,
        )
        config = PartitionModelConfig(
            num_partitions=2,
            storage=storage,
        )
        _simulate_one(config, demand=1.0, metrics=metrics)
        assert metrics.counter("sim.store.blocks_fetched").value == 50
        assert metrics.gauge(
            "sim.store.fetch_demand_s"
        ).value == pytest.approx(0.05)

    def test_higher_hit_rate_cuts_fetch_time(self):
        base = dict(block_fetch_latency_s=1e-3, blocks_per_demand_s=200.0)
        cold = StorageModelConfig(cache_hit_rate=0.0, **base)
        warm = StorageModelConfig(cache_hit_rate=0.9, **base)
        assert warm.fetch_seconds(1.0) < cold.fetch_seconds(1.0)

    def test_pruning_discounts_fetches(self):
        """BMW's fewer descents mean fewer block fetches: the storage
        surcharge applies to the *pruned* demand."""
        storage = StorageModelConfig(
            block_fetch_latency_s=1e-3,
            blocks_per_demand_s=100.0,
            cache_hit_rate=0.0,
        )
        exhaustive = PartitionModelConfig(
            num_partitions=1,
            partition_overhead=0.0,
            merge_base=0.0,
            merge_per_partition=0.0,
            storage=storage,
        )
        pruned = PartitionModelConfig(
            num_partitions=1,
            partition_overhead=0.0,
            merge_base=0.0,
            merge_per_partition=0.0,
            traversal="block_max_wand",
            pruning_factor=0.4,
            storage=storage,
        )
        assert pruned.effective_demand(1.0) == pytest.approx(
            0.4 + 0.4 * 100.0 * 1e-3
        )
        assert pruned.effective_demand(1.0) < exhaustive.effective_demand(1.0)
