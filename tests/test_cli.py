"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--docs", "300"]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["characterize"])
        assert args.docs == 1_500
        assert args.queries == 150

    def test_partition_list(self):
        args = build_parser().parse_args(
            ["partition-sweep", "--partitions", "1", "4", "16"]
        )
        assert args.partitions == [1, 4, 16]


class TestCommands:
    def test_quickstart(self, capsys):
        assert main(FAST + ["quickstart", "--queries", "2"]) == 0
        output = capsys.readouterr().out
        assert "indexed 300 documents" in output
        assert "hits in" in output

    def test_characterize(self, capsys):
        assert main(FAST + ["characterize", "--queries", "40"]) == 0
        output = capsys.readouterr().out
        assert "Service-time characterization" in output
        assert "p99/p50" in output

    def test_partition_sweep(self, capsys):
        assert (
            main(
                FAST
                + [
                    "partition-sweep",
                    "--partitions", "1", "4",
                    "--sim-queries", "800",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Latency vs partitions" in output
        assert "p99_ms" in output

    def test_lowpower(self, capsys):
        assert (
            main(
                FAST
                + [
                    "lowpower",
                    "--partitions", "1", "8",
                    "--sim-queries", "800",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "xeon-e5" in output
        assert "atom-c2750" in output

    def test_capacity(self, capsys):
        assert (
            main(
                FAST
                + [
                    "capacity",
                    "--partitions", "2",
                    "--sim-queries", "600",
                    "--qos-ms", "50",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Max throughput" in output

    def test_cache(self, capsys):
        assert main(FAST + ["cache"]) == 0
        output = capsys.readouterr().out
        assert "hit_rate" in output

    def test_profile_log(self, capsys):
        assert main(FAST + ["profile-log"]) == 0
        output = capsys.readouterr().out
        assert "Query-log profile" in output
        assert "Term-count mix" in output

    def test_trace(self, capsys):
        assert main(FAST + ["trace", "--partitions", "2"]) == 0
        output = capsys.readouterr().out
        assert "isn.execute" in output
        assert "├─ parse" in output
        assert "└─ merge" in output
        assert "shard" in output
        assert "Serving-path counters" in output
        assert "isn.queries" in output

    def test_trace_exports(self, capsys, tmp_path):
        import csv
        import json

        jsonl = tmp_path / "trace.jsonl"
        metrics = tmp_path / "metrics.csv"
        assert (
            main(
                FAST
                + [
                    "trace", "--partitions", "2",
                    "--jsonl", str(jsonl),
                    "--metrics-csv", str(metrics),
                ]
            )
            == 0
        )
        spans = [json.loads(line) for line in jsonl.read_text().splitlines()]
        assert spans[0]["name"] == "isn.execute"
        assert spans[0]["parent_id"] is None
        with open(metrics, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert any(row["metric"] == "isn.queries" for row in rows)

    def test_trace_explicit_query(self, capsys):
        assert main(FAST + ["trace", "benchmark search", "--k", "3"]) == 0
        output = capsys.readouterr().out
        assert "'benchmark search'" in output

    def test_report_to_stdout(self, capsys):
        assert main(FAST + ["report", "--queries", "30"]) == 0
        output = capsys.readouterr().out
        assert "# Web search benchmark characterization report" in output

    def test_health_threads(self, capsys):
        assert main(FAST + ["health", "--breakers"]) == 0
        output = capsys.readouterr().out
        assert "Node health" in output
        assert "threads" in output
        assert "breaker shard 0" in output
        assert "CLOSED" in output

    def test_health_processes(self, capsys):
        assert (
            main(
                FAST
                + ["--backend", "processes", "--workers", "2", "health"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "live workers" in output
        assert "2/2" in output
        assert "alive" in output

    def test_chaos_dry_run(self, capsys):
        assert main(["chaos", "--dry-run"]) == 0
        output = capsys.readouterr().out
        assert "chaos plan" in output
        assert "crash" in output
        assert "dry run" in output

    def test_chaos_run(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--sim-queries", "400",
                    "--rate", "200",
                    "--servers", "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "Chaos run" in output
        assert "protected" in output
        assert "goodput" in output
        assert "breaker skips" in output

    def test_chaos_unprotected(self, capsys):
        assert (
            main(
                [
                    "chaos",
                    "--sim-queries", "400",
                    "--rate", "200",
                    "--servers", "2",
                    "--unprotected",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "unprotected" in output

    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "report.md"
        assert (
            main(FAST + ["report", "--queries", "30", "--output", str(path)])
            == 0
        )
        assert "written to" in capsys.readouterr().out
        assert path.read_text().startswith("# Web search benchmark")
