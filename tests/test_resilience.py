"""Unit tests for the resilience subsystem (admission, breakers, faults).

The state machines are clock-agnostic, so every test drives them with
explicit ``now`` values — no sleeping, no wall-clock flakiness.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import MetricsRegistry
from repro.resilience.admission import (
    SHED_CAPACITY,
    SHED_CODEL,
    SHED_QUEUE_FULL,
    AdmissionController,
    AimdConfig,
    BlockingAdmissionGate,
    OverloadPolicy,
    ShedResponse,
)
from repro.resilience.breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)
from repro.resilience.faults import (
    ErrorBurst,
    FaultInjector,
    FaultPlan,
    InjectedFault,
    ShardCrash,
    ShardSlowdown,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in the image
    HAVE_HYPOTHESIS = False


class TestShedResponse:
    def test_satisfies_query_outcome_protocol(self):
        from repro.api import QueryOutcome

        response = ShedResponse(reason=SHED_CAPACITY, latency_s=0.001)
        assert isinstance(response, QueryOutcome)
        assert response.coverage == 0.0
        assert response.doc_ids() == []
        assert response.hits == ()
        assert response.shed is True

    def test_real_outcomes_do_not_read_as_shed(self):
        class Served:
            pass

        assert getattr(Served(), "shed", False) is False


class TestOverloadPolicy:
    def test_default_policy_is_inert(self):
        assert OverloadPolicy().enabled is False

    def test_any_mechanism_enables(self):
        assert OverloadPolicy(max_concurrency=4).enabled
        assert OverloadPolicy(aimd=AimdConfig()).enabled

    def test_inert_policy_rejected_by_controller(self):
        with pytest.raises(ValueError, match="inert"):
            AdmissionController(OverloadPolicy())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_concurrency": 0},
            {"queue_limit": -1},
            {"codel_target_delay_s": 0.0},
            {"codel_interval_s": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            OverloadPolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_limit": 0.5},
            {"max_limit": 2.0, "initial_limit": 4.0},
            {"increase": 0.0},
            {"decrease_factor": 1.0},
            {"latency_factor": 1.0},
            {"ewma_alpha": 0.0},
            {"cooldown_s": -1.0},
            {"baseline_latency_s": 0.0},
        ],
    )
    def test_aimd_validation(self, kwargs):
        with pytest.raises(ValueError):
            AimdConfig(**kwargs)


class TestAdmissionController:
    def test_hard_limit_admits_up_to_capacity(self):
        controller = AdmissionController(OverloadPolicy(max_concurrency=2))
        assert controller.decide(0.0) == "admit"
        controller.admit(0.0)
        assert controller.decide(0.0) == "admit"
        controller.admit(0.0)
        assert controller.decide(0.0) == SHED_CAPACITY

    def test_queue_then_shed(self):
        controller = AdmissionController(
            OverloadPolicy(max_concurrency=1, queue_limit=1)
        )
        controller.admit(0.0)
        assert controller.decide(0.0) == "queue"
        controller.enqueue(0.0)
        assert controller.decide(0.0) == SHED_QUEUE_FULL

    def test_complete_frees_a_slot(self):
        controller = AdmissionController(OverloadPolicy(max_concurrency=1))
        controller.admit(0.0)
        controller.complete(0.01, 0.01)
        assert controller.decide(0.02) == "admit"
        assert controller.served_count == 1

    def test_dequeue_without_codel_always_admits(self):
        controller = AdmissionController(
            OverloadPolicy(max_concurrency=1, queue_limit=4)
        )
        controller.enqueue(0.0)
        assert controller.dequeue(10.0, enqueued_at=0.0) is True

    def test_codel_drops_after_standing_interval(self):
        policy = OverloadPolicy(
            max_concurrency=1,
            queue_limit=10,
            codel_target_delay_s=0.01,
            codel_interval_s=0.1,
        )
        controller = AdmissionController(policy)
        # Delay above target, but the excursion just started: admitted.
        controller.enqueue(0.0)
        assert controller.dequeue(0.05, enqueued_at=0.0) is True
        # Still above target a full interval later: dropping begins.
        controller.enqueue(0.05)
        assert controller.dequeue(0.2, enqueued_at=0.05) is False
        assert controller.shed_count == 1
        # A query whose wait is back under target resets the controller.
        controller.enqueue(0.2)
        assert controller.dequeue(0.205, enqueued_at=0.2) is True
        controller.enqueue(0.21)
        assert controller.dequeue(0.25, enqueued_at=0.21) is True

    def test_aimd_decrease_on_slow_latency(self):
        aimd = AimdConfig(
            initial_limit=10.0,
            baseline_latency_s=0.01,
            cooldown_s=0.0,
        )
        controller = AdmissionController(OverloadPolicy(aimd=aimd))
        controller.admit(0.0)
        controller.complete(0.1, latency_s=0.05)  # 5x baseline
        assert controller.limit == pytest.approx(7.0)

    def test_aimd_additive_increase_scaled_by_limit(self):
        aimd = AimdConfig(initial_limit=10.0, baseline_latency_s=0.01)
        controller = AdmissionController(OverloadPolicy(aimd=aimd))
        controller.admit(0.0)
        controller.complete(0.1, latency_s=0.01)
        assert controller.limit == pytest.approx(10.0 + 1.0 / 10.0)

    def test_aimd_cooldown_coalesces_decreases(self):
        aimd = AimdConfig(
            initial_limit=16.0, baseline_latency_s=0.01, cooldown_s=1.0
        )
        controller = AdmissionController(OverloadPolicy(aimd=aimd))
        for step in range(3):
            controller.admit(0.0)
            controller.complete(0.1 + step * 0.01, latency_s=0.5)
        # One congestion event, not three.
        assert controller.limit == pytest.approx(16.0 * 0.7)

    def test_aimd_first_sample_seeds_baseline(self):
        controller = AdmissionController(
            OverloadPolicy(aimd=AimdConfig(initial_limit=8.0))
        )
        controller.admit(0.0)
        controller.complete(0.0, latency_s=0.4)  # seeds, never judged
        assert controller.limit == pytest.approx(8.0)
        controller.admit(0.0)
        controller.complete(1.0, latency_s=0.41)  # healthy vs 0.4 baseline
        assert controller.limit > 8.0

    def test_hard_cap_ceils_adaptive_limit(self):
        policy = OverloadPolicy(
            max_concurrency=4,
            aimd=AimdConfig(initial_limit=32.0, baseline_latency_s=0.01),
        )
        controller = AdmissionController(policy)
        assert controller.limit == 4.0
        assert controller.aimd_limit == 32.0


def _simulate_aimd(capacity: int, steps: int = 4000):
    """Drive the limiter against a backend with a hard knee.

    Below ``capacity`` concurrent queries the backend answers at its
    base latency; above it, latency scales with the overload factor —
    a crude but monotone congestion signal.
    """
    base = 0.01
    aimd = AimdConfig(
        initial_limit=1.0,
        max_limit=512.0,
        baseline_latency_s=base,
        cooldown_s=0.04,
    )
    controller = AdmissionController(OverloadPolicy(aimd=aimd))
    now = 0.0
    trajectory = []
    for _ in range(steps):
        now += base
        concurrency = controller.limit
        if concurrency <= capacity:
            latency = base
        else:
            latency = base * 3.0 * (concurrency / capacity)
        controller.admit(now)
        controller.complete(now, latency)
        trajectory.append(controller.limit)
    return trajectory


class TestAimdConvergence:
    """The limiter must find the backend's true sustainable concurrency."""

    if HAVE_HYPOTHESIS:

        @given(capacity=st.integers(min_value=4, max_value=96))
        @settings(max_examples=25, deadline=None)
        def test_limit_converges_to_capacity(self, capacity):
            trajectory = _simulate_aimd(capacity)
            tail = trajectory[-500:]
            mean_limit = sum(tail) / len(tail)
            assert capacity / 2.0 <= mean_limit <= capacity * 1.5, (
                f"limit settled at {mean_limit:.1f} for capacity {capacity}"
            )
            assert max(tail) <= capacity * 2.0

    else:  # pragma: no cover - exercised only without hypothesis

        @pytest.mark.parametrize("capacity", [4, 12, 33, 96])
        def test_limit_converges_to_capacity(self, capacity):
            trajectory = _simulate_aimd(capacity)
            tail = trajectory[-500:]
            mean_limit = sum(tail) / len(tail)
            assert capacity / 2.0 <= mean_limit <= capacity * 1.5
            assert max(tail) <= capacity * 2.0

    def test_limit_never_leaves_bounds(self):
        trajectory = _simulate_aimd(8)
        assert all(1.0 <= limit <= 512.0 for limit in trajectory)


class TestBlockingGate:
    def test_admit_and_release(self):
        gate = BlockingAdmissionGate(OverloadPolicy(max_concurrency=1))
        assert gate.acquire() is None
        gate.release(0.01)
        assert gate.controller.in_flight == 0
        assert gate.controller.served_count == 1

    def test_shed_at_capacity(self):
        gate = BlockingAdmissionGate(OverloadPolicy(max_concurrency=1))
        assert gate.acquire() is None
        assert gate.acquire() == SHED_CAPACITY
        assert gate.controller.shed_count == 1


CFG = BreakerConfig(
    failure_threshold=3,
    recovery_time_s=1.0,
    half_open_probes=1,
    success_threshold=1,
)


class TestCircuitBreakerTransitions:
    """Exhaustive walk of the closed/open/half-open state machine."""

    def test_closed_allows(self):
        breaker = CircuitBreaker(CFG)
        assert breaker.state(0.0) is BreakerState.CLOSED
        assert breaker.allow(0.0) is True

    def test_closed_stays_closed_below_threshold(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold - 1):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) is BreakerState.CLOSED
        assert breaker.trips == 0

    def test_closed_trips_at_threshold(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) is BreakerState.OPEN
        assert breaker.trips == 1

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold - 1):
            breaker.record_failure(0.0)
        breaker.record_success(0.0)
        for _ in range(CFG.failure_threshold - 1):
            breaker.record_failure(0.0)
        assert breaker.state(0.0) is BreakerState.CLOSED

    def test_open_blocks_until_recovery(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0)
        assert breaker.allow(0.5) is False
        assert breaker.state(0.99) is BreakerState.OPEN

    def test_open_ignores_late_failures(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0)
        breaker.record_failure(0.5)  # straggler from before the trip
        assert breaker.trips == 1
        # The recovery clock was not restarted by the late failure.
        assert breaker.state(1.0) is BreakerState.HALF_OPEN

    def test_open_goes_half_open_after_recovery(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0)
        assert breaker.state(1.0) is BreakerState.HALF_OPEN

    def test_half_open_bounds_probes(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0)
        assert breaker.allow(1.0) is True  # reserves the only probe slot
        assert breaker.allow(1.0) is False

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0)
        assert breaker.allow(1.0) is True
        breaker.record_success(1.01)
        assert breaker.state(1.01) is BreakerState.CLOSED
        assert breaker.allow(1.02) is True

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0)
        assert breaker.allow(1.0) is True
        breaker.record_failure(1.01)
        assert breaker.state(1.01) is BreakerState.OPEN
        assert breaker.trips == 2
        # Recovery clock restarted at the failed probe.
        assert breaker.state(1.5) is BreakerState.OPEN
        assert breaker.state(2.5) is BreakerState.HALF_OPEN

    def test_multi_probe_success_threshold(self):
        config = BreakerConfig(
            failure_threshold=1,
            recovery_time_s=1.0,
            half_open_probes=2,
            success_threshold=2,
        )
        breaker = CircuitBreaker(config)
        breaker.record_failure(0.0)
        assert breaker.allow(1.0) is True
        assert breaker.allow(1.0) is True
        assert breaker.allow(1.0) is False  # both probe slots taken
        breaker.record_success(1.1)
        assert breaker.state(1.1) is BreakerState.HALF_OPEN
        breaker.record_success(1.2)
        assert breaker.state(1.2) is BreakerState.CLOSED

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"recovery_time_s": 0.0},
            {"half_open_probes": 0},
            {"success_threshold": 0},
        ],
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)


class TestHalfOpenConcurrency:
    """Concurrent requests race a half-open breaker's single probe slot.

    ``allow`` both checks and *reserves* the slot under the breaker's
    lock, so exactly one of N simultaneous callers is admitted as the
    probe; the losers are refused — the fan-out turns that refusal into
    an open-breaker skip — and the breaker's fate rides entirely on
    the winner's outcome.
    """

    RACERS = 8

    def _tripped_half_open(self) -> CircuitBreaker:
        breaker = CircuitBreaker(CFG)
        for _ in range(CFG.failure_threshold):
            breaker.record_failure(0.0)
        assert breaker.state(1.0) is BreakerState.HALF_OPEN
        return breaker

    def _race_allow(self, breaker: CircuitBreaker, now: float):
        barrier = threading.Barrier(self.RACERS)
        outcomes = [None] * self.RACERS

        def racer(slot: int) -> None:
            barrier.wait()
            outcomes[slot] = breaker.allow(now)

        threads = [
            threading.Thread(target=racer, args=(slot,))
            for slot in range(self.RACERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return outcomes

    def test_exactly_one_concurrent_probe_admitted(self):
        breaker = self._tripped_half_open()
        outcomes = self._race_allow(breaker, 1.0)
        assert sum(outcomes) == 1
        # The losers' refusals left the breaker half-open, still
        # waiting on the in-flight probe.
        assert breaker.state(1.0) is BreakerState.HALF_OPEN

    def test_winner_success_closes_for_everyone(self):
        breaker = self._tripped_half_open()
        self._race_allow(breaker, 1.0)
        breaker.record_success(1.01)
        assert breaker.state(1.01) is BreakerState.CLOSED
        assert all(self._race_allow(breaker, 1.02))

    def test_winner_failure_keeps_losers_fenced(self):
        breaker = self._tripped_half_open()
        self._race_allow(breaker, 1.0)
        breaker.record_failure(1.01)
        assert breaker.state(1.01) is BreakerState.OPEN
        # Re-racing during the restarted recovery window admits no one.
        assert not any(self._race_allow(breaker, 1.5))


class TestBreakerBoard:
    def test_lazy_per_key_breakers(self):
        board = BreakerBoard(CFG)
        assert board.breaker(0) is board.breaker(0)
        assert board.breaker(0) is not board.breaker(1)

    def test_trips_aggregate(self):
        board = BreakerBoard(CFG)
        for _ in range(CFG.failure_threshold):
            board.breaker((0, 1)).record_failure(0.0)
        for _ in range(CFG.failure_threshold):
            board.breaker((2, 0)).record_failure(0.0)
        assert board.trips == 2
        states = board.states(0.0)
        assert states[(0, 1)] is BreakerState.OPEN
        assert states[(2, 0)] is BreakerState.OPEN

    def test_export_gauges_encodes_states(self):
        board = BreakerBoard(CFG)
        board.breaker(0)  # closed
        for _ in range(CFG.failure_threshold):
            board.breaker(1).record_failure(0.0)  # open
        metrics = MetricsRegistry()
        board.export_gauges(metrics, "isn.breaker", now=0.0)
        snapshot = metrics.snapshot()
        assert snapshot["isn.breaker.0.state"]["value"] == 0.0
        assert snapshot["isn.breaker.1.state"]["value"] == 2.0

    def test_export_gauges_joins_tuple_keys(self):
        board = BreakerBoard(CFG)
        board.breaker((3, 1))
        metrics = MetricsRegistry()
        board.export_gauges(metrics, "fanout.breaker", now=0.0)
        assert "fanout.breaker.3-1.state" in metrics.snapshot()


class TestFaultPlan:
    def test_default_plan_is_inert(self):
        assert FaultPlan().enabled is False

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(
            crashes=[ShardCrash(shard=0, start_s=0.0, duration_s=1.0)]
        )
        assert isinstance(plan.crashes, tuple)
        assert plan.enabled

    def test_crash_windows_sorted_and_filtered(self):
        plan = FaultPlan(
            crashes=(
                ShardCrash(shard=1, start_s=2.0, duration_s=1.0),
                ShardCrash(shard=1, start_s=0.0, duration_s=0.5),
                ShardCrash(shard=0, start_s=0.0, duration_s=9.0),
            )
        )
        assert plan.crash_windows(1) == ((0.0, 0.5), (2.0, 3.0))
        assert plan.crashed(1, None, 2.5)
        assert not plan.crashed(1, None, 1.0)

    def test_replica_scoping(self):
        crash = ShardCrash(shard=1, start_s=0.0, duration_s=1.0, replica=0)
        plan = FaultPlan(crashes=(crash,))
        assert plan.crashed(1, 0, 0.5)
        assert not plan.crashed(1, 1, 0.5)
        # Replica-agnostic queries match replica-scoped faults.
        assert plan.crashed(1, None, 0.5)

    def test_overlapping_slowdowns_multiply(self):
        plan = FaultPlan(
            slowdowns=(
                ShardSlowdown(shard=0, start_s=0.0, duration_s=2.0, factor=2.0),
                ShardSlowdown(shard=0, start_s=1.0, duration_s=2.0, factor=3.0),
            )
        )
        assert plan.slowdown_factor(0, None, 0.5) == pytest.approx(2.0)
        assert plan.slowdown_factor(0, None, 1.5) == pytest.approx(6.0)
        assert plan.slowdown_factor(0, None, 2.5) == pytest.approx(3.0)
        assert plan.slowdown_factor(1, None, 1.5) == pytest.approx(1.0)

    def test_error_rates_compose(self):
        plan = FaultPlan(
            error_bursts=(
                ErrorBurst(
                    shard=0, start_s=0.0, duration_s=1.0, error_rate=0.5
                ),
                ErrorBurst(
                    shard=0, start_s=0.0, duration_s=1.0, error_rate=0.5
                ),
            )
        )
        assert plan.error_rate(0, None, 0.5) == pytest.approx(0.75)
        assert plan.error_rate(0, None, 2.0) == 0.0

    def test_flapping_shard_builder(self):
        plan = FaultPlan.flapping_shard(
            2, period_s=1.0, duty=0.25, horizon_s=3.0
        )
        assert plan.crash_windows(2) == (
            (0.0, 0.25),
            (1.0, 1.25),
            (2.0, 2.25),
        )
        with pytest.raises(ValueError):
            FaultPlan.flapping_shard(0, period_s=1.0, duty=1.5, horizon_s=1.0)

    def test_describe_lists_every_fault(self):
        plan = FaultPlan(
            crashes=(ShardCrash(shard=1, start_s=0.0, duration_s=1.0),),
            slowdowns=(
                ShardSlowdown(shard=0, start_s=0.0, duration_s=1.0, factor=2.0),
            ),
            error_bursts=(
                ErrorBurst(
                    shard=2, start_s=0.5, duration_s=1.0, error_rate=0.1
                ),
            ),
        )
        text = "\n".join(plan.describe())
        assert "crash" in text and "shard 1" in text
        assert "slowdown" in text and "x2" in text
        assert "errors" in text and "p=0.1" in text
        assert FaultPlan().describe() == ["(no faults)"]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ShardCrash(shard=0, start_s=-1.0, duration_s=1.0),
            lambda: ShardCrash(shard=0, start_s=0.0, duration_s=0.0),
            lambda: ShardSlowdown(
                shard=0, start_s=0.0, duration_s=1.0, factor=0.5
            ),
            lambda: ErrorBurst(
                shard=0, start_s=0.0, duration_s=1.0, error_rate=0.0
            ),
            lambda: ErrorBurst(
                shard=0, start_s=0.0, duration_s=1.0, error_rate=1.5
            ),
        ],
    )
    def test_fault_validation(self, factory):
        with pytest.raises(ValueError):
            factory()


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestFaultInjector:
    def test_crash_raises_injected_fault(self):
        clock = FakeClock()
        plan = FaultPlan(
            crashes=(ShardCrash(shard=1, start_s=0.0, duration_s=1.0),)
        )
        injector = FaultInjector(plan, clock=clock)
        clock.now += 0.5
        with pytest.raises(InjectedFault) as excinfo:
            injector.before_search(1)
        assert excinfo.value.kind == "crash"
        assert excinfo.value.shard == 1
        assert injector.injected_crashes == 1
        injector.before_search(0)  # healthy shard unaffected

    def test_crash_window_expires(self):
        clock = FakeClock()
        plan = FaultPlan(
            crashes=(ShardCrash(shard=1, start_s=0.0, duration_s=1.0),)
        )
        injector = FaultInjector(plan, clock=clock)
        clock.now += 1.5
        injector.before_search(1)  # restarted, no raise
        assert injector.injected_crashes == 0

    def test_error_burst_is_deterministic_per_seed(self):
        def draws(seed):
            clock = FakeClock()
            plan = FaultPlan(
                error_bursts=(
                    ErrorBurst(
                        shard=0, start_s=0.0, duration_s=10.0, error_rate=0.5
                    ),
                ),
                seed=seed,
            )
            injector = FaultInjector(plan, clock=clock)
            outcomes = []
            for _ in range(50):
                clock.now += 0.01
                try:
                    injector.before_search(0)
                    outcomes.append(False)
                except InjectedFault:
                    outcomes.append(True)
            return outcomes

        assert draws(7) == draws(7)
        assert draws(7) != draws(8)

    def test_certain_error_burst_always_raises(self):
        clock = FakeClock()
        plan = FaultPlan(
            error_bursts=(
                ErrorBurst(
                    shard=0, start_s=0.0, duration_s=1.0, error_rate=1.0
                ),
            )
        )
        injector = FaultInjector(plan, clock=clock)
        clock.now += 0.5
        with pytest.raises(InjectedFault) as excinfo:
            injector.before_search(0)
        assert excinfo.value.kind == "error"
        assert injector.injected_errors == 1

    def test_slowdown_pads_service_time(self):
        clock = FakeClock()
        plan = FaultPlan(
            slowdowns=(
                ShardSlowdown(shard=0, start_s=0.0, duration_s=10.0, factor=3.0),
            )
        )
        injector = FaultInjector(plan, clock=clock)
        clock.now += 1.0
        injector.slowdown_sleep(0, service_elapsed_s=0.001)
        assert injector.injected_slowdowns == 1
        injector.slowdown_sleep(1, service_elapsed_s=0.001)  # healthy shard
        assert injector.injected_slowdowns == 1

    def test_start_reanchors_epoch(self):
        clock = FakeClock()
        plan = FaultPlan(
            crashes=(ShardCrash(shard=0, start_s=0.0, duration_s=1.0),)
        )
        injector = FaultInjector(plan, clock=clock)
        clock.now += 5.0
        injector.before_search(0)  # past the window
        injector.start()
        with pytest.raises(InjectedFault):
            injector.before_search(0)  # window restarted
