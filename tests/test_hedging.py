"""Tail-tolerance policy + native ISN hedging under injected stragglers.

The straggler is deterministic: a wrapper around a real shard searcher
sleeps (or fails) on scripted attempts, so every assertion about hedge
firing, loser cancellation, retries, and coverage is exact rather than
statistical.
"""

import threading
import time

import pytest

from repro.engine.hedging import (
    DISABLED_POLICY,
    HedgingPolicy,
    ShardLatencyTracker,
)
from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index
from repro.obs import MetricsRegistry
from repro.search.executor import SearchCancelled

#: Long enough to dwarf shard service time (~1 ms on the test corpus)
#: and every hedge delay below, short enough to keep the suite fast.
STRAGGLE_S = 0.25


class ScriptedSearcher:
    """Delegates to a real shard searcher, misbehaving on scripted attempts.

    ``slow`` attempts sleep for ``delay_s`` before proceeding (checking
    their cancellation token on wake, like a real traversal reaching a
    cancellation point); ``failing`` attempts raise ``RuntimeError``.
    Attempt numbers restart at every :meth:`begin_query`.
    """

    def __init__(self, inner, delay_s=STRAGGLE_S):
        self._inner = inner
        self._delay_s = delay_s
        self._slow = set()
        self._failing = set()
        self._attempt = 0
        self._lock = threading.Lock()
        self.cancelled_attempts = 0
        self.calls = 0

    def begin_query(self, slow=(), failing=()):
        with self._lock:
            self._slow = set(slow)
            self._failing = set(failing)
            self._attempt = 0

    def search(self, query, cancel=None):
        with self._lock:
            attempt = self._attempt
            self._attempt += 1
            self.calls += 1
        if attempt in self._failing:
            raise RuntimeError(f"scripted failure on attempt {attempt}")
        if attempt in self._slow:
            time.sleep(self._delay_s)
            if cancel is not None and cancel.is_set():
                with self._lock:
                    self.cancelled_attempts += 1
                raise SearchCancelled(f"attempt {attempt} cancelled")
        return self._inner.search(query, cancel=cancel)


def _wait_for_cancellations(scripted, count, timeout=5.0):
    """Block until ``count`` scripted losers observed their cancellation."""
    # time.monotonic, not time.time: a wall-clock step (NTP, DST) would
    # stretch or cut the wait window.
    deadline = time.monotonic() + timeout
    while scripted.cancelled_attempts < count and time.monotonic() < deadline:
        time.sleep(0.005)
    assert scripted.cancelled_attempts >= count


@pytest.fixture(scope="module")
def partitioned(small_collection):
    return partition_index(small_collection, 2)


@pytest.fixture()
def hedged_node(partitioned):
    """Factory: an ISN with a given policy and a scripted shard 0."""
    nodes = []

    def build(policy, metrics=None):
        node = IndexServingNode(partitioned, hedging=policy, metrics=metrics)
        scripted = ScriptedSearcher(node._searchers[0])
        node._searchers[0] = scripted
        nodes.append(node)
        return node, scripted

    yield build
    for node in nodes:
        node.close()


class TestShardLatencyTracker:
    def test_quantile_of_window(self):
        tracker = ShardLatencyTracker(window=8)
        for value in [1.0, 2.0, 3.0, 4.0]:
            tracker.observe(value)
        assert len(tracker) == 4
        assert tracker.quantile(0.5) == 3.0
        assert tracker.quantile(0.99) == 4.0

    def test_window_evicts_oldest(self):
        tracker = ShardLatencyTracker(window=4)
        for value in [100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0]:
            tracker.observe(value)
        assert len(tracker) == 4
        assert tracker.quantile(0.9) == 1.0

    def test_empty_tracker_has_no_quantile(self):
        assert ShardLatencyTracker().quantile(0.95) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardLatencyTracker(window=0)
        with pytest.raises(ValueError):
            ShardLatencyTracker().observe(-1.0)
        with pytest.raises(ValueError):
            ShardLatencyTracker().quantile(1.0)


class TestHedgingPolicy:
    def test_default_policy_is_inert(self):
        assert not DISABLED_POLICY.enabled
        assert not DISABLED_POLICY.hedges_enabled
        assert DISABLED_POLICY.resolve_hedge_delay() is None

    def test_mechanisms_enable_independently(self):
        assert HedgingPolicy(hedge_delay_s=0.01).enabled
        assert HedgingPolicy(hedge_quantile=0.95).enabled
        assert HedgingPolicy(deadline_s=0.1).enabled
        assert not HedgingPolicy(deadline_s=0.1).hedges_enabled
        # max_hedges=0 disables hedging even with a delay configured.
        assert not HedgingPolicy(hedge_delay_s=0.01, max_hedges=0).enabled

    def test_validation(self):
        for bad in (
            dict(hedge_delay_s=0.0),
            dict(hedge_quantile=1.0),
            dict(deadline_s=-1.0),
            dict(max_hedges=-1),
            dict(max_retries=-1),
            dict(retry_backoff_s=-0.1),
            dict(retry_backoff_multiplier=0.5),
            dict(min_quantile_samples=0),
        ):
            with pytest.raises(ValueError):
                HedgingPolicy(**bad)

    def test_fields_are_keyword_only(self):
        with pytest.raises(TypeError):
            HedgingPolicy(0.01)  # noqa: the point under test

    def test_quantile_delay_needs_warmup(self):
        policy = HedgingPolicy(
            hedge_delay_s=0.05, hedge_quantile=0.5, min_quantile_samples=4
        )
        tracker = ShardLatencyTracker()
        # Cold tracker: fall back to the fixed delay.
        assert policy.resolve_hedge_delay(tracker) == 0.05
        for _ in range(4):
            tracker.observe(0.002)
        # Warmed up: the observed quantile takes over.
        assert policy.resolve_hedge_delay(tracker) == pytest.approx(0.002)

    def test_retry_backoff_grows_exponentially(self):
        policy = HedgingPolicy(
            deadline_s=1.0, retry_backoff_s=0.01, retry_backoff_multiplier=3.0
        )
        assert policy.retry_delay(0) == pytest.approx(0.01)
        assert policy.retry_delay(2) == pytest.approx(0.09)
        with pytest.raises(ValueError):
            policy.retry_delay(-1)


class TestNativeHedging:
    def test_slow_primary_is_hedged_and_hedge_wins(
        self, hedged_node, small_query_log
    ):
        node, scripted = hedged_node(HedgingPolicy(hedge_delay_s=0.02))
        scripted.begin_query(slow={0})
        response = node.execute(small_query_log[0].text)
        assert response.hedges_issued == 1
        assert response.hedges_won == 1
        assert response.deadline_misses == 0
        assert response.coverage == 1.0
        # The hedge answered well before the straggler would have.
        assert response.latency_s < STRAGGLE_S

    def test_hedged_results_match_plain_fanout(
        self, partitioned, hedged_node, small_query_log
    ):
        node, scripted = hedged_node(HedgingPolicy(hedge_delay_s=0.02))
        with IndexServingNode(partitioned) as plain:
            for round_number, query in enumerate(list(small_query_log)[:5]):
                scripted.begin_query(slow={0})
                hedged = node.execute(query.text)
                assert hedged.hedges_won == 1
                assert hedged.doc_ids() == plain.execute(query.text).doc_ids()
                # Wait for the cancelled loser to drain so sleeping
                # threads from past rounds never starve the pool.
                _wait_for_cancellations(scripted, round_number + 1)

    def test_winner_cancels_loser(self, hedged_node, small_query_log):
        node, scripted = hedged_node(HedgingPolicy(hedge_delay_s=0.02))
        scripted.begin_query(slow={0})
        response = node.execute(small_query_log[0].text)
        assert response.hedges_won == 1
        # The losing primary is still asleep when execute() returns; it
        # observes its cancellation token at the next cancellation
        # point (waking up) and abandons the attempt.
        deadline = time.monotonic() + 5.0
        while scripted.cancelled_attempts == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert scripted.cancelled_attempts == 1

    def test_deadline_miss_degrades_coverage(
        self, hedged_node, small_query_log
    ):
        metrics = MetricsRegistry()
        node, scripted = hedged_node(
            HedgingPolicy(deadline_s=0.03, max_hedges=0), metrics=metrics
        )
        scripted.begin_query(slow={0, 1})  # primary and any retry straggle
        response = node.execute(small_query_log[0].text)
        assert response.coverage == 0.5
        assert response.deadline_misses == 1
        assert response.hedges_issued == 0
        # The merge proceeded with the healthy shard's answer.
        assert response.latency_s < STRAGGLE_S
        snapshot = metrics.snapshot()
        assert snapshot["isn.deadline_misses"]["value"] == 1

    def test_failed_attempt_is_retried_with_backoff(
        self, hedged_node, small_query_log
    ):
        metrics = MetricsRegistry()
        node, scripted = hedged_node(
            HedgingPolicy(
                deadline_s=5.0, max_retries=1, retry_backoff_s=0.001
            ),
            metrics=metrics,
        )
        scripted.begin_query(failing={0})
        response = node.execute(small_query_log[0].text)
        assert response.coverage == 1.0
        assert response.deadline_misses == 0
        assert metrics.snapshot()["isn.retries"]["value"] == 1

    def test_exhausted_retries_drop_the_shard(
        self, hedged_node, small_query_log
    ):
        node, scripted = hedged_node(
            HedgingPolicy(deadline_s=5.0, max_retries=1, retry_backoff_s=0.001)
        )
        scripted.begin_query(failing={0, 1})
        response = node.execute(small_query_log[0].text)
        # Both the attempt and its retry failed: the shard is dropped
        # without waiting out the (generous) deadline.
        assert response.coverage == 0.5
        assert response.latency_s < 1.0

    def test_inert_policy_keeps_plain_path(
        self, partitioned, small_query_log
    ):
        with IndexServingNode(partitioned, hedging=HedgingPolicy()) as node:
            assert node.hedging is None
            response = node.execute(small_query_log[0].text)
            assert response.hedges_issued == 0
            assert response.coverage == 1.0

    def test_cache_not_poisoned_by_partial_results(
        self, partitioned, small_query_log
    ):
        from repro.cache.querycache import QueryResultCache

        cache = QueryResultCache(capacity=8)
        with IndexServingNode(
            partitioned,
            hedging=HedgingPolicy(deadline_s=0.03, max_hedges=0),
            cache=cache,
        ) as node:
            scripted = ScriptedSearcher(node._searchers[0])
            node._searchers[0] = scripted
            text = small_query_log[0].text
            scripted.begin_query(slow={0, 1})
            partial = node.execute(text)
            assert partial.coverage == 0.5
            # The degraded page was not cached: the next execution runs
            # the full fan-out and answers with full coverage.
            scripted.begin_query()
            full = node.execute(text)
            assert full.coverage == 1.0
            assert len(full.doc_ids()) >= len(partial.doc_ids())
