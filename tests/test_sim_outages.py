"""Tests for scripted outage injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.replication import (
    HedgeConfig,
    ReplicaSelection,
    ReplicatedClusterConfig,
    run_replicated_open_loop,
)
from repro.cluster.server import PartitionModelConfig
from repro.servers.catalog import BIG_SERVER
from repro.sim.outages import FixedOutages, OutageSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand


class TestOutageSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            OutageSpec(shard=-1, replica=0, start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            OutageSpec(shard=0, replica=0, start=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            OutageSpec(shard=0, replica=0, start=0.0, duration=0.0)


class TestFixedOutages:
    def test_execute_outside_windows(self):
        outages = FixedOutages([(5.0, 1.0)])
        start, end = outages.execute(0.0, 2.0)
        assert start == 0.0 and end == 2.0

    def test_execute_spanning_window(self):
        outages = FixedOutages([(5.0, 1.0)])
        start, end = outages.execute(4.5, 1.0)
        assert start == 4.5
        assert end == pytest.approx(6.5)  # 0.5 before, 1.0 stalled, 0.5 after

    def test_start_inside_window(self):
        outages = FixedOutages([(5.0, 1.0)])
        start, end = outages.execute(5.3, 0.5)
        assert start == pytest.approx(6.0)
        assert end == pytest.approx(6.5)

    def test_overlapping_windows_merged(self):
        outages = FixedOutages([(1.0, 2.0), (2.0, 2.0)])
        assert outages.pauses_up_to(10.0) == [(1.0, 4.0)]

    def test_invalid_intervals(self):
        with pytest.raises(ValueError):
            FixedOutages([(0.0, 0.0)])
        with pytest.raises(ValueError):
            FixedOutages([(-1.0, 1.0)])
        with pytest.raises(ValueError):
            FixedOutages([(0.0, 1.0)]).execute(0.0, -1.0)

    @settings(max_examples=40)
    @given(
        windows=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=20.0),
                st.floats(min_value=0.01, max_value=3.0),
            ),
            max_size=5,
        ),
        begin=st.floats(min_value=0.0, max_value=25.0),
        busy=st.floats(min_value=0.0, max_value=4.0),
    )
    def test_execute_conserves_busy_time(self, windows, begin, busy):
        outages = FixedOutages(windows)
        start, end = outages.execute(begin, busy)
        stalled = sum(
            max(0.0, min(end, pause_end) - max(start, pause_start))
            for pause_start, pause_end in outages.pauses_up_to(end + 1.0)
        )
        assert (end - start) - stalled == pytest.approx(busy, abs=1e-9)


class TestOutageFailover:
    DEMAND = LognormalDemand(mu=-5.5, sigma=0.4)  # ~4 ms, light tail
    PARTITIONING = PartitionModelConfig(
        num_partitions=1, partition_overhead=0.0,
        merge_base=0.0, merge_per_partition=0.0,
    )

    def _run(self, selection, hedge=None, seed=0):
        config = ReplicatedClusterConfig(
            num_shards=1,
            replicas=2,
            spec=BIG_SERVER,
            partitioning=self.PARTITIONING,
            selection=selection,
            hedge=hedge,
            outages=(
                OutageSpec(shard=0, replica=0, start=2.0, duration=0.5),
            ),
        )
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(300.0),
            demands=self.DEMAND,
            num_queries=3_000,
        )
        return run_replicated_open_loop(config, scenario, seed=seed)

    def test_outage_config_validation(self):
        with pytest.raises(ValueError, match="shard"):
            ReplicatedClusterConfig(
                num_shards=1, replicas=2, spec=BIG_SERVER,
                outages=(OutageSpec(5, 0, 0.0, 1.0),),
            )
        with pytest.raises(ValueError, match="replica"):
            ReplicatedClusterConfig(
                num_shards=1, replicas=2, spec=BIG_SERVER,
                outages=(OutageSpec(0, 5, 0.0, 1.0),),
            )
        with pytest.raises(TypeError):
            ReplicatedClusterConfig(
                num_shards=1, replicas=2, spec=BIG_SERVER,
                outages=("not-a-spec",),
            )

    def test_brownout_inflates_max_latency(self):
        result = self._run(ReplicaSelection.RANDOM)
        # Some request dispatched into the brownout waits ~up to 500 ms.
        assert result.summary().max > 0.1

    def test_least_outstanding_routes_around_brownout(self):
        random_result = self._run(ReplicaSelection.RANDOM)
        jsq_result = self._run(ReplicaSelection.LEAST_OUTSTANDING)
        # Fewer requests get stuck: high percentiles improve.
        assert (
            jsq_result.summary().p99 < random_result.summary().p99
        )

    def test_hedging_rescues_stuck_requests(self):
        plain = self._run(ReplicaSelection.RANDOM)
        hedged = self._run(
            ReplicaSelection.RANDOM, hedge=HedgeConfig(delay_s=0.02)
        )
        assert hedged.summary().max < 0.3 * plain.summary().max
