"""Unit + property tests for the varint/delta postings codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.compression import (
    compressed_size,
    decode_postings,
    decode_varint,
    decode_varint_stream,
    encode_postings,
    encode_varint,
    encode_varint_stream,
)
from repro.index.postings import PostingsList


class TestVarint:
    def test_small_values_one_byte(self):
        for value in (0, 1, 127):
            assert len(encode_varint(value)) == 1

    def test_larger_values_multi_byte(self):
        assert len(encode_varint(128)) == 2
        assert len(encode_varint(1 << 21)) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_truncated_decode_rejected(self):
        data = encode_varint(300)[:1]  # drop the final byte
        with pytest.raises(ValueError):
            decode_varint(data)

    @given(st.integers(min_value=0, max_value=2**62))
    def test_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded)
        assert decoded == value
        assert offset == len(encoded)

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=50))
    def test_stream_roundtrip(self, values):
        data = encode_varint_stream(values)
        assert decode_varint_stream(data, len(values)) == values

    def test_stream_trailing_bytes_rejected(self):
        data = encode_varint_stream([1, 2, 3])
        with pytest.raises(ValueError):
            decode_varint_stream(data, 2)


class TestPostingsCodec:
    def test_empty_roundtrip(self):
        encoded = encode_postings(PostingsList.empty())
        decoded, consumed = decode_postings(encoded)
        assert len(decoded) == 0
        assert consumed == len(encoded)

    def test_simple_roundtrip(self):
        postings = PostingsList.from_pairs([(0, 1), (1, 2), (100, 3)])
        decoded, consumed = decode_postings(encode_postings(postings))
        assert decoded == postings

    def test_dense_ids_compress_well(self):
        # Consecutive ids have gap 0 after biasing: 2 bytes per posting.
        postings = PostingsList.from_pairs([(i, 1) for i in range(1000)])
        assert compressed_size(postings) <= 2 * 1000 + 3

    def test_decode_reports_consumed_bytes(self):
        postings = PostingsList.from_pairs([(3, 1), (9, 2)])
        encoded = encode_postings(postings) + b"extra"
        decoded, consumed = decode_postings(encoded)
        assert decoded == postings
        assert encoded[consumed:] == b"extra"

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=100_000),
                st.integers(min_value=1, max_value=1_000),
            ),
            max_size=80,
            unique_by=lambda pair: pair[0],
        ).map(sorted)
    )
    def test_roundtrip_property(self, pairs):
        postings = PostingsList.from_pairs(pairs)
        decoded, consumed = decode_postings(encode_postings(postings))
        assert decoded == postings
        assert consumed == len(encode_postings(postings))
