"""Unit tests for the tiered block store, cache, and segment format.

The tiered path's contract is *bit-identical results, different I/O
schedule* — so these tests pin the building blocks that contract rests
on: the self-delimiting block codec (with checksums), the byte-budgeted
single-flight cache (admission, eviction, counter accounting, thread
safety), the fault-injecting store wrapper, and the RTIX segment
round-trip.  The cross-cutting bit-identity properties live in
``test_properties_tiered.py``.
"""

import threading
import time

import numpy as np
import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.partitioner import partition_index
from repro.index.serialization import CorruptedIndexError
from repro.index.store import (
    BlockCache,
    BlockIntegrityError,
    BlockKey,
    BlockNotFoundError,
    FileBlockStore,
    FrequencySketch,
    InMemoryBlockStore,
    SlowStore,
    StoreTimeoutError,
    TieredStorageConfig,
    TruncatedSegmentError,
    build_block_map,
    decode_postings_block,
    encode_postings_block,
    open_tiered_index,
    tier_index,
    tier_partitioned_index,
    write_tiered_segment,
)
from repro.search.daat import score_daat
from repro.search.query import ParsedQuery
from repro.text.analyzer import Analyzer, AnalyzerConfig


def build_index(texts, block_size=4):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return IndexBuilder(
        Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False)),
        block_size=block_size,
    ).build(collection)


@pytest.fixture(scope="module")
def paged_index():
    # Enough repeated terms that every term spans multiple 4-posting
    # blocks — the interesting regime for paging.
    return build_index(
        ["cat dog bird" for _ in range(10)]
        + ["cat fish" for _ in range(7)]
        + ["dog dog fish"],
    )


class TestBlockCodec:
    def test_roundtrip(self):
        doc_ids = np.array([3, 9, 10, 400], dtype=np.int64)
        frequencies = np.array([1, 7, 2, 1], dtype=np.int64)
        payload = encode_postings_block(doc_ids, frequencies)
        decoded_ids, decoded_freqs = decode_postings_block(payload, 4)
        assert list(decoded_ids) == [3, 9, 10, 400]
        assert list(decoded_freqs) == [1, 7, 2, 1]

    def test_first_doc_id_is_absolute(self):
        """A block decodes alone — no predecessor block required."""
        payload = encode_postings_block(
            np.array([1000], dtype=np.int64), np.array([2], dtype=np.int64)
        )
        decoded_ids, _ = decode_postings_block(payload, 1)
        assert int(decoded_ids[0]) == 1000

    @pytest.mark.parametrize("position", [0, 3, 4, -1])
    def test_bit_flip_detected(self, position):
        payload = bytearray(
            encode_postings_block(
                np.array([1, 5, 6], dtype=np.int64),
                np.array([2, 1, 3], dtype=np.int64),
            )
        )
        payload[position] ^= 0x40
        with pytest.raises(BlockIntegrityError):
            decode_postings_block(bytes(payload), 3)

    def test_truncated_payload_detected(self):
        payload = encode_postings_block(
            np.array([1, 5, 6], dtype=np.int64),
            np.array([2, 1, 3], dtype=np.int64),
        )
        with pytest.raises(BlockIntegrityError):
            decode_postings_block(payload[:-1], 3)

    def test_shorter_than_checksum_detected(self):
        with pytest.raises(BlockIntegrityError, match="checksum"):
            decode_postings_block(b"\x01\x02", 1)

    def test_wrong_count_detected(self):
        """The TOC's posting count is part of the integrity contract."""
        payload = encode_postings_block(
            np.array([1, 5, 6], dtype=np.int64),
            np.array([2, 1, 3], dtype=np.int64),
        )
        with pytest.raises(BlockIntegrityError):
            decode_postings_block(payload, 2)  # leaves trailing bytes


class TestFrequencySketch:
    def test_estimates_track_recordings(self):
        sketch = FrequencySketch(width=64)
        hot, cold = BlockKey(1, 0), BlockKey(2, 0)
        for _ in range(10):
            sketch.record(hot)
        sketch.record(cold)
        assert sketch.estimate(hot) >= sketch.estimate(cold)
        assert sketch.estimate(hot) >= 10

    def test_aging_halves_counts(self):
        sketch = FrequencySketch(width=16, sample_size=8)
        key = BlockKey(0, 0)
        for _ in range(8):  # the 8th recording triggers the halving
            sketch.record(key)
        assert sketch.estimate(key) <= 4

    def test_counters_saturate(self):
        sketch = FrequencySketch(width=8, sample_size=1 << 30)
        key = BlockKey(0, 0)
        for _ in range(300):
            sketch.record(key)
        assert sketch.estimate(key) == 255


def counting_loader(blocks, size=10):
    """A loader over a dict that counts its own invocations."""
    calls = []

    def loader(key):
        calls.append(key)
        return blocks[key], size

    return loader, calls


class TestBlockCache:
    def test_hit_after_miss(self):
        loader, calls = counting_loader({BlockKey(0, 0): "x"})
        cache = BlockCache(budget_bytes=100, loader=loader)
        assert cache.get(BlockKey(0, 0)) == "x"
        assert cache.get(BlockKey(0, 0)) == "x"
        assert len(calls) == 1
        snap = cache.snapshot()
        assert snap.block_hits == 1
        assert snap.block_misses == 1
        assert snap.blocks_fetched == 1
        assert snap.bytes_read == 10

    def test_zero_budget_always_fetches_but_stays_correct(self):
        blocks = {BlockKey(0, i): f"v{i}" for i in range(3)}
        loader, calls = counting_loader(blocks)
        cache = BlockCache(budget_bytes=0, loader=loader)
        for _ in range(2):
            for i in range(3):
                assert cache.get(BlockKey(0, i)) == f"v{i}"
        assert len(calls) == 6
        assert cache.snapshot().bytes_cached == 0

    def test_lru_eviction_order(self):
        blocks = {BlockKey(0, i): f"v{i}" for i in range(3)}
        loader, _ = counting_loader(blocks, size=10)
        cache = BlockCache(budget_bytes=20, loader=loader, admission=False)
        cache.get(BlockKey(0, 0))
        cache.get(BlockKey(0, 1))
        cache.get(BlockKey(0, 0))  # touch: 1 becomes the LRU victim
        cache.get(BlockKey(0, 2))
        assert BlockKey(0, 0) in cache
        assert BlockKey(0, 1) not in cache
        assert BlockKey(0, 2) in cache
        assert cache.snapshot().evictions == 1

    def test_admission_rejects_cold_newcomer(self):
        blocks = {BlockKey(0, i): f"v{i}" for i in range(3)}
        loader, _ = counting_loader(blocks, size=10)
        cache = BlockCache(budget_bytes=20, loader=loader, admission=True)
        for _ in range(5):  # make 0 and 1 hot
            cache.get(BlockKey(0, 0))
            cache.get(BlockKey(0, 1))
        cache.get(BlockKey(0, 2))  # one cold touch: colder than any victim
        assert BlockKey(0, 2) not in cache
        assert BlockKey(0, 0) in cache and BlockKey(0, 1) in cache
        snap = cache.snapshot()
        assert snap.admission_rejects == 1
        assert snap.evictions == 0

    def test_rejected_value_still_returned(self):
        blocks = {BlockKey(0, i): f"v{i}" for i in range(3)}
        loader, _ = counting_loader(blocks, size=10)
        cache = BlockCache(budget_bytes=20, loader=loader, admission=True)
        for _ in range(5):
            cache.get(BlockKey(0, 0))
            cache.get(BlockKey(0, 1))
        assert cache.get(BlockKey(0, 2)) == "v2"

    def test_oversized_value_bypasses_without_reject(self):
        loader, _ = counting_loader({BlockKey(0, 0): "big"}, size=1000)
        cache = BlockCache(budget_bytes=100, loader=loader)
        assert cache.get(BlockKey(0, 0)) == "big"
        snap = cache.snapshot()
        assert snap.bytes_cached == 0
        assert snap.admission_rejects == 0

    def test_budget_never_exceeded(self):
        blocks = {BlockKey(0, i): i for i in range(50)}
        loader, _ = counting_loader(blocks, size=7)
        cache = BlockCache(budget_bytes=30, loader=loader, admission=False)
        for i in range(50):
            cache.get(BlockKey(0, i))
            assert 0 <= cache.snapshot().bytes_cached <= 30

    def test_clear_keeps_counters(self):
        loader, _ = counting_loader({BlockKey(0, 0): "x"})
        cache = BlockCache(budget_bytes=100, loader=loader)
        cache.get(BlockKey(0, 0))
        cache.clear()
        assert len(cache) == 0
        snap = cache.snapshot()
        assert snap.blocks_fetched == 1
        assert snap.bytes_cached == 0

    def test_snapshot_delta(self):
        loader, _ = counting_loader({BlockKey(0, 0): "x"})
        cache = BlockCache(budget_bytes=100, loader=loader)
        before = cache.snapshot()
        cache.get(BlockKey(0, 0))
        cache.get(BlockKey(0, 0))
        delta = cache.snapshot().delta(before)
        assert delta.blocks_fetched == 1
        assert delta.block_hits == 1
        assert delta.bytes_read == 10

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            BlockCache(budget_bytes=-1, loader=lambda key: ("x", 1))

    def test_loader_failure_not_cached(self):
        attempts = []

        def loader(key):
            attempts.append(key)
            if len(attempts) == 1:
                raise StoreTimeoutError("injected")
            return "x", 1

        cache = BlockCache(budget_bytes=100, loader=loader)
        with pytest.raises(StoreTimeoutError):
            cache.get(BlockKey(0, 0))
        # The failure poisoned nothing: the retry fetches and succeeds.
        assert cache.get(BlockKey(0, 0)) == "x"
        assert len(attempts) == 2


class TestBlockCacheConcurrency:
    def test_single_flight_under_contention(self):
        """Many threads racing on one cold block cause exactly one fetch."""
        num_threads = 16
        release = threading.Event()
        calls = []

        def slow_loader(key):
            calls.append(key)
            release.wait(timeout=5.0)
            return "value", 10

        cache = BlockCache(budget_bytes=100, loader=slow_loader)
        results = []
        errors = []

        def worker():
            try:
                results.append(cache.get(BlockKey(0, 0)))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker) for _ in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        # Let every thread reach the flight before the leader finishes.
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert not errors
        assert results == ["value"] * num_threads
        assert len(calls) == 1
        snap = cache.snapshot()
        assert snap.blocks_fetched == 1
        assert snap.block_misses == num_threads
        assert snap.bytes_read == 10

    def test_failure_propagates_to_every_waiter(self):
        release = threading.Event()

        def failing_loader(key):
            release.wait(timeout=5.0)
            raise StoreTimeoutError("injected")

        cache = BlockCache(budget_bytes=100, loader=failing_loader)
        outcomes = []

        def worker():
            try:
                cache.get(BlockKey(0, 0))
                outcomes.append("ok")
            except StoreTimeoutError:
                outcomes.append("timeout")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        time.sleep(0.05)
        release.set()
        for thread in threads:
            thread.join(timeout=5.0)
        assert outcomes == ["timeout"] * 8
        assert len(cache) == 0

    def test_counters_consistent_under_contention(self):
        """Random mixed workload: fetches + hits == gets; budget holds."""
        blocks = {BlockKey(0, i): i for i in range(20)}
        lock = threading.Lock()
        fetches = [0]

        def loader(key):
            with lock:
                fetches[0] += 1
            time.sleep(0.0005)
            return blocks[key], 9

        cache = BlockCache(budget_bytes=90, loader=loader, admission=False)
        gets_per_thread = 60

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(gets_per_thread):
                block = int(rng.integers(0, 20))
                assert cache.get(BlockKey(0, block)) == block

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        snap = cache.snapshot()
        assert snap.blocks_fetched == fetches[0]
        assert snap.block_hits + snap.block_misses == 8 * gets_per_thread
        # Single-flight: fetches never exceed misses.
        assert snap.blocks_fetched <= snap.block_misses
        assert 0 <= snap.bytes_cached <= 90
        assert snap.bytes_read == snap.blocks_fetched * 9


class TestStores:
    def test_in_memory_missing_block(self):
        store = InMemoryBlockStore({})
        with pytest.raises(BlockNotFoundError):
            store.read(BlockKey(0, 0))

    def test_file_store_reads_ranges(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"aaabbbbcc")
        store = FileBlockStore(
            path, {BlockKey(0, 0): (0, 3), BlockKey(0, 1): (3, 4)}
        )
        assert store.read(BlockKey(0, 0)) == b"aaa"
        assert store.read(BlockKey(0, 1)) == b"bbbb"
        store.close()

    def test_file_store_short_read_is_truncation(self, tmp_path):
        path = tmp_path / "blob.bin"
        path.write_bytes(b"aaa")
        store = FileBlockStore(path, {BlockKey(0, 0): (0, 10)})
        with pytest.raises(TruncatedSegmentError):
            store.read(BlockKey(0, 0))
        store.close()

    def test_slow_store_timeout_rate_one(self):
        store = SlowStore(
            InMemoryBlockStore({BlockKey(0, 0): b"x"}), timeout_rate=1.0
        )
        with pytest.raises(StoreTimeoutError):
            store.read(BlockKey(0, 0))

    def test_slow_store_fault_stream_is_seeded(self):
        def outcomes(seed):
            store = SlowStore(
                InMemoryBlockStore({BlockKey(0, 0): b"x"}),
                timeout_rate=0.5,
                seed=seed,
            )
            stream = []
            for _ in range(20):
                try:
                    store.read(BlockKey(0, 0))
                    stream.append(True)
                except StoreTimeoutError:
                    stream.append(False)
            return stream

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)

    def test_slow_store_passes_payload_through(self):
        store = SlowStore(
            InMemoryBlockStore({BlockKey(0, 0): b"payload"}),
            latency_s=0.001,
        )
        assert store.read(BlockKey(0, 0)) == b"payload"

    def test_slow_store_validates_parameters(self):
        inner = InMemoryBlockStore({})
        with pytest.raises(ValueError):
            SlowStore(inner, latency_s=-1.0)
        with pytest.raises(ValueError):
            SlowStore(inner, timeout_rate=1.5)


class TestTieredIndex:
    def test_interface_parity_with_resident(self, paged_index):
        tiered = tier_index(paged_index, cache_budget_bytes=1 << 20)
        assert tiered.num_documents == paged_index.num_documents
        assert tiered.num_terms == paged_index.num_terms
        assert tiered.total_postings == paged_index.total_postings
        assert tiered.average_doc_length == pytest.approx(
            paged_index.average_doc_length
        )
        for term in paged_index.dictionary:
            assert tiered.postings_for(term) == paged_index.postings_for(term)
            assert tiered.document_frequency(
                term
            ) == paged_index.document_frequency(term)

    def test_block_map_covers_every_posting(self, paged_index):
        terms, blocks = build_block_map(paged_index)
        assert len(terms) == paged_index.num_terms
        total_blocks = sum(info.num_blocks for info in terms)
        assert len(blocks) == total_blocks

    def test_unknown_term_is_empty(self, paged_index):
        tiered = tier_index(paged_index, cache_budget_bytes=1 << 20)
        assert len(tiered.postings_for("zzzz")) == 0

    def test_search_pages_blocks(self, paged_index):
        tiered = tier_index(paged_index, cache_budget_bytes=1 << 20)
        hits = score_daat(tiered, ParsedQuery(terms=("cat", "dog"), k=5))
        assert hits
        snap = tiered.store_stats()
        assert snap.blocks_fetched > 0
        assert snap.bytes_read > 0
        assert snap.bytes_read <= tiered.total_block_bytes

    def test_store_loader_validates_toc_last_doc_id(self, paged_index):
        """A block whose decoded ids disagree with the TOC is rejected."""
        terms, blocks = build_block_map(paged_index)
        # Swap a two-block term's first block payload for a valid block
        # with the wrong doc ids (fresh checksum, so only the TOC check
        # can catch it).
        victim = next(
            term_id
            for term_id, info in enumerate(terms)
            if info.num_blocks >= 2
        )
        forged = encode_postings_block(
            np.arange(terms[victim].block_count(0), dtype=np.int64) + 1000,
            np.ones(terms[victim].block_count(0), dtype=np.int64),
        )
        tiered = tier_index(paged_index, cache_budget_bytes=1 << 20)
        tiered.store._blocks[BlockKey(victim, 0)] = forged
        with pytest.raises(BlockIntegrityError, match="TOC"):
            tiered.postings_for_id(victim)


class TestTieredSegmentFile:
    def test_roundtrip_preserves_results(self, tmp_path, paged_index):
        path = tmp_path / "segment.rtix"
        written = write_tiered_segment(paged_index, path)
        assert written == path.stat().st_size
        tiered = open_tiered_index(path, cache_budget_bytes=1 << 20)
        for term in paged_index.dictionary:
            assert tiered.postings_for(term) == paged_index.postings_for(term)
        assert list(tiered.doc_lengths) == list(paged_index.doc_lengths)
        tiered.store.close()

    def test_truncated_header_rejected(self, tmp_path, paged_index):
        path = tmp_path / "segment.rtix"
        write_tiered_segment(paged_index, path)
        data = path.read_bytes()
        path.write_bytes(data[:20])
        with pytest.raises(TruncatedSegmentError):
            open_tiered_index(path, cache_budget_bytes=1 << 20)

    def test_header_corruption_rejected(self, tmp_path, paged_index):
        path = tmp_path / "segment.rtix"
        write_tiered_segment(paged_index, path)
        data = bytearray(path.read_bytes())
        data[40] ^= 0xFF  # somewhere inside the checksummed header body
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptedIndexError):
            open_tiered_index(path, cache_budget_bytes=1 << 20)

    def test_bad_magic_rejected(self, tmp_path, paged_index):
        path = tmp_path / "segment.rtix"
        write_tiered_segment(paged_index, path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="magic"):
            open_tiered_index(path, cache_budget_bytes=1 << 20)

    def test_block_corruption_surfaces_on_page_in(self, tmp_path, paged_index):
        """Header intact, one payload byte flipped: open succeeds, the
        paged-in block raises a typed integrity error."""
        path = tmp_path / "segment.rtix"
        write_tiered_segment(paged_index, path)
        data = bytearray(path.read_bytes())
        data[-3] ^= 0x01  # inside the last postings block
        path.write_bytes(bytes(data))
        tiered = open_tiered_index(path, cache_budget_bytes=1 << 20)
        with pytest.raises(BlockIntegrityError):
            tiered.all_postings()
        tiered.store.close()

    def test_truncated_payload_region_surfaces_on_page_in(
        self, tmp_path, paged_index
    ):
        path = tmp_path / "segment.rtix"
        write_tiered_segment(paged_index, path)
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # chop the tail of the block region
        tiered = open_tiered_index(path, cache_budget_bytes=1 << 20)
        with pytest.raises(TruncatedSegmentError):
            tiered.all_postings()
        tiered.store.close()


class TestTieredStorageConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TieredStorageConfig(cache_budget_bytes=-1)
        with pytest.raises(ValueError):
            TieredStorageConfig(timeout_rate=2.0)
        with pytest.raises(ValueError):
            TieredStorageConfig(fetch_latency_s=-0.1)

    def test_store_wrapper_only_when_needed(self):
        assert TieredStorageConfig().store_wrapper() is None
        wrapper = TieredStorageConfig(timeout_rate=0.5).store_wrapper(3)
        store = wrapper(InMemoryBlockStore({}))
        assert isinstance(store, SlowStore)
        assert store.timeout_rate == 0.5

    def test_partitioned_budget_split(self, small_collection):
        partitioned = partition_index(small_collection, 4)
        config = TieredStorageConfig(cache_budget_bytes=4000)
        tiered = tier_partitioned_index(partitioned, config)
        assert tiered.num_partitions == 4
        for shard, original in zip(tiered, partitioned):
            assert shard.index.cache.budget_bytes == 1000
            assert shard.index.num_documents == original.index.num_documents
            assert list(shard.global_doc_ids) == list(original.global_doc_ids)
