"""Tests for the frontend tier and the client drivers."""

import numpy as np
import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.engine.driver import ClosedLoopDriver, replay_serial
from repro.engine.frontend import Frontend
from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index
from repro.search.executor import Searcher
from repro.workload.arrivals import ClosedLoopSpec


@pytest.fixture(scope="module")
def two_isns(small_collection):
    """Split the collection across two ISNs (inter-server sharding).

    Yields ``(nodes, id_maps)`` where ``id_maps[i][local]`` is the
    cluster-global doc id.
    """
    half = len(small_collection) // 2
    first, second = DocumentCollection(), DocumentCollection()
    id_maps = [[], []]
    for document in small_collection:
        index = 0 if document.doc_id < half else 1
        target = (first, second)[index]
        id_maps[index].append(document.doc_id)
        target.add(
            Document(
                doc_id=len(target),
                url=document.url,
                title=document.title,
                body=document.body,
            )
        )
    nodes = [
        IndexServingNode(partition_index(first, 2)),
        IndexServingNode(partition_index(second, 2)),
    ]
    yield nodes, id_maps
    for node in nodes:
        node.close()


@pytest.fixture(scope="module")
def single_isn(small_collection):
    node = IndexServingNode(partition_index(small_collection, 2))
    yield node
    node.close()


class TestFrontend:
    def test_requires_isns(self):
        with pytest.raises(ValueError):
            Frontend([])

    def test_single_isn_passthrough(self, single_isn, small_query_log):
        frontend = Frontend([single_isn])
        assert frontend.num_isns == 1
        for query in list(small_query_log)[:5]:
            via_frontend = frontend.execute(query.text)
            direct = single_isn.execute(query.text)
            assert via_frontend.doc_ids() == direct.doc_ids()

    def test_multi_isn_requires_id_maps(self, two_isns):
        nodes, _ = two_isns
        with pytest.raises(ValueError, match="global_id_maps"):
            Frontend(nodes)

    def test_id_map_length_mismatch(self, two_isns):
        nodes, id_maps = two_isns
        with pytest.raises(ValueError, match="id maps"):
            Frontend(nodes, global_id_maps=id_maps[:1])

    def test_multi_isn_result_count(self, two_isns, small_query_log):
        nodes, id_maps = two_isns
        frontend = Frontend(nodes, global_id_maps=id_maps)
        response = frontend.execute(small_query_log[0].text, k=10)
        assert len(response.hits) <= 10
        assert len(response.isn_responses) == 2
        assert response.total_seconds > 0
        assert response.slowest_isn_seconds > 0

    def test_multi_isn_returns_cluster_global_ids(
        self, two_isns, small_collection, small_query_log
    ):
        """Merged hits must reference the original collection's ids so
        the caller can fetch the right documents."""
        nodes, id_maps = two_isns
        frontend = Frontend(nodes, global_id_maps=id_maps)
        for query in list(small_query_log)[:5]:
            response = frontend.execute(query.text)
            for hit in response.hits:
                assert 0 <= hit.doc_id < len(small_collection)

    def test_multi_isn_page_matches_monolith_size(
        self, two_isns, small_index, small_query_log
    ):
        """Inter-server sharding must not lose results: the merged page
        has as many hits as a monolithic index's page."""
        nodes, id_maps = two_isns
        frontend = Frontend(nodes, global_id_maps=id_maps)
        monolith = Searcher(small_index)
        for query in list(small_query_log)[:10]:
            merged = frontend.execute(query.text, k=5)
            reference = monolith.search(query.text, k=5)
            assert len(merged.hits) == len(reference.hits)


class TestReplaySerial:
    def test_measurements_structure(self, single_isn, small_query_log):
        queries = list(small_query_log)[:10]
        measurements = replay_serial(single_isn, queries, repeats=1, warmup=1)
        assert len(measurements) == 10
        for measurement, query in zip(measurements, queries):
            assert measurement.query_id == query.query_id
            assert measurement.service_seconds > 0
            assert measurement.matched_volume >= 0
            assert measurement.num_raw_terms == len(query.raw_terms)

    def test_empty_queries(self, single_isn):
        assert replay_serial(single_isn, []) == []

    def test_invalid_repeats(self, single_isn, small_query_log):
        with pytest.raises(ValueError):
            replay_serial(single_isn, list(small_query_log)[:1], repeats=0)

    def test_service_time_scales_with_volume(self, single_isn, small_query_log):
        """Queries touching more postings must, on aggregate, take longer
        — the correlation the simulator calibration relies on."""
        measurements = replay_serial(
            single_isn, list(small_query_log)[:60], repeats=3, warmup=3
        )
        volumes = np.array([m.matched_volume for m in measurements])
        times = np.array([m.service_seconds for m in measurements])
        big = times[volumes > np.median(volumes)].mean()
        small = times[volumes <= np.median(volumes)].mean()
        assert big > small


class TestClosedLoopDriver:
    def test_runs_and_measures(self, single_isn, small_query_log):
        driver = ClosedLoopDriver(
            single_isn,
            small_query_log,
            ClosedLoopSpec(num_clients=3, mean_think_time=0.0),
        )
        result = driver.run(num_queries=30)
        assert len(result.latencies) == 30
        assert np.all(result.latencies > 0)
        assert result.throughput_qps > 0

    def test_invalid_budget(self, single_isn, small_query_log):
        driver = ClosedLoopDriver(
            single_isn, small_query_log, ClosedLoopSpec(num_clients=1)
        )
        with pytest.raises(ValueError):
            driver.run(num_queries=0)
