"""Unit + integration tests for the native index serving node."""

import pytest

from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index
from repro.search.executor import Searcher


@pytest.fixture(scope="module")
def partitioned(small_collection):
    return partition_index(small_collection, 4)


@pytest.fixture(scope="module")
def isn(partitioned):
    node = IndexServingNode(partitioned)
    yield node
    node.close()


class TestIndexServingNode:
    def test_parallel_matches_serial(self, isn, small_query_log):
        for query in list(small_query_log)[:10]:
            parallel = isn.execute(query.text)
            serial = isn.execute_serial(query.text)
            assert parallel.doc_ids() == serial.doc_ids()

    def test_matches_unpartitioned_index(
        self, isn, small_index, small_query_log
    ):
        # Global-statistics scoring makes the partitioned ISN rank exactly
        # like a single-index searcher.
        searcher = Searcher(small_index)
        for query in list(small_query_log)[:15]:
            isn_response = isn.execute(query.text, k=5)
            flat = searcher.search(query.text, k=5)
            assert isn_response.doc_ids() == flat.doc_ids()

    def test_timings_populated(self, isn, small_query_log):
        response = isn.execute(small_query_log[0].text)
        timings = response.timings
        assert timings.total_seconds > 0
        assert len(timings.shard_seconds) == 4
        assert timings.fanout_seconds >= max(timings.shard_seconds) * 0.5
        assert timings.slowest_shard_seconds == max(timings.shard_seconds)
        assert timings.skew_seconds >= 0

    def test_matched_volume_matches_full_index(
        self, isn, small_index, small_query_log
    ):
        from repro.search.query import QueryParser

        parser = QueryParser(small_index.analyzer)
        for query in list(small_query_log)[:5]:
            response = isn.execute(query.text)
            parsed = parser.parse(query.text)
            expected = small_index.matched_postings_volume(list(parsed.terms))
            assert response.matched_volume == expected

    def test_k_respected(self, isn, small_query_log):
        response = isn.execute(small_query_log[0].text, k=3)
        assert len(response.hits) <= 3

    def test_closed_node_rejects_queries(self, partitioned):
        node = IndexServingNode(partitioned)
        node.close()
        with pytest.raises(RuntimeError):
            node.execute("anything")

    def test_context_manager(self, partitioned):
        with IndexServingNode(partitioned) as node:
            node.execute_serial("test")
        with pytest.raises(RuntimeError):
            node.execute_serial("test")

    def test_local_stats_mode_runs(self, partitioned, small_query_log):
        with IndexServingNode(partitioned, use_global_stats=False) as node:
            response = node.execute(small_query_log[0].text)
            assert response.hits is not None

    def test_invalid_thread_count(self, partitioned):
        with pytest.raises(ValueError):
            IndexServingNode(partitioned, num_threads=0)

    def test_num_partitions(self, isn):
        assert isn.num_partitions == 4
