"""Tests for the deterministic fault-space explorer.

The explorer itself is the test harness for the resilience layer, so
these tests pin down two things: the *enumeration* is deterministic
and well-formed (seeded schedules, windows inside the fault horizon,
the inert control plan in every combo cycle), and a modest exploration
on each backend completes with zero invariant violations — the
tier-1-sized version of the >= 100-schedule CI sweep.
"""

import pytest

from repro.resilience.explore import (
    FAULT_COMBOS,
    ExplorationReport,
    ScheduleResult,
    enumerate_fault_plans,
    explore,
    explore_des,
    explore_native,
    main,
)
from repro.resilience.faults import FaultPlan


class TestEnumeration:
    def test_deterministic(self):
        first = enumerate_fault_plans(
            24, shards=3, fault_horizon_s=0.5, seed=7
        )
        second = enumerate_fault_plans(
            24, shards=3, fault_horizon_s=0.5, seed=7
        )
        assert first == second

    def test_seed_changes_schedules(self):
        a = enumerate_fault_plans(24, shards=3, fault_horizon_s=0.5, seed=0)
        b = enumerate_fault_plans(24, shards=3, fault_horizon_s=0.5, seed=1)
        # The combo cycle is seed-independent; the timings are not.
        assert a != b

    def test_combo_cycle_includes_inert_control(self):
        plans = enumerate_fault_plans(
            len(FAULT_COMBOS) * 2, shards=3, fault_horizon_s=0.5
        )
        for index in (0, len(FAULT_COMBOS)):
            assert plans[index] == FaultPlan(seed=index)
            assert not plans[index].enabled
        # Everything else injects at least one fault.
        assert all(
            plan.enabled
            for index, plan in enumerate(plans)
            if index % len(FAULT_COMBOS) != 0
        )

    def test_windows_close_before_horizon(self):
        horizon = 0.37
        plans = enumerate_fault_plans(
            40, shards=4, fault_horizon_s=horizon, seed=3
        )
        for plan in plans:
            for fault in plan.crashes + plan.slowdowns + plan.error_bursts:
                assert 0.0 <= fault.start_s < horizon
                assert fault.end_s <= horizon

    def test_shards_stay_in_range(self):
        plans = enumerate_fault_plans(40, shards=2, fault_horizon_s=0.5)
        for plan in plans:
            for fault in plan.crashes + plan.slowdowns + plan.error_bursts:
                assert 0 <= fault.shard < 2

    def test_full_combo_coverage(self):
        plans = enumerate_fault_plans(
            len(FAULT_COMBOS), shards=3, fault_horizon_s=0.5
        )
        kinds = [
            (
                len(plan.crashes),
                len(plan.slowdowns),
                len(plan.error_bursts),
            )
            for plan in plans
        ]
        assert len(set(kinds)) == len(FAULT_COMBOS)

    def test_validation(self):
        with pytest.raises(ValueError):
            enumerate_fault_plans(0, shards=3, fault_horizon_s=0.5)
        with pytest.raises(ValueError):
            enumerate_fault_plans(4, shards=0, fault_horizon_s=0.5)
        with pytest.raises(ValueError):
            enumerate_fault_plans(4, shards=3, fault_horizon_s=0.0)


class TestExploreDes:
    def test_zero_violations(self):
        report = explore_des(16, shards=3, seed=0)
        assert isinstance(report, ExplorationReport)
        assert report.num_schedules == 16
        assert report.ok, report.violations()
        assert all(
            isinstance(schedule, ScheduleResult)
            for schedule in report.schedules
        )
        # The enabled schedules really did inject faults.
        assert sum(s.faults_injected for s in report.schedules) > 0

    def test_summary_mentions_outcome(self):
        report = explore_des(8, shards=3, seed=1)
        text = "\n".join(report.summary())
        assert "8 schedules" in text
        assert "all recovery invariants held" in text


class TestExploreNative:
    def test_zero_violations(self):
        report = explore_native(8, shards=3, seed=0)
        assert report.num_schedules == 8
        assert report.ok, report.violations()
        assert sum(s.faults_injected for s in report.schedules) > 0


class TestExploreFrontend:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            explore(4, backends=("quantum",))

    def test_main_exit_code(self, capsys):
        assert main(["--schedules", "8", "--backend", "des"]) == 0
        assert "recovery invariants" in capsys.readouterr().out
