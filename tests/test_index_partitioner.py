"""Unit + property tests for intra-server partitioning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.partitioner import (
    PartitionStrategy,
    assign_documents,
    partition_collection,
    partition_index,
)


class TestAssignDocuments:
    @pytest.mark.parametrize("strategy", list(PartitionStrategy))
    def test_partition_is_exact_cover(self, strategy):
        assignments = assign_documents(100, 4, strategy)
        combined = sorted(doc_id for shard in assignments for doc_id in shard)
        assert combined == list(range(100))

    def test_round_robin_pattern(self):
        assignments = assign_documents(7, 3, PartitionStrategy.ROUND_ROBIN)
        assert assignments[0] == [0, 3, 6]
        assert assignments[1] == [1, 4]
        assert assignments[2] == [2, 5]

    def test_contiguous_pattern(self):
        assignments = assign_documents(10, 2, PartitionStrategy.CONTIGUOUS)
        assert assignments[0] == [0, 1, 2, 3, 4]
        assert assignments[1] == [5, 6, 7, 8, 9]

    def test_hash_is_deterministic(self):
        first = assign_documents(50, 4, PartitionStrategy.HASH)
        second = assign_documents(50, 4, PartitionStrategy.HASH)
        assert first == second

    @pytest.mark.parametrize("strategy", list(PartitionStrategy))
    def test_balance(self, strategy):
        assignments = assign_documents(1_000, 8, strategy)
        sizes = [len(shard) for shard in assignments]
        assert max(sizes) - min(sizes) <= (
            1 if strategy is not PartitionStrategy.HASH else 150
        )

    def test_single_partition_is_identity(self):
        assignments = assign_documents(10, 1)
        assert assignments == [list(range(10))]

    def test_more_partitions_than_documents(self):
        assignments = assign_documents(2, 5)
        sizes = [len(shard) for shard in assignments]
        assert sum(sizes) == 2

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            assign_documents(10, 0)

    @settings(max_examples=30)
    @given(
        num_documents=st.integers(min_value=0, max_value=300),
        num_partitions=st.integers(min_value=1, max_value=16),
        strategy=st.sampled_from(list(PartitionStrategy)),
    )
    def test_cover_property(self, num_documents, num_partitions, strategy):
        assignments = assign_documents(num_documents, num_partitions, strategy)
        assert len(assignments) == num_partitions
        combined = sorted(d for shard in assignments for d in shard)
        assert combined == list(range(num_documents))
        for shard in assignments:
            assert shard == sorted(shard)


class TestPartitionCollection:
    def test_local_ids_dense(self, small_collection):
        shards = partition_collection(small_collection, 4)
        for shard in shards:
            assert [doc.doc_id for doc in shard] == list(range(len(shard)))

    def test_documents_preserved(self, small_collection):
        shards = partition_collection(small_collection, 3)
        shard_urls = sorted(doc.url for shard in shards for doc in shard)
        original_urls = sorted(doc.url for doc in small_collection)
        assert shard_urls == original_urls


class TestPartitionIndex:
    def test_shard_count_and_sizes(self, small_collection):
        partitioned = partition_index(small_collection, 4)
        assert partitioned.num_partitions == 4
        assert partitioned.num_documents == len(small_collection)

    def test_global_id_mapping_preserves_documents(self, small_collection):
        # The shard's local document `l` must be the same page as the
        # global document its id map points to.
        partitioned = partition_index(small_collection, 3)
        shard_collections = partition_collection(small_collection, 3)
        for shard, shard_collection in zip(partitioned, shard_collections):
            for local_id in range(shard.num_documents):
                global_id = shard.to_global(local_id)
                assert (
                    small_collection[global_id].url
                    == shard_collection[local_id].url
                )

    def test_global_ids_cover_collection(self, small_collection):
        partitioned = partition_index(small_collection, 3)
        all_globals = sorted(
            int(g) for shard in partitioned for g in shard.global_doc_ids
        )
        assert all_globals == list(range(len(small_collection)))

    def test_shard_postings_sum_to_full_index(self, small_collection, small_index):
        partitioned = partition_index(small_collection, 4)
        total = sum(shard.index.total_postings for shard in partitioned)
        assert total == small_index.total_postings

    def test_document_frequency_conserved(self, small_collection, small_index):
        partitioned = partition_index(small_collection, 5)
        for term in list(small_index.dictionary)[:50]:
            shard_df = sum(
                shard.index.document_frequency(term) for shard in partitioned
            )
            assert shard_df == small_index.document_frequency(term)

    def test_single_partition_equals_full_index(self, small_collection, small_index):
        partitioned = partition_index(small_collection, 1)
        shard_index = partitioned[0].index
        assert shard_index.num_documents == small_index.num_documents
        assert shard_index.total_postings == small_index.total_postings
        assert list(partitioned[0].global_doc_ids) == list(
            range(len(small_collection))
        )
