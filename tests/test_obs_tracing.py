"""Tests for the span tracer: nesting, parenting, no-op mode, schema."""

import json
import threading

import pytest

from repro.obs.export import (
    TRACE_SCHEMA_FIELDS,
    export_trace_jsonl,
    format_span_tree,
    span_to_dict,
    trace_to_dicts,
)
from repro.obs.tracing import (
    NULL_TRACER,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    trace_span,
)


class FakeClock:
    """Deterministic, strictly-advancing clock for byte-stable traces."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpanNesting:
    def test_root_span_collected(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root"):
            pass
        assert len(tracer.traces) == 1
        assert tracer.traces[0].name == "root"
        assert tracer.traces[0].parent_id is None

    def test_children_nest_under_active_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
        assert root.children == [child]
        assert child.children == [grandchild]
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        # Only the root lands in the trace buffer.
        assert tracer.traces == [root]

    def test_trace_id_shared_within_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                pass
        with tracer.span("c") as c:
            pass
        assert a.trace_id == b.trace_id
        assert c.trace_id == a.trace_id + 1

    def test_span_ids_unique(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("x"):
                pass
            with tracer.span("y"):
                pass
        ids = [span.span_id for span in root.iter_tree()]
        assert len(ids) == len(set(ids))

    def test_siblings_ordered(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            for name in ("first", "second", "third"):
                with tracer.span(name):
                    pass
        assert [child.name for child in root.children] == [
            "first", "second", "third"
        ]

    def test_timestamps_monotonic_and_contained(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert root.start < child.start < child.end < root.end
        assert root.duration > child.duration

    def test_current_span_tracks_stack(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current_span is None
        with tracer.span("outer") as outer:
            assert tracer.current_span is outer
            with tracer.span("inner") as inner:
                assert tracer.current_span is inner
            assert tracer.current_span is outer
        assert tracer.current_span is None

    def test_attributes_stored_and_settable(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root", shard=3) as root:
            root.set("postings_scanned", 128)
        assert root.attributes == {"shard": 3, "postings_scanned": 128}

    def test_find_child_by_name(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("root") as root:
            with tracer.span("parse"):
                pass
            with tracer.span("merge"):
                pass
        assert root.find("merge").name == "merge"
        assert root.find("absent") is None


class TestRecordSpan:
    def test_explicit_timestamps_kept_verbatim(self):
        tracer = Tracer()
        span = tracer.record_span("shard", start=1.25, end=4.5, parent=None)
        assert span.start == 1.25
        assert span.end == 4.5
        assert span.duration == pytest.approx(3.25)

    def test_explicit_parent(self):
        tracer = Tracer()
        root = tracer.record_span("root", start=0.0, end=10.0, parent=None)
        child = tracer.record_span("c", start=1.0, end=2.0, parent=root)
        assert root.children == [child]
        assert child.trace_id == root.trace_id
        assert tracer.traces == [root]

    def test_inherits_active_live_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("live") as live:
            recorded = tracer.record_span("post-hoc", start=0.0, end=1.0)
        assert live.children == [recorded]

    def test_no_active_span_makes_root(self):
        tracer = Tracer()
        span = tracer.record_span("standalone", start=0.0, end=1.0)
        assert span.parent_id is None
        assert tracer.traces == [span]

    def test_worker_thread_records_under_explicit_parent(self):
        tracer = Tracer()
        root = tracer.record_span("root", start=0.0, end=10.0, parent=None)

        def worker():
            tracer.record_span("shard", start=1.0, end=2.0, parent=root)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(root.children) == 8
        assert len({span.span_id for span in root.iter_tree()}) == 9

    def test_max_traces_bounds_buffer(self):
        tracer = Tracer(max_traces=3)
        for index in range(5):
            tracer.record_span(f"t{index}", start=0.0, end=1.0, parent=None)
        assert [span.name for span in tracer.traces] == ["t2", "t3", "t4"]


class TestDisabledTracer:
    def test_span_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything", attr=1) as span:
            span.set("key", "value")  # must not raise
        assert tracer.traces == []

    def test_record_span_returns_none(self):
        tracer = Tracer(enabled=False)
        assert tracer.record_span("x", start=0.0, end=1.0) is None
        assert tracer.traces == []

    def test_null_tracer_shared_and_disabled(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("x"):
            pass
        assert NULL_TRACER.traces == []

    def test_disabled_span_object_is_shared(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")


class TestGlobalTracer:
    def test_global_default_disabled(self):
        assert get_tracer().enabled is False

    def test_set_and_restore(self):
        tracer = Tracer()
        try:
            assert set_tracer(tracer) is tracer
            with trace_span("via-global"):
                pass
            assert tracer.traces[0].name == "via-global"
        finally:
            set_tracer(None)
        assert get_tracer().enabled is False


def build_golden_trace() -> Span:
    """A fixed two-level trace with deterministic ids and timestamps."""
    tracer = Tracer()
    root = tracer.record_span(
        "isn.execute", start=0.0, end=10.0, parent=None, query="golden", k=10
    )
    tracer.record_span("parse", start=0.0, end=1.0, parent=root, num_terms=1)
    fanout = tracer.record_span("fanout", start=1.0, end=9.0, parent=root)
    tracer.record_span(
        "shard", start=1.0, end=8.0, parent=fanout,
        shard=0, postings_scanned=42, num_hits=10,
    )
    tracer.record_span("merge", start=9.0, end=10.0, parent=root, num_shards=1)
    return root


GOLDEN_JSONL = "\n".join(
    [
        '{"trace_id": 0, "span_id": 0, "parent_id": null, "name": '
        '"isn.execute", "start": 0.0, "end": 10.0, "duration_seconds": 10.0, '
        '"attributes": {"query": "golden", "k": 10}}',
        '{"trace_id": 0, "span_id": 1, "parent_id": 0, "name": "parse", '
        '"start": 0.0, "end": 1.0, "duration_seconds": 1.0, '
        '"attributes": {"num_terms": 1}}',
        '{"trace_id": 0, "span_id": 2, "parent_id": 0, "name": "fanout", '
        '"start": 1.0, "end": 9.0, "duration_seconds": 8.0, "attributes": {}}',
        '{"trace_id": 0, "span_id": 3, "parent_id": 2, "name": "shard", '
        '"start": 1.0, "end": 8.0, "duration_seconds": 7.0, '
        '"attributes": {"shard": 0, "postings_scanned": 42, "num_hits": 10}}',
        '{"trace_id": 0, "span_id": 4, "parent_id": 0, "name": "merge", '
        '"start": 9.0, "end": 10.0, "duration_seconds": 1.0, '
        '"attributes": {"num_shards": 1}}',
    ]
) + "\n"


class TestExportSchema:
    def test_span_dict_fields_exact(self):
        root = build_golden_trace()
        for record in trace_to_dicts(root):
            assert tuple(record.keys()) == TRACE_SCHEMA_FIELDS

    def test_golden_jsonl_bytes(self, tmp_path):
        """The exported JSON-lines must match the golden schema verbatim."""
        path = tmp_path / "trace.jsonl"
        assert export_trace_jsonl([build_golden_trace()], path) == 5
        assert path.read_text() == GOLDEN_JSONL

    def test_jsonl_parses_and_links(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        export_trace_jsonl([build_golden_trace()], path)
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        by_id = {record["span_id"]: record for record in records}
        for record in records:
            parent_id = record["parent_id"]
            if parent_id is not None:
                parent = by_id[parent_id]
                assert parent["start"] <= record["start"]
                assert record["end"] <= parent["end"]
                assert parent["trace_id"] == record["trace_id"]

    def test_span_to_dict_copies_attributes(self):
        root = build_golden_trace()
        exported = span_to_dict(root)
        exported["attributes"]["mutated"] = True
        assert "mutated" not in root.attributes


class TestFormatSpanTree:
    def test_tree_rendering(self):
        text = format_span_tree(build_golden_trace())
        lines = text.splitlines()
        assert lines[0].startswith("isn.execute")
        assert any("├─ parse" in line for line in lines)
        assert any("│  └─ shard" in line for line in lines)
        assert any("└─ merge" in line for line in lines)
        # Durations render in milliseconds.
        assert "10000.000 ms" in lines[0]

    def test_attributes_inline(self):
        text = format_span_tree(build_golden_trace())
        assert "postings_scanned=42" in text
