"""Unit tests for the suffix stemmer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.text.stemmer import SuffixStemmer


class TestSuffixStemmer:
    def setup_method(self):
        self.stemmer = SuffixStemmer()

    def test_plural_s(self):
        assert self.stemmer.stem("servers") == "server"

    def test_ies_to_y(self):
        assert self.stemmer.stem("queries") == "query"

    def test_ing(self):
        assert self.stemmer.stem("searching") == "search"

    def test_ed(self):
        assert self.stemmer.stem("indexed") == "index"

    def test_ation(self):
        assert self.stemmer.stem("characterization") == "characterize"

    def test_short_words_untouched(self):
        assert self.stemmer.stem("as") == "as"
        assert self.stemmer.stem("is") == "is"

    def test_refuses_vowelless_stem(self):
        # "pss" would stem to "ps" which is too short; stays intact.
        assert self.stemmer.stem("pss") == "pss"

    def test_stem_without_vowel_rejected(self):
        # "bcds" -> "bcd" has no vowel, so the word is left alone.
        assert self.stemmer.stem("bcds") == "bcds"

    def test_no_suffix_match(self):
        assert self.stemmer.stem("foo") == "foo"
        assert self.stemmer.stem("quantum") == "quantum"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1, max_size=20))
    def test_stemming_is_idempotent_for_common_cases(self, word):
        # One pass then a second pass: the second pass may strip again
        # (light stemmers are not guaranteed idempotent in general), but
        # the result must always be a non-empty prefix-derived string.
        once = self.stemmer.stem(word)
        assert once
        assert len(once) <= len(word) + 2  # replacements may add chars

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=4, max_size=20))
    def test_stem_never_shorter_than_minimum(self, word):
        assert len(self.stemmer.stem(word)) >= self.stemmer.min_stem_length
