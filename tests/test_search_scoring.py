"""Unit + property tests for relevance scoring."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.search.scoring import BM25Scorer, TfIdfScorer


class TestBM25Scorer:
    def setup_method(self):
        self.scorer = BM25Scorer(num_documents=1_000, average_doc_length=100.0)

    def test_idf_decreases_with_document_frequency(self):
        assert self.scorer.idf(1) > self.scorer.idf(100) > self.scorer.idf(900)

    def test_idf_non_negative(self):
        # Lucene-style idf never goes negative, even for df close to N.
        assert self.scorer.idf(1_000) >= 0.0

    def test_score_increases_with_tf(self):
        idf = self.scorer.idf(10)
        assert self.scorer.score(2, 100, idf) > self.scorer.score(1, 100, idf)

    def test_tf_saturation(self):
        idf = self.scorer.idf(10)
        gain_low = self.scorer.score(2, 100, idf) - self.scorer.score(1, 100, idf)
        gain_high = self.scorer.score(20, 100, idf) - self.scorer.score(19, 100, idf)
        assert gain_high < gain_low

    def test_length_normalization_penalizes_long_docs(self):
        idf = self.scorer.idf(10)
        assert self.scorer.score(3, 50, idf) > self.scorer.score(3, 500, idf)

    def test_zero_tf_scores_zero(self):
        assert self.scorer.score(0, 100, self.scorer.idf(10)) == 0.0

    def test_max_score_is_upper_bound(self):
        idf = self.scorer.idf(5)
        bound = self.scorer.max_score(idf)
        for tf in (1, 5, 50, 5_000):
            for length in (1, 10, 1_000):
                assert self.scorer.score(tf, length, idf) <= bound + 1e-12

    def test_b_zero_ignores_length(self):
        scorer = BM25Scorer(num_documents=100, average_doc_length=50.0, b=0.0)
        idf = scorer.idf(10)
        assert scorer.score(3, 10, idf) == pytest.approx(scorer.score(3, 10_000, idf))

    def test_empty_collection_average(self):
        scorer = BM25Scorer(num_documents=0, average_doc_length=0.0)
        # Must not divide by zero.
        assert scorer.score(1, 0, 1.0) > 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BM25Scorer(num_documents=-1, average_doc_length=1.0)
        with pytest.raises(ValueError):
            BM25Scorer(num_documents=1, average_doc_length=1.0, b=1.5)
        with pytest.raises(ValueError):
            BM25Scorer(num_documents=1, average_doc_length=1.0, k1=-0.1)

    @given(
        tf=st.integers(min_value=1, max_value=10_000),
        length=st.integers(min_value=1, max_value=100_000),
        df=st.integers(min_value=1, max_value=999),
    )
    def test_scores_always_positive_and_bounded(self, tf, length, df):
        scorer = BM25Scorer(num_documents=1_000, average_doc_length=120.0)
        idf = scorer.idf(df)
        score = scorer.score(tf, length, idf)
        assert 0.0 < score <= scorer.max_score(idf) + 1e-12


class TestTfIdfScorer:
    def setup_method(self):
        self.scorer = TfIdfScorer(num_documents=1_000)

    def test_idf_positive(self):
        assert self.scorer.idf(1) > 0
        assert self.scorer.idf(999) > 0

    def test_log_tf(self):
        idf = self.scorer.idf(10)
        assert self.scorer.score(1, 0, idf) == pytest.approx(idf)
        assert self.scorer.score(10, 0, idf) > self.scorer.score(1, 0, idf)

    def test_length_independent(self):
        idf = self.scorer.idf(10)
        assert self.scorer.score(3, 5, idf) == self.scorer.score(3, 5_000, idf)

    def test_zero_tf(self):
        assert self.scorer.score(0, 10, 1.0) == 0.0
