"""Integration tests: the resilience layer inside both execution paths.

Covers the three contracts the overload-control PR makes:

- faults/breakers/admission actually change behaviour when enabled
  (native ISN and DES broker alike);
- everything left at None is bit-identical to the plain paths;
- shed queries are typed outcomes that drivers and results account for.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import (
    BreakerConfig,
    ClusterModel,
    FaultPlan,
    HedgingPolicy,
    MetricsRegistry,
    OverloadPolicy,
    ShardCrash,
)
from repro.corpus.generator import CorpusConfig
from repro.corpus.querylog import QueryLogConfig
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.driver import ClosedLoopDriver
from repro.engine.service import SearchService, SearchServiceConfig
from repro.resilience.admission import SHED_CAPACITY
from repro.resilience.breaker import BreakerState
from repro.workload.arrivals import ClosedLoopSpec

TINY_CORPUS = CorpusConfig(
    num_documents=120,
    vocabulary=VocabularyConfig(size=900),
    mean_length=40,
    seed=11,
)
TINY_LOG = QueryLogConfig(num_unique_queries=30, seed=5)


def _tiny_service(**overrides) -> SearchService:
    config = SearchServiceConfig(
        corpus=TINY_CORPUS,
        query_log=TINY_LOG,
        num_partitions=2,
        **overrides,
    )
    return SearchService(config)


class TestNativeChaos:
    def test_breaker_fences_crashed_shard(self, chaos_service):
        queries = [q.text for q in list(chaos_service.query_log)[:6]]
        responses = [chaos_service.search(text) for text in queries]
        # The crashed shard never answers: every response is partial.
        assert all(r.coverage == 0.5 for r in responses)
        assert not any(getattr(r, "shed", False) for r in responses)
        # Two failures (attempt + retry) trip the breaker on the first
        # query; from then on the shard is skipped without being tried.
        board = chaos_service.isn.breaker_board
        assert board.breaker(1).trips == 1
        assert board.breaker(1).state(float("inf")) in (
            BreakerState.OPEN,
            BreakerState.HALF_OPEN,
        )
        assert board.breaker(0).state(0.0) is BreakerState.CLOSED
        assert all(r.breaker_skips == 1 for r in responses[1:])
        injector = chaos_service.isn.fault_injector
        assert injector.injected_crashes >= 2

    def test_results_on_surviving_shard_still_ranked(self, chaos_service):
        response = chaos_service.search(chaos_service.query_log[0].text)
        assert response.hits
        # Shard 1 is fenced; every hit must come from partition 0.
        survivors = set(
            int(doc_id)
            for doc_id in chaos_service.partitioned[0].global_doc_ids
        )
        for hit in response.hits:
            assert hit.doc_id in survivors

    def test_overload_sheds_deterministically(self):
        with _tiny_service(
            overload=OverloadPolicy(max_concurrency=1)
        ) as service:
            gate = service.isn.admission_gate
            assert gate.acquire() is None  # occupy the only slot
            response = service.search(service.query_log[0].text)
            assert response.shed is True
            assert response.reason == SHED_CAPACITY
            assert response.coverage == 0.0
            assert response.doc_ids() == []
            gate.release(0.001)
            served = service.search(service.query_log[0].text)
            assert getattr(served, "shed", False) is False
            assert served.coverage == 1.0

    def test_closed_loop_driver_accounts_shed_and_served(self):
        with _tiny_service(
            overload=OverloadPolicy(max_concurrency=1)
        ) as service:
            driver = ClosedLoopDriver(
                service.isn,
                service.query_log,
                ClosedLoopSpec(num_clients=4, mean_think_time=0.0),
            )
            result = driver.run(num_queries=24)
        assert result.served_count + result.shed_count == 24
        assert 0.0 <= result.shed_fraction <= 1.0
        assert result.served_count > 0

    def test_noop_breakers_do_not_change_results(self):
        with _tiny_service() as plain, _tiny_service(
            breakers=BreakerConfig(failure_threshold=1_000_000)
        ) as guarded:
            for query in list(plain.query_log)[:5]:
                base = plain.search(query.text)
                other = guarded.search(query.text)
                assert base.doc_ids() == other.doc_ids()
                assert [h.score for h in base.hits] == [
                    h.score for h in other.hits
                ]
                assert other.breaker_skips == 0

    def test_shed_metrics_recorded(self):
        metrics = MetricsRegistry()
        config = SearchServiceConfig(
            corpus=TINY_CORPUS,
            query_log=TINY_LOG,
            num_partitions=2,
            overload=OverloadPolicy(max_concurrency=1),
        )
        with SearchService(config, metrics=metrics) as service:
            gate = service.isn.admission_gate
            gate.acquire()
            service.search(service.query_log[0].text)
            gate.release(0.001)
            service.search(service.query_log[0].text)
        snapshot = metrics.snapshot()
        assert snapshot["isn.shed"]["value"] == 1
        assert snapshot["isn.shed.capacity"]["value"] == 1
        assert snapshot["isn.served"]["value"] >= 1
        assert "isn.admission_queue_depth" in snapshot


CHAOS_CLUSTER = dict(
    num_servers=4,
    hedging=HedgingPolicy(deadline_s=0.05),
    breakers=BreakerConfig(failure_threshold=2, recovery_time_s=0.25),
)


class TestDesChaos:
    def test_flapping_shard_trips_breakers(self, flapping_plan):
        model = ClusterModel(faults=flapping_plan, **CHAOS_CLUSTER)
        result = model.run(rate_qps=400.0, num_queries=800, seed=3)
        assert result.shard_failures[1] > 0
        assert result.breaker_skips > 0
        assert result.mean_coverage() < 1.0
        assert result.shed_count == 0  # no admission control configured
        # The sick shard dominates the failure tally.
        assert result.shard_failures[1] == max(result.shard_failures)

    def test_chaos_run_is_deterministic(self, flapping_plan):
        model = ClusterModel(faults=flapping_plan, **CHAOS_CLUSTER)
        first = model.run(rate_qps=400.0, num_queries=500, seed=3)
        second = model.run(rate_qps=400.0, num_queries=500, seed=3)
        assert np.array_equal(first.latencies(), second.latencies())
        assert first.shard_failures == second.shard_failures
        assert [r.coverage for r in first.records] == [
            r.coverage for r in second.records
        ]

    def test_des_overload_sheds_typed_records(self):
        model = ClusterModel(
            num_servers=2,
            overload=OverloadPolicy(max_concurrency=4),
        )
        # ~5x the healthy capacity of two big-server shards.
        result = model.run(rate_qps=25_000.0, num_queries=600, seed=0)
        assert result.shed_count > 0
        assert result.shed_count + len(result.served_records()) == 600
        for record in result.records:
            if record.shed:
                assert record.coverage == 0.0
                assert record.shed_reason
                assert len(record.isn_completions) == 0
        assert result.goodput_qps() > 0.0
        summary = result.summary()
        assert summary.count == len(result.served_records())

    def test_all_shed_summary_is_nan(self):
        from repro.cluster.fanout import FanoutQueryRecord, FanoutResult

        records = [
            FanoutQueryRecord(
                query_id=i,
                client_send=float(i),
                client_receive=float(i),
                isn_completions=(),
                total_demand=0.0,
                shed=True,
                shed_reason="capacity",
                coverage=0.0,
            )
            for i in range(4)
        ]
        result = FanoutResult(records=records, horizon=4.0, num_servers=2)
        summary = result.summary()
        assert summary.count == 0
        assert np.isnan(summary.p99)

    def test_empty_fault_plan_is_bit_identical_to_plain(self):
        plain = ClusterModel(num_servers=4)
        shimmed = ClusterModel(num_servers=4, faults=FaultPlan())
        base = plain.run(rate_qps=200.0, num_queries=600, seed=0)
        other = shimmed.run(rate_qps=200.0, num_queries=600, seed=0)
        assert np.array_equal(base.latencies(), other.latencies())

    def test_noop_breakers_bit_identical_on_hedged_path(self):
        hedging = HedgingPolicy(hedge_delay_s=0.01, deadline_s=0.2)
        plain = ClusterModel(
            num_servers=4, replicas_per_shard=2, hedging=hedging
        )
        guarded = ClusterModel(
            num_servers=4,
            replicas_per_shard=2,
            hedging=hedging,
            breakers=BreakerConfig(failure_threshold=1_000_000),
        )
        base = plain.run(rate_qps=200.0, num_queries=600, seed=0)
        other = guarded.run(rate_qps=200.0, num_queries=600, seed=0)
        assert np.array_equal(base.latencies(), other.latencies())
        assert other.breaker_skips == 0

    def test_crash_rejections_count_failures_without_breakers(self):
        plan = FaultPlan(
            crashes=(ShardCrash(shard=0, start_s=0.0, duration_s=10.0),)
        )
        model = ClusterModel(num_servers=2, faults=plan)
        result = model.run(rate_qps=200.0, num_queries=400, seed=1)
        assert result.shard_failures[0] > 0
        assert result.shard_failures[1] == 0
        assert result.failures == sum(result.shard_failures)
        assert result.mean_coverage() < 1.0

    def test_des_metrics_exported(self, flapping_plan):
        metrics = MetricsRegistry()
        model = ClusterModel(faults=flapping_plan, **CHAOS_CLUSTER)
        model.run(rate_qps=400.0, num_queries=400, seed=3, metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["fanout.queries"]["value"] == 400
        assert snapshot["fanout.served"]["value"] == 400
        assert snapshot["fanout.breaker_skips"]["value"] > 0
        assert snapshot["fanout.failures"]["value"] > 0
        assert any(
            name.startswith("fanout.breaker.") and name.endswith(".state")
            for name in snapshot
        )

    def test_des_admission_metrics_exported(self):
        metrics = MetricsRegistry()
        model = ClusterModel(
            num_servers=2, overload=OverloadPolicy(max_concurrency=4)
        )
        model.run(
            rate_qps=25_000.0, num_queries=400, seed=0, metrics=metrics
        )
        snapshot = metrics.snapshot()
        assert snapshot["fanout.shed"]["value"] > 0
        assert "fanout.admission_queue_depth" in snapshot
