"""Unit tests for arrival processes and service-demand models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workload.arrivals import (
    ClosedLoopSpec,
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
)
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import (
    EmpiricalDemand,
    IndexDerivedDemand,
    LognormalDemand,
)


class TestPoissonArrivals:
    def test_sorted_and_positive(self, rng):
        times = PoissonArrivals(rate=100.0).arrival_times(1_000, rng)
        assert np.all(times > 0)
        assert np.all(np.diff(times) >= 0)

    def test_rate_matches(self, rng):
        times = PoissonArrivals(rate=50.0).arrival_times(20_000, rng)
        assert len(times) / times[-1] == pytest.approx(50.0, rel=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(rate=0.0)

    def test_zero_queries(self, rng):
        assert PoissonArrivals(1.0).arrival_times(0, rng).size == 0


class TestDeterministicArrivals:
    def test_even_spacing(self, rng):
        times = DeterministicArrivals(rate=10.0).arrival_times(5, rng)
        assert np.allclose(np.diff(times), 0.1)

    def test_rng_unused(self, rng):
        first = DeterministicArrivals(10.0).arrival_times(5, rng)
        second = DeterministicArrivals(10.0).arrival_times(
            5, np.random.default_rng(999)
        )
        assert np.array_equal(first, second)


class TestMMPPArrivals:
    def test_sorted_times(self, rng):
        process = MMPPArrivals(base_rate=50.0, burst_rate=500.0)
        times = process.arrival_times(2_000, rng)
        assert times.size == 2_000
        assert np.all(np.diff(times) >= 0)

    def test_burstier_than_poisson(self, rng):
        """The MMPP's windowed arrival counts must be overdispersed
        relative to Poisson (variance/mean of counts > 1)."""
        process = MMPPArrivals(
            base_rate=20.0, burst_rate=400.0,
            mean_base_dwell=5.0, mean_burst_dwell=1.0,
        )
        times = process.arrival_times(10_000, rng)
        counts, _ = np.histogram(times, bins=np.arange(0, times[-1], 1.0))
        dispersion = counts.var() / counts.mean()
        assert dispersion > 2.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MMPPArrivals(base_rate=0, burst_rate=1)
        with pytest.raises(ValueError):
            MMPPArrivals(base_rate=1, burst_rate=1, mean_base_dwell=0)


class TestClosedLoopSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ClosedLoopSpec(num_clients=0)
        with pytest.raises(ValueError):
            ClosedLoopSpec(num_clients=1, mean_think_time=-1.0)


class TestEmpiricalDemand:
    def test_resamples_from_data(self, rng):
        model = EmpiricalDemand(samples=np.array([0.1, 0.2, 0.3]))
        draws = model.demands(100, rng)
        assert set(np.round(draws, 10)) <= {0.1, 0.2, 0.3}

    def test_mean(self):
        model = EmpiricalDemand(samples=np.array([0.1, 0.3]))
        assert model.mean_demand() == pytest.approx(0.2)

    def test_invalid(self):
        with pytest.raises(ValueError):
            EmpiricalDemand(samples=np.array([]))
        with pytest.raises(ValueError):
            EmpiricalDemand(samples=np.array([-0.1]))


class TestLognormalDemand:
    def test_mean_matches(self, rng):
        model = LognormalDemand(mu=-3.0, sigma=0.5)
        draws = model.demands(50_000, rng)
        assert draws.mean() == pytest.approx(model.mean_demand(), rel=0.03)

    def test_from_mean_and_p99(self, rng):
        model = LognormalDemand.from_mean_and_p99(mean=0.01, p99=0.05)
        assert model.mean_demand() == pytest.approx(0.01, rel=1e-6)
        draws = model.demands(200_000, rng)
        assert np.percentile(draws, 99) == pytest.approx(0.05, rel=0.05)

    def test_from_mean_and_p99_invalid(self):
        with pytest.raises(ValueError):
            LognormalDemand.from_mean_and_p99(mean=0.05, p99=0.01)
        with pytest.raises(ValueError):
            LognormalDemand.from_mean_and_p99(mean=0.01, p99=1e6)

    @given(
        mean=st.floats(min_value=1e-5, max_value=1.0),
        ratio=st.floats(min_value=1.001, max_value=14.0),
    )
    def test_from_mean_and_p99_round_trips(self, mean, ratio):
        """Property: the quadratic's smaller root reproduces both the
        analytic mean and the analytic p99 across the whole feasible
        (ratio < e^{z99²/2} ≈ 14.9) parameter space — the regression
        guard for the silently-wrong-root bug class."""
        p99 = mean * ratio
        model = LognormalDemand.from_mean_and_p99(mean=mean, p99=p99)
        assert model.mean_demand() == pytest.approx(mean, rel=1e-9)
        assert model.p99() == pytest.approx(p99, rel=1e-9)
        # The smaller root is the non-degenerate one: sigma below z99,
        # so the p99 sits above the median (a real tail, not a spike
        # distribution whose 99th percentile undercuts its mean).
        assert 0.0 < model.sigma < 2.3264
        assert p99 > float(np.exp(model.mu))


class TestIndexDerivedDemand:
    def test_demand_scales_with_volume(self, small_index, small_query_log, rng):
        model = IndexDerivedDemand(
            index=small_index,
            query_log=small_query_log,
            base_seconds=0.001,
            per_posting_seconds=1e-5,
        )
        draws = model.demands(200, rng)
        assert np.all(draws >= 0.001)
        assert draws.std() > 0  # queries genuinely differ in cost

    def test_mean_demand_popularity_weighted(self, small_index, small_query_log):
        model = IndexDerivedDemand(
            index=small_index,
            query_log=small_query_log,
            base_seconds=0.0,
            per_posting_seconds=1.0,
        )
        # mean demand equals the popularity-weighted mean matched volume.
        assert model.mean_demand() > 0

    def test_demand_of_specific_query(self, small_index, small_query_log):
        model = IndexDerivedDemand(
            index=small_index,
            query_log=small_query_log,
            base_seconds=0.5,
            per_posting_seconds=0.0,
        )
        assert model.demand_of(small_query_log[0]) == pytest.approx(0.5)

    def test_invalid_coefficients(self, small_index, small_query_log):
        with pytest.raises(ValueError):
            IndexDerivedDemand(
                index=small_index,
                query_log=small_query_log,
                base_seconds=-1.0,
                per_posting_seconds=0.0,
            )


class TestWorkloadScenario:
    def test_realize_shapes(self, rng):
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(100.0),
            demands=LognormalDemand(-4.0, 0.5),
            num_queries=500,
        )
        times, demands = scenario.realize(
            np.random.default_rng(0), np.random.default_rng(1)
        )
        assert times.size == demands.size == 500

    def test_offered_load(self):
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(100.0),
            demands=EmpiricalDemand(np.array([0.01])),
            num_queries=10,
        )
        assert scenario.offered_load() == pytest.approx(1.0)

    def test_invalid_num_queries(self):
        with pytest.raises(ValueError):
            WorkloadScenario(
                arrivals=PoissonArrivals(1.0),
                demands=EmpiricalDemand(np.array([0.01])),
                num_queries=0,
            )
