"""Unit tests for query parsing."""

import pytest

from repro.search.query import ParsedQuery, QueryMode, QueryParser
from repro.text.analyzer import Analyzer, AnalyzerConfig


class TestQueryParser:
    def setup_method(self):
        self.parser = QueryParser()
        self.plain_parser = QueryParser(
            Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
        )

    def test_basic_parse(self):
        query = self.plain_parser.parse("web search engine")
        assert query.terms == ("web", "search", "engine")
        assert query.mode is QueryMode.OR
        assert query.k == 10

    def test_deduplication_keeps_order(self):
        query = self.plain_parser.parse("cat dog cat bird dog")
        assert query.terms == ("cat", "dog", "bird")

    def test_analyzer_normalization(self):
        query = self.parser.parse("The SERVERS")
        assert query.terms == ("server",)

    def test_all_stopwords_gives_empty_query(self):
        query = self.parser.parse("the and of")
        assert query.is_empty

    def test_stemming_merges_variants(self):
        query = self.parser.parse("searching searched")
        assert query.terms == ("search",)

    def test_mode_and_k_propagate(self):
        query = self.plain_parser.parse("a b", mode=QueryMode.AND, k=5)
        assert query.mode is QueryMode.AND
        assert query.k == 5

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            ParsedQuery(terms=("x",), k=0)
