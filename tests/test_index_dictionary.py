"""Unit tests for the term dictionary."""

import pytest

from repro.index.dictionary import TermDictionary


class TestTermDictionary:
    def test_add_and_lookup(self):
        dictionary = TermDictionary()
        info = dictionary.add("search", document_frequency=10, collection_frequency=25)
        assert info.term_id == 0
        assert dictionary.lookup("search") == info
        assert "search" in dictionary

    def test_dense_term_ids(self):
        dictionary = TermDictionary()
        for index, term in enumerate(["a1", "b2", "c3"]):
            info = dictionary.add(term, 1, 1)
            assert info.term_id == index
        assert len(dictionary) == 3

    def test_term_for_id(self):
        dictionary = TermDictionary()
        dictionary.add("web", 2, 4)
        assert dictionary.term_for_id(0) == "web"

    def test_duplicate_rejected(self):
        dictionary = TermDictionary()
        dictionary.add("dup", 1, 1)
        with pytest.raises(ValueError):
            dictionary.add("dup", 1, 1)

    def test_unknown_lookup(self):
        assert TermDictionary().lookup("missing") is None

    def test_invalid_frequencies(self):
        dictionary = TermDictionary()
        with pytest.raises(ValueError):
            dictionary.add("bad", document_frequency=0, collection_frequency=0)
        with pytest.raises(ValueError):
            dictionary.add("bad", document_frequency=5, collection_frequency=3)

    def test_iteration_in_id_order(self):
        dictionary = TermDictionary()
        dictionary.add("zz", 1, 1)
        dictionary.add("aa", 1, 1)
        assert list(dictionary) == ["zz", "aa"]
        assert dictionary.terms() == ["zz", "aa"]
