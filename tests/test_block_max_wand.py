"""Block-Max WAND: block metadata, vectorized scoring, and equivalence.

The load-bearing property for the fig25 ablation is that pruning is an
*optimization*, not an approximation: BLOCK_MAX_WAND, WAND, and
exhaustive DAAT must return bit-identical top-k results (ids AND
scores) on every corpus.  These tests assert that over randomized
corpora, block sizes, and k, including global-statistics scoring.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.documents import Document, DocumentCollection
from repro.index.blockmax import DEFAULT_BLOCK_SIZE, BlockMetadata
from repro.index.builder import IndexBuilder
from repro.search.block_max_wand import score_block_max_wand
from repro.search.daat import score_daat
from repro.search.query import ParsedQuery
from repro.search.scoring import BM25Scorer, global_bm25_scorer
from repro.search.strategy import TraversalStats
from repro.search.wand import score_wand
from repro.text.analyzer import Analyzer, AnalyzerConfig

PLAIN = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))

words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)
documents_strategy = st.lists(
    st.lists(words, min_size=1, max_size=12).map(" ".join),
    min_size=1,
    max_size=25,
)
query_strategy = st.lists(words, min_size=1, max_size=4, unique=True)
block_size_strategy = st.sampled_from([1, 2, 3, 7, 128])
k_strategy = st.sampled_from([1, 3, 10, 100])


def build_index(texts, block_size=DEFAULT_BLOCK_SIZE):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return IndexBuilder(PLAIN, block_size=block_size).build(collection)


def as_pairs(hits):
    return [(h.doc_id, h.score) for h in hits]


class TestBlockMetadata:
    def test_rejects_nonpositive_block_size(self):
        index = build_index(["alpha beta"])
        postings = index.postings_for("alpha")
        with pytest.raises(ValueError, match="block_size"):
            BlockMetadata.from_postings(
                postings, index.doc_lengths, block_size=0
            )

    def test_empty_postings(self):
        from types import SimpleNamespace

        empty = SimpleNamespace(
            doc_ids=np.array([], dtype=np.int64),
            frequencies=np.array([], dtype=np.int64),
        )
        blocks = BlockMetadata.from_postings(
            empty, np.array([], dtype=np.int64), block_size=4
        )
        assert len(blocks.last_doc_ids) == 0

    def test_block_partition_is_exact(self):
        texts = [f"alpha {'beta ' * (i % 5)}" for i in range(37)]
        index = build_index(texts, block_size=4)
        postings = index.postings_for("alpha")
        blocks = index.block_metadata_for("alpha")
        num_blocks = -(-len(postings.doc_ids) // 4)
        assert len(blocks.last_doc_ids) == num_blocks
        # Last id of every block is the true boundary posting.
        for block in range(num_blocks):
            end = min((block + 1) * 4, len(postings.doc_ids))
            assert blocks.last_doc_ids[block] == postings.doc_ids[end - 1]
            chunk = postings.frequencies[block * 4 : end]
            assert blocks.max_frequencies[block] == chunk.max()
            chunk_ids = postings.doc_ids[block * 4 : end]
            assert (
                blocks.min_doc_lengths[block]
                == index.doc_lengths[chunk_ids].min()
            )

    def test_max_scores_bound_every_posting(self):
        texts = [f"{'alpha ' * (1 + i % 7)} beta" for i in range(50)]
        index = build_index(texts, block_size=3)
        scorer = BM25Scorer(
            num_documents=index.num_documents,
            average_doc_length=index.average_doc_length,
        )
        postings = index.postings_for("alpha")
        info = index.dictionary.lookup("alpha")
        idf = scorer.idf(info.document_frequency)
        bounds = index.block_metadata_for("alpha").max_scores(scorer, idf)
        for position, doc_id in enumerate(postings.doc_ids):
            block = position // 3
            actual = scorer.score(
                int(postings.frequencies[position]),
                int(index.doc_lengths[doc_id]),
                idf,
            )
            assert actual <= bounds[block] + 1e-12


class TestScoreBlockBitIdentity:
    def test_vectorized_matches_scalar_exactly(self):
        scorer = BM25Scorer(num_documents=1000, average_doc_length=57.3)
        rng = np.random.default_rng(7)
        frequencies = rng.integers(1, 40, size=256)
        doc_lengths = rng.integers(1, 300, size=256)
        idf = scorer.idf(123)
        vectorized = scorer.score_block(frequencies, doc_lengths, idf)
        for tf, dl, v in zip(frequencies, doc_lengths, vectorized):
            assert float(v) == scorer.score(int(tf), int(dl), idf)


class TestTraversalEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(documents_strategy, query_strategy, block_size_strategy, k_strategy)
    def test_bmw_wand_daat_bit_identical(self, texts, terms, block_size, k):
        index = build_index(texts, block_size=block_size)
        query = ParsedQuery(terms=tuple(terms), k=k)
        daat = score_daat(index, query)
        wand = score_wand(index, query)
        bmw = score_block_max_wand(index, query)
        assert as_pairs(bmw) == as_pairs(daat)
        assert as_pairs(wand) == as_pairs(daat)

    @settings(max_examples=25, deadline=None)
    @given(documents_strategy, query_strategy, block_size_strategy)
    def test_bmw_bit_identical_with_global_idf(self, texts, terms, block_size):
        index = build_index(texts, block_size=block_size)
        # A term_idf override table (as distributed global-statistics
        # scoring installs) must flow through block bounds identically.
        scorer = global_bm25_scorer(
            num_documents=index.num_documents * 3,
            average_doc_length=index.average_doc_length,
            term_document_frequencies={
                term: min(index.num_documents * 2, 1 + 2 * i)
                for i, term in enumerate(index.dictionary.terms())
            },
        )
        query = ParsedQuery(terms=tuple(terms), k=5)
        daat = score_daat(index, query, scorer)
        bmw = score_block_max_wand(index, query, scorer)
        assert as_pairs(bmw) == as_pairs(daat)

    @settings(max_examples=25, deadline=None)
    @given(documents_strategy, query_strategy, block_size_strategy)
    def test_bmw_never_scores_more_than_wand(self, texts, terms, block_size):
        index = build_index(texts, block_size=block_size)
        query = ParsedQuery(terms=tuple(terms), k=3)
        wand_stats = TraversalStats()
        bmw_stats = TraversalStats()
        score_wand(index, query, stats=wand_stats)
        score_block_max_wand(index, query, stats=bmw_stats)
        assert bmw_stats.docs_scored <= wand_stats.docs_scored

    def test_bmw_skips_blocks_on_skewed_corpus(self):
        # Zipf-ish skew: a handful of short high-tf documents up front
        # push the heap threshold above the (achievable) block bound of
        # every later all-filler block, so BMW jumps them whole.  WAND
        # cannot: the global bound idf·(k1+1) stays above the threshold.
        texts = ["alpha alpha alpha alpha" for _ in range(10)]
        texts += ["alpha filler filler filler filler filler" for _ in range(390)]
        index = build_index(texts, block_size=16)
        query = ParsedQuery(terms=("alpha", "beta"), k=5)
        daat_stats = TraversalStats()
        bmw_stats = TraversalStats()
        daat = score_daat(index, query, stats=daat_stats)
        bmw = score_block_max_wand(index, query, stats=bmw_stats)
        assert as_pairs(bmw) == as_pairs(daat)
        assert bmw_stats.block_skips > 0
        assert bmw_stats.docs_scored < daat_stats.docs_scored

    def test_bmw_fills_metrics_counters(self, small_index):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        query = ParsedQuery(terms=("the", "of"), k=10)
        score_block_max_wand(small_index, query, metrics=registry)
        assert registry.counter("wand.docs_scored").value >= 0
        assert registry.counter("wand.block_skips").value >= 0
