"""Tests for query-log analysis utilities."""

import numpy as np
import pytest

from repro.corpus.loganalysis import (
    estimate_popularity_exponent,
    profile_query_log,
    query_volume_distribution,
    traffic_concentration,
)


class TestEstimatePopularityExponent:
    def test_recovers_generator_exponent(self, small_query_log):
        rng = np.random.default_rng(0)
        stream = small_query_log.sample_stream(60_000, rng)
        exponent, r_squared = estimate_popularity_exponent(
            [q.query_id for q in stream]
        )
        assert exponent == pytest.approx(
            small_query_log.popularity_exponent, abs=0.2
        )
        assert r_squared > 0.9

    def test_uniform_stream_gives_near_zero(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 50, size=20_000)
        exponent, _ = estimate_popularity_exponent(ids)
        assert abs(exponent) < 0.15

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            estimate_popularity_exponent([])

    def test_tiny_stream_rejected(self):
        with pytest.raises(ValueError):
            estimate_popularity_exponent([0, 1, 2])


class TestTrafficConcentration:
    def test_zipf_head_dominates(self, small_query_log):
        rng = np.random.default_rng(2)
        stream = small_query_log.sample_stream(30_000, rng)
        shares = traffic_concentration(
            [q.query_id for q in stream], [0.01, 0.10, 1.0]
        )
        assert shares[0] > 0.03  # top 1% of uniques > 3% of traffic
        assert shares[0] < shares[1] < shares[2]
        assert shares[2] == pytest.approx(1.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            traffic_concentration([0, 1], [0.0])
        with pytest.raises(ValueError):
            traffic_concentration([], [0.5])


class TestProfileQueryLog:
    def test_profile_fields(self, small_query_log):
        profile = profile_query_log(small_query_log, stream_length=30_000)
        assert profile.num_unique_queries == len(small_query_log)
        assert profile.mean_terms_per_query > 1.0
        assert sum(profile.term_count_mix.values()) == pytest.approx(1.0)
        assert (
            profile.top_1pct_traffic_share
            < profile.top_10pct_traffic_share
            <= 1.0
        )

    def test_invalid_stream_length(self, small_query_log):
        with pytest.raises(ValueError):
            profile_query_log(small_query_log, stream_length=0)


class TestQueryVolumeDistribution:
    def test_volumes_match_index(self, small_query_log, small_index):
        from repro.search.query import QueryParser

        volumes = query_volume_distribution(small_query_log, small_index)
        assert volumes.size == len(small_query_log)
        parser = QueryParser(small_index.analyzer)
        for query in list(small_query_log)[:10]:
            parsed = parser.parse(query.text)
            expected = small_index.matched_postings_volume(
                list(parsed.terms)
            )
            assert volumes[query.query_id] == expected

    def test_volume_skew(self, small_query_log, small_index):
        # On the 300-document test corpus the skew is milder than on a
        # crawl-scale index, but clearly present.
        volumes = query_volume_distribution(small_query_log, small_index)
        assert volumes.max() > 3 * max(1, np.median(volumes))
