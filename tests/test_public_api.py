"""Public-API surface checks.

Every ``__all__`` name in every package must resolve, and the
top-level quickstart path must work — the contract a downstream
adopter relies on.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.text",
    "repro.corpus",
    "repro.index",
    "repro.search",
    "repro.engine",
    "repro.sim",
    "repro.cluster",
    "repro.servers",
    "repro.workload",
    "repro.metrics",
    "repro.obs",
    "repro.analysis",
    "repro.cache",
    "repro.core",
    "repro.resilience",
]


class TestPublicApi:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_all_names_resolve(self, package_name):
        package = importlib.import_module(package_name)
        assert hasattr(package, "__all__"), f"{package_name} lacks __all__"
        for name in package.__all__:
            assert hasattr(package, name), (
                f"{package_name}.__all__ lists {name!r} "
                "but the attribute is missing"
            )

    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_package_docstring(self, package_name):
        package = importlib.import_module(package_name)
        assert package.__doc__ and len(package.__doc__.strip()) > 40

    def test_version(self):
        import repro

        assert repro.__version__

    def test_quickstart_contract(self):
        """The README's quickstart snippet, verbatim in spirit."""
        from repro import (
            CorpusConfig,
            QueryLogConfig,
            SearchService,
            VocabularyConfig,
        )

        service = SearchService.build(
            corpus=CorpusConfig(
                num_documents=100,
                vocabulary=VocabularyConfig(size=800),
                mean_length=40,
            ),
            query_log=QueryLogConfig(num_unique_queries=20),
            num_partitions=2,
        )
        with service:
            response = service.search(service.query_log[0].text)
            for hit in response.hits:
                document = service.document(hit.doc_id)
                assert document.title is not None
            assert response.timings.total_seconds > 0
