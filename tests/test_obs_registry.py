"""Tests for the metrics registry: counters, gauges, histograms, export."""

import csv
import threading

import numpy as np
import pytest

from repro.metrics.export import REGISTRY_COLUMNS, export_registry_csv
from repro.metrics.histogram import Histogram
from repro.obs.registry import (
    Counter,
    FixedBucketHistogram,
    Gauge,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_add_default_and_amount(self):
        counter = Counter("c")
        counter.add()
        counter.add(41)
        assert counter.value == 42

    def test_negative_rejected(self):
        counter = Counter("c")
        with pytest.raises(ValueError, match="gauge"):
            counter.add(-1)
        assert counter.value == 0

    def test_zero_allowed(self):
        counter = Counter("c")
        counter.add(0)
        assert counter.value == 0

    def test_thread_safe_increments(self):
        counter = Counter("c")

        def bump():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000


class TestGauge:
    def test_set_last_value_wins(self):
        gauge = Gauge("g")
        gauge.set(3.5)
        gauge.set(1.0)
        assert gauge.value == 1.0

    def test_add_may_go_negative(self):
        gauge = Gauge("g")
        gauge.add(2.0)
        gauge.add(-5.0)
        assert gauge.value == -3.0


class TestFixedBucketHistogram:
    def test_edges_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            FixedBucketHistogram("h", [0.0, 1.0, 1.0])

    def test_needs_two_edges(self):
        with pytest.raises(ValueError, match="two bucket edges"):
            FixedBucketHistogram("h", [1.0])

    def test_observe_places_in_half_open_buckets(self):
        histogram = FixedBucketHistogram("h", [0.0, 1.0, 2.0, 4.0])
        for value in (0.0, 0.5, 1.0, 3.9):
            histogram.observe(value)
        assert histogram.counts == [2, 1, 1]
        assert histogram.total == 4
        assert histogram.sum == pytest.approx(5.4)

    def test_below_range_clamps_to_first_bucket(self):
        histogram = FixedBucketHistogram("h", [1.0, 2.0, 3.0])
        histogram.observe(-10.0)
        assert histogram.counts == [1, 0]

    def test_at_or_above_last_edge_clamps_to_last_bucket(self):
        histogram = FixedBucketHistogram("h", [1.0, 2.0, 3.0])
        histogram.observe(3.0)
        histogram.observe(1e9)
        assert histogram.counts == [0, 2]
        assert histogram.total == 2

    def test_log_buckets_layout(self):
        edges = FixedBucketHistogram.log_buckets(1e-3, 1.0, 3)
        assert len(edges) == 4
        assert edges[0] == pytest.approx(1e-3)
        assert edges[-1] == pytest.approx(1.0)
        # Log-spaced: constant ratio between consecutive edges.
        ratios = [b / a for a, b in zip(edges, edges[1:])]
        assert ratios == pytest.approx([ratios[0]] * len(ratios))

    def test_log_buckets_validation(self):
        with pytest.raises(ValueError):
            FixedBucketHistogram.log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            FixedBucketHistogram.log_buckets(1.0, 1.0)
        with pytest.raises(ValueError):
            FixedBucketHistogram.log_buckets(1e-3, 1.0, 0)

    def test_to_histogram_roundtrip(self):
        histogram = FixedBucketHistogram("h", [0.0, 1.0, 2.0])
        histogram.observe(0.5)
        histogram.observe(1.5)
        histogram.observe(1.6)
        converted = histogram.to_histogram()
        assert isinstance(converted, Histogram)
        np.testing.assert_allclose(converted.bin_edges, [0.0, 1.0, 2.0])
        np.testing.assert_array_equal(converted.counts, [1, 2])


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")
        registry.histogram("h")
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("h")

    def test_len_and_contains(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        assert len(registry) == 2
        assert "a" in registry
        assert "missing" not in registry

    def test_histogram_custom_edges_only_on_first_registration(self):
        registry = MetricsRegistry()
        first = registry.histogram("h", bin_edges=[0.0, 1.0, 2.0])
        second = registry.histogram("h", bin_edges=[5.0, 6.0])
        assert second is first
        assert first.bin_edges == (0.0, 1.0, 2.0)

    def test_snapshot_shapes(self):
        registry = MetricsRegistry()
        registry.counter("z.count").add(7)
        registry.gauge("a.level").set(2.5)
        registry.histogram("m.lat", bin_edges=[0.0, 1.0, 2.0]).observe(0.5)
        snapshot = registry.snapshot()
        # Sorted by name.
        assert list(snapshot) == ["a.level", "m.lat", "z.count"]
        assert snapshot["z.count"] == {"type": "counter", "value": 7}
        assert snapshot["a.level"] == {"type": "gauge", "value": 2.5}
        assert snapshot["m.lat"] == {
            "type": "histogram",
            "total": 1,
            "sum": 0.5,
            "bin_edges": [0.0, 1.0, 2.0],
            "counts": [1, 0],
        }

    def test_as_rows_cumulative_buckets(self):
        registry = MetricsRegistry()
        registry.counter("hits").add(3)
        histogram = registry.histogram("lat", bin_edges=[0.0, 1.0, 2.0, 4.0])
        for value in (0.5, 1.5, 3.0, 3.5):
            histogram.observe(value)
        rows = registry.as_rows()
        assert ("hits", "counter", "value", 3) in rows
        histogram_rows = [row for row in rows if row[0] == "lat"]
        assert histogram_rows == [
            ("lat", "histogram", "count", 4),
            ("lat", "histogram", "sum", pytest.approx(8.5)),
            ("lat", "histogram", "le_1", 1),
            ("lat", "histogram", "le_2", 2),
            ("lat", "histogram", "le_4", 4),
        ]

    def test_reset_frees_names(self):
        registry = MetricsRegistry()
        registry.counter("x").add(1)
        registry.reset()
        assert len(registry) == 0
        # Name is reusable as a different kind after reset.
        registry.gauge("x")


class TestRegistryCsvExport:
    def test_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("cache.hits").add(5)
        registry.gauge("pool.size").set(4)
        registry.histogram("lat", bin_edges=[0.0, 1.0, 2.0]).observe(0.25)
        path = tmp_path / "metrics.csv"
        rows_written = export_registry_csv(registry, path)

        with open(path, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            body = list(reader)
        assert tuple(header) == REGISTRY_COLUMNS
        assert len(body) == rows_written == len(registry.as_rows())
        by_key = {(row[0], row[2]): row for row in body}
        assert by_key[("cache.hits", "value")][1] == "counter"
        assert by_key[("cache.hits", "value")][3] == "5"
        assert by_key[("pool.size", "value")][3] == "4.0"
        assert by_key[("lat", "count")][3] == "1"

    def test_empty_registry_writes_header_only(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert export_registry_csv(MetricsRegistry(), path) == 0
        with open(path, newline="") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1


class TestGlobalRegistry:
    def test_global_always_present(self):
        assert isinstance(get_registry(), MetricsRegistry)

    def test_set_and_replace(self):
        original = get_registry()
        mine = MetricsRegistry()
        try:
            assert set_registry(mine) is mine
            assert get_registry() is mine
        finally:
            set_registry(original)
        assert get_registry() is original
