"""Observability wired through the serving path and the simulator.

Covers the cross-layer contracts: span-derived ``ComponentTimings``
must equal the direct measurements exactly, serving-path counters must
account for real work, and simulator traces must share the native
trace schema.
"""

import pytest

from repro.cluster.results import BREAKDOWN_COMPONENTS
from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import (
    ClusterConfig,
    emit_query_trace,
    run_open_loop,
)
from repro.cache.querycache import QueryResultCache
from repro.engine.frontend import Frontend
from repro.engine.instrumentation import ComponentTimings
from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index
from repro.obs.export import TRACE_SCHEMA_FIELDS, trace_to_dicts
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.servers.catalog import BIG_SERVER
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand


@pytest.fixture()
def partitioned(small_collection):
    return partition_index(small_collection, 3)


@pytest.fixture()
def query_text(small_query_log):
    return next(iter(small_query_log)).text


class TestIsnTracing:
    def test_trace_structure(self, partitioned, query_text):
        tracer = Tracer()
        with IndexServingNode(partitioned, tracer=tracer) as node:
            response = node.execute(query_text)
        root = response.trace
        assert root is not None
        assert root.name == "isn.execute"
        assert root.attributes["num_partitions"] == 3
        assert [child.name for child in root.children] == [
            "parse", "fanout", "merge"
        ]
        shards = root.find("fanout").children
        assert [span.name for span in shards] == ["shard"] * 3
        assert sorted(span.attributes["shard"] for span in shards) == [0, 1, 2]
        assert tracer.traces == [root]

    def test_shard_attributes_account_for_matched_volume(
        self, partitioned, query_text
    ):
        tracer = Tracer()
        with IndexServingNode(partitioned, tracer=tracer) as node:
            response = node.execute_serial(query_text)
        shards = response.trace.find("fanout").children
        assert sum(
            span.attributes["postings_scanned"] for span in shards
        ) == response.matched_volume

    def test_timings_equal_span_derivation_exactly(
        self, partitioned, query_text
    ):
        """With tracing on, ComponentTimings *is* the span-derived view."""
        tracer = Tracer()
        with IndexServingNode(partitioned, tracer=tracer) as node:
            response = node.execute(query_text)
        derived = ComponentTimings.from_span(response.trace)
        # Exact equality, not approx: both views read the same
        # perf_counter samples, so any drift is a wiring bug.
        assert derived == response.timings
        root = response.trace
        assert response.timings.total_seconds == root.duration
        assert response.timings.parse_seconds == root.find("parse").duration
        assert response.timings.merge_seconds == root.find("merge").duration
        assert response.timings.fanout_seconds == root.find("fanout").duration
        assert response.timings.shard_seconds == [
            span.duration for span in root.find("fanout").children
        ]

    def test_traced_results_match_untraced(self, partitioned, query_text):
        tracer = Tracer()
        with IndexServingNode(partitioned) as plain:
            expected = plain.execute_serial(query_text)
        with IndexServingNode(partitioned, tracer=tracer) as traced:
            observed = traced.execute_serial(query_text)
        assert observed.hits == expected.hits
        assert observed.matched_volume == expected.matched_volume

    def test_no_tracer_means_no_trace(self, partitioned, query_text):
        with IndexServingNode(partitioned) as node:
            assert node.execute(query_text).trace is None

    def test_disabled_tracer_means_no_trace(self, partitioned, query_text):
        tracer = Tracer(enabled=False)
        with IndexServingNode(partitioned, tracer=tracer) as node:
            assert node.execute(query_text).trace is None
        assert tracer.traces == []


class TestServingPathCounters:
    def test_isn_and_search_counters(self, partitioned, query_text):
        metrics = MetricsRegistry()
        with IndexServingNode(partitioned, metrics=metrics) as node:
            response = node.execute(query_text)
            node.execute(query_text)
        assert metrics.counter("isn.queries").value == 2
        # One shard search per partition per query.
        assert metrics.counter("search.queries").value == 2 * 3
        assert (
            metrics.counter("search.postings_scanned").value
            == 2 * response.matched_volume
        )
        assert metrics.counter("daat.candidates_scored").value > 0
        assert metrics.histogram("isn.service_seconds").total == 2

    def test_cache_counters(self, partitioned, query_text):
        metrics = MetricsRegistry()
        cache = QueryResultCache(capacity=8, metrics=metrics)
        with IndexServingNode(partitioned, cache=cache, metrics=metrics) as node:
            first = node.execute(query_text)
            second = node.execute(query_text)
        assert metrics.counter("cache.misses").value == 1
        assert metrics.counter("cache.hits").value == 1
        assert second.hits == first.hits

    def test_cache_eviction_counter(self, partitioned, small_query_log):
        metrics = MetricsRegistry()
        cache = QueryResultCache(capacity=1, metrics=metrics)
        texts = [query.text for query in list(small_query_log)[:3]]
        with IndexServingNode(partitioned, cache=cache, metrics=metrics) as node:
            for text in texts:
                node.execute(text)
        assert metrics.counter("cache.evictions").value == 2

    def test_cache_hit_trace_marked(self, partitioned, query_text):
        tracer = Tracer()
        cache = QueryResultCache(capacity=8)
        with IndexServingNode(partitioned, cache=cache, tracer=tracer) as node:
            node.execute(query_text)
            cached = node.execute(query_text)
        assert cached.trace.attributes.get("cached") is True
        assert cached.trace.find("fanout") is None
        assert cached.timings == ComponentTimings.from_span(cached.trace)


class TestFrontendNesting:
    def test_isn_trace_nests_under_frontend_span(
        self, partitioned, query_text
    ):
        tracer = Tracer()
        frontend = Frontend(
            [IndexServingNode(partitioned, tracer=tracer)], tracer=tracer
        )
        try:
            response = frontend.execute(query_text)
        finally:
            frontend.close()
        root = response.trace
        assert root is not None
        assert root.name == "frontend.execute"
        child_names = [child.name for child in root.children]
        assert child_names == ["isn.execute", "frontend.merge"]
        # One trace total: the ISN tree is nested, not a separate root.
        assert tracer.traces == [root]

    def test_frontend_without_tracer_keeps_none(self, partitioned, query_text):
        frontend = Frontend([IndexServingNode(partitioned)])
        try:
            assert frontend.execute(query_text).trace is None
        finally:
            frontend.close()


def _sim_setup(num_queries=50):
    config = ClusterConfig(
        spec=BIG_SERVER,
        partitioning=PartitionModelConfig(num_partitions=4),
    )
    scenario = WorkloadScenario(
        arrivals=PoissonArrivals(200.0),
        demands=LognormalDemand(-4.0, 0.6),
        num_queries=num_queries,
    )
    return config, scenario


class TestSimulatorTraces:
    def test_one_trace_per_query_same_schema(self):
        tracer = Tracer()
        config, scenario = _sim_setup()
        result = run_open_loop(config, scenario, seed=0, tracer=tracer)
        assert len(tracer.traces) == len(result.records) == 50
        for root in tracer.traces:
            assert root.name == "sim.query"
            for record in trace_to_dicts(root):
                assert tuple(record.keys()) == TRACE_SCHEMA_FIELDS

    def test_children_follow_breakdown_components(self):
        tracer = Tracer()
        config, scenario = _sim_setup(num_queries=10)
        run_open_loop(config, scenario, seed=1, tracer=tracer)
        root = tracer.traces[0]
        # network_time is the only component that is not a server-side
        # stage; it rides along as a root attribute instead of a span.
        assert tuple(
            child.name for child in root.children
        ) == BREAKDOWN_COMPONENTS[:-1]
        assert "network_time" in root.attributes

    def test_trace_durations_reconstruct_latency(self):
        tracer = Tracer()
        config, scenario = _sim_setup(num_queries=20)
        result = run_open_loop(config, scenario, seed=2, tracer=tracer)
        for root, record in zip(tracer.traces, result.records):
            assert root.attributes["query_id"] == record.query_id
            assert root.duration == pytest.approx(record.latency)
            stage_sum = sum(child.duration for child in root.children)
            assert stage_sum + root.attributes["network_time"] == (
                pytest.approx(record.latency)
            )

    def test_emit_disabled_tracer_is_noop(self):
        tracer = Tracer(enabled=False)
        config, scenario = _sim_setup(num_queries=5)
        run_open_loop(config, scenario, seed=0, tracer=tracer)
        assert tracer.traces == []

    def test_no_tracer_still_runs(self):
        config, scenario = _sim_setup(num_queries=5)
        result = run_open_loop(config, scenario, seed=0)
        assert len(result.records) == 5
