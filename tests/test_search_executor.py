"""Unit tests for Searcher / ShardSearcher / result merging."""

import pytest

from repro.index.partitioner import partition_index
from repro.search.executor import Searcher, ShardSearcher
from repro.search.merger import merge_shard_results
from repro.search.query import QueryMode
from repro.search.topk import SearchHit


class TestSearcher:
    def test_search_raw_text(self, small_index, small_query_log):
        searcher = Searcher(small_index)
        result = searcher.search(small_query_log[0].text)
        assert len(result.hits) <= 10
        assert result.matched_volume >= 0

    def test_algorithms_agree(self, small_index, small_query_log):
        daat = Searcher(small_index, algorithm="daat")
        taat = Searcher(small_index, algorithm="taat")
        for query in list(small_query_log)[:10]:
            assert daat.search(query.text).doc_ids() == taat.search(
                query.text
            ).doc_ids()

    def test_unknown_algorithm_rejected(self, small_index):
        with pytest.raises(ValueError):
            Searcher(small_index, algorithm="magic")

    def test_k_respected(self, small_index, small_query_log):
        searcher = Searcher(small_index)
        result = searcher.search(small_query_log[0].text, k=3)
        assert len(result.hits) <= 3

    def test_matched_volume_is_postings_sum(self, small_index):
        searcher = Searcher(small_index)
        term = small_index.dictionary.term_for_id(0)
        result = searcher.search(term)
        # Analysis may alter the raw term; use parsed terms to verify.
        expected = sum(
            small_index.document_frequency(t) for t in result.query.terms
        )
        assert result.matched_volume == expected

    def test_result_accessors(self, small_index, small_query_log):
        result = Searcher(small_index).search(small_query_log[1].text)
        assert len(result.doc_ids()) == len(result.scores())


class TestTraversalStrategySelection:
    def test_enum_accepted(self, small_index, small_query_log):
        from repro.search.strategy import TraversalStrategy

        searcher = Searcher(
            small_index, algorithm=TraversalStrategy.BLOCK_MAX_WAND
        )
        assert searcher.algorithm == "block_max_wand"
        result = searcher.search(small_query_log[0].text)
        assert result.docs_scored is not None
        assert result.blocks_skipped is not None

    def test_exhaustive_spelling_maps_to_daat(self, small_index):
        assert Searcher(small_index, algorithm="exhaustive").algorithm == "daat"
        assert (
            Searcher(small_index, algorithm="EXHAUSTIVE").algorithm == "daat"
        )

    def test_dashed_spelling_accepted(self, small_index):
        searcher = Searcher(small_index, algorithm="block-max-wand")
        assert searcher.algorithm == "block_max_wand"

    def test_taat_stays_taat(self, small_index):
        assert Searcher(small_index, algorithm="taat").algorithm == "taat"

    def test_unknown_spelling_still_rejected(self, small_index):
        with pytest.raises(ValueError):
            Searcher(small_index, algorithm="magic")

    def test_all_strategies_return_same_topk(
        self, small_index, small_query_log
    ):
        from repro.search.strategy import TraversalStrategy

        searchers = {
            strategy: Searcher(small_index, algorithm=strategy)
            for strategy in TraversalStrategy
        }
        for query in list(small_query_log)[:10]:
            results = {
                strategy: searcher.search(query.text)
                for strategy, searcher in searchers.items()
            }
            baseline = results[TraversalStrategy.EXHAUSTIVE]
            for strategy, result in results.items():
                assert result.doc_ids() == baseline.doc_ids(), strategy
                assert result.scores() == baseline.scores(), strategy

    def test_docs_scored_reported_for_pruning_strategies(
        self, small_index, small_query_log
    ):
        wand = Searcher(small_index, algorithm="wand")
        bmw = Searcher(small_index, algorithm="block_max_wand")
        text = small_query_log[0].text
        wand_result = wand.search(text)
        bmw_result = bmw.search(text)
        assert wand_result.docs_scored is not None
        assert wand_result.blocks_skipped is None
        assert bmw_result.docs_scored is not None
        assert bmw_result.docs_scored <= wand_result.docs_scored


class TestShardSearcher:
    def test_global_ids_returned(self, small_collection):
        partitioned = partition_index(small_collection, 4)
        shard = partitioned[1]
        searcher = ShardSearcher(shard)
        term = shard.index.dictionary.term_for_id(0)
        result = searcher.search(term)
        valid_globals = set(int(g) for g in shard.global_doc_ids)
        for doc_id in result.doc_ids():
            assert doc_id in valid_globals

    def test_global_stats_partitioned_search_equals_full_index(
        self, small_collection, small_index, small_query_log
    ):
        """With distributed-idf (global statistics) scoring, partitioned
        search must rank exactly like the unpartitioned index."""
        from repro.search.global_stats import global_scorer_factory

        partitioned = partition_index(small_collection, 3)
        factory = global_scorer_factory(partitioned)
        shard_searchers = [
            ShardSearcher(shard, scorer_factory=factory) for shard in partitioned
        ]
        full = Searcher(small_index)
        for query in list(small_query_log)[:15]:
            full_result = full.search(query.text, k=5)
            shard_results = [
                searcher.search(query.text, k=5).hits
                for searcher in shard_searchers
            ]
            merged = merge_shard_results(shard_results, k=5)
            assert [h.doc_id for h in merged] == full_result.doc_ids()
            for merged_hit, full_hit in zip(merged, full_result.hits):
                assert merged_hit.score == pytest.approx(full_hit.score)

    def test_shard_local_stats_approximate_full_ranking(
        self, small_collection, small_index, small_query_log
    ):
        """Shard-local statistics perturb the ranking (the benchmark's
        default behaviour); on average the top-5 sets still overlap."""
        partitioned = partition_index(small_collection, 3)
        shard_searchers = [ShardSearcher(shard) for shard in partitioned]
        full = Searcher(small_index)
        overlaps = []
        for query in list(small_query_log)[:20]:
            full_result = full.search(query.text, k=5)
            if len(full_result.hits) < 5:
                continue
            shard_results = [
                searcher.search(query.text, k=5).hits
                for searcher in shard_searchers
            ]
            merged = merge_shard_results(shard_results, k=5)
            overlap = set(h.doc_id for h in merged) & set(full_result.doc_ids())
            overlaps.append(len(overlap) / 5)
        assert overlaps, "query log produced no full result pages"
        assert sum(overlaps) / len(overlaps) >= 0.5


class TestMerger:
    def test_merge_preserves_global_order(self):
        shard_a = [SearchHit(score=3.0, doc_id=1), SearchHit(score=1.0, doc_id=3)]
        shard_b = [SearchHit(score=2.0, doc_id=2)]
        merged = merge_shard_results([shard_a, shard_b], k=2)
        assert [h.doc_id for h in merged] == [1, 2]

    def test_merge_tie_breaks_by_doc_id(self):
        shard_a = [SearchHit(score=1.0, doc_id=9)]
        shard_b = [SearchHit(score=1.0, doc_id=2)]
        merged = merge_shard_results([shard_a, shard_b], k=1)
        assert merged[0].doc_id == 2

    def test_merge_empty_shards(self):
        assert merge_shard_results([[], []], k=5) == []

    def test_merge_k_larger_than_hits(self):
        merged = merge_shard_results([[SearchHit(score=1.0, doc_id=0)]], k=10)
        assert len(merged) == 1
