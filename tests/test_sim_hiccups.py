"""Tests for stop-the-world pause injection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.hiccups import HiccupConfig, HiccupSchedule
from repro.sim.resources import CoreBank


def schedule(mean_interval=1.0, pause=0.1, sigma=0.0, seed=0):
    return HiccupSchedule(
        HiccupConfig(
            mean_interval=mean_interval,
            pause_duration=pause,
            duration_sigma=sigma,
        ),
        np.random.default_rng(seed),
    )


class TestHiccupConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HiccupConfig(mean_interval=0.0, pause_duration=0.1)
        with pytest.raises(ValueError):
            HiccupConfig(mean_interval=1.0, pause_duration=0.0)
        with pytest.raises(ValueError):
            HiccupConfig(
                mean_interval=1.0, pause_duration=0.1, duration_sigma=-1.0
            )


class TestHiccupSchedule:
    def test_pauses_never_overlap(self):
        pauses = schedule(mean_interval=0.05, pause=0.1).pauses_up_to(20.0)
        assert len(pauses) > 10
        for (_, end), (next_start, _) in zip(pauses, pauses[1:]):
            assert next_start >= end

    def test_deterministic(self):
        first = schedule(seed=3).pauses_up_to(50.0)
        second = schedule(seed=3).pauses_up_to(50.0)
        assert first == second

    def test_fixed_durations(self):
        for start, end in schedule(pause=0.07).pauses_up_to(30.0):
            assert end - start == pytest.approx(0.07)

    def test_lognormal_durations_vary(self):
        durations = [
            end - start
            for start, end in schedule(sigma=0.5, seed=5).pauses_up_to(100.0)
        ]
        assert np.std(durations) > 0
        assert np.mean(durations) == pytest.approx(0.1, rel=0.3)

    def test_execute_no_pause_in_window(self):
        # First pause of seed-0/interval-1000 starts far out.
        sched = schedule(mean_interval=1_000.0)
        start, end = sched.execute(0.0, 1.0)
        assert start == 0.0
        assert end == pytest.approx(1.0)

    def test_execute_spans_pause(self):
        sched = schedule(mean_interval=1.0, pause=0.1, seed=0)
        pauses = sched.pauses_up_to(10.0)
        pause_start, pause_end = pauses[0]
        # Start just before the pause with work that crosses it.
        begin = pause_start - 0.05
        start, end = sched.execute(begin, 0.2)
        assert start == begin
        assert end == pytest.approx(begin + 0.2 + 0.1)

    def test_execute_start_inside_pause_is_deferred(self):
        sched = schedule(mean_interval=1.0, pause=0.1, seed=0)
        pause_start, pause_end = sched.pauses_up_to(10.0)[0]
        start, end = sched.execute(pause_start + 0.02, 0.0)
        assert start == pytest.approx(pause_end)
        assert end == start

    def test_execute_negative_rejected(self):
        with pytest.raises(ValueError):
            schedule().execute(0.0, -1.0)

    @settings(max_examples=50, deadline=None)
    @given(
        begin=st.floats(min_value=0.0, max_value=50.0),
        busy=st.floats(min_value=0.0, max_value=5.0),
        seed=st.integers(min_value=0, max_value=50),
    )
    def test_execute_invariants(self, begin, busy, seed):
        """End - start ≥ busy time, and the non-paused time inside
        [start, end] equals exactly the busy time."""
        sched = schedule(mean_interval=0.5, pause=0.05, seed=seed)
        start, end = sched.execute(begin, busy)
        assert start >= begin
        assert end >= start + busy - 1e-12
        paused = sum(
            max(0.0, min(end, pause_end) - max(start, pause_start))
            for pause_start, pause_end in sched.pauses_up_to(end + 1.0)
        )
        assert (end - start) - paused == pytest.approx(busy, abs=1e-9)


class TestCoreBankWithHiccups:
    def test_task_stretched_across_pause(self):
        sched = schedule(mean_interval=1.0, pause=0.5, seed=0)
        pause_start, _ = sched.pauses_up_to(10.0)[0]
        bank = CoreBank(1, hiccups=sched)
        start, end = bank.submit(max(0.0, pause_start - 0.1), 0.2)
        assert end - start >= 0.2 + 0.5 - 1e-9

    def test_busy_time_counts_work_not_pauses(self):
        sched = schedule(mean_interval=0.2, pause=0.1, seed=1)
        bank = CoreBank(1, hiccups=sched)
        bank.submit(0.0, 1.0)
        assert bank.busy_time == pytest.approx(1.0)
