"""Tests for the heterogeneous-fleet simulation and study."""

import numpy as np
import pytest

from repro.cluster.hetero import (
    HeterogeneousConfig,
    run_heterogeneous_open_loop,
)
from repro.cluster.server import PartitionModelConfig
from repro.core.hetero import fleet_composition_study
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.3, sigma=0.8)  # mean ~19 ms, heavy tail
PARTITIONING = PartitionModelConfig(
    num_partitions=1,
    partition_overhead=0.0002,
    merge_base=0.0001,
    merge_per_partition=0.0,
)


def scenario(rate=200.0, num_queries=3_000):
    return WorkloadScenario(
        arrivals=PoissonArrivals(rate), demands=DEMAND, num_queries=num_queries
    )


def mixed_config(threshold=None, num_big=1, num_little=3):
    return HeterogeneousConfig(
        big_spec=BIG_SERVER,
        num_big=num_big,
        little_spec=SMALL_SERVER,
        num_little=num_little,
        partitioning=PARTITIONING,
        demand_threshold=threshold,
    )


class TestHeterogeneousConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousConfig(
                big_spec=BIG_SERVER, num_big=0,
                little_spec=SMALL_SERVER, num_little=0,
            )
        with pytest.raises(ValueError):
            HeterogeneousConfig(
                big_spec=BIG_SERVER, num_big=-1,
                little_spec=SMALL_SERVER, num_little=1,
            )
        with pytest.raises(ValueError):
            mixed_config(threshold=-1.0)


class TestRunHeterogeneous:
    def test_all_queries_complete(self):
        result = run_heterogeneous_open_loop(
            mixed_config(threshold=0.02), scenario()
        )
        assert len(result) == 3_000
        assert result.routed_to_big + result.routed_to_little == 3_000

    def test_deterministic(self):
        config = mixed_config(threshold=0.02)
        first = run_heterogeneous_open_loop(config, scenario(), seed=2)
        second = run_heterogeneous_open_loop(config, scenario(), seed=2)
        assert np.array_equal(first.latencies(), second.latencies())

    def test_threshold_routing_splits_traffic_by_cost(self):
        threshold = 0.03
        result = run_heterogeneous_open_loop(
            mixed_config(threshold=threshold), scenario()
        )
        big_demands = [
            r.demand for r in result.records if r.demand > threshold
        ]
        assert result.routed_to_big == len(big_demands)

    def test_spray_routing_uses_both_groups(self):
        result = run_heterogeneous_open_loop(
            mixed_config(threshold=None), scenario()
        )
        assert result.routed_to_big > 0
        assert result.routed_to_little > 0

    def test_power_accounting(self):
        result = run_heterogeneous_open_loop(
            mixed_config(threshold=0.02), scenario()
        )
        assert len(result.per_server_power_watts) == 4
        assert result.total_power_watts > 0
        assert result.energy_per_query_joules() > 0
        for utilization in result.per_server_utilization:
            assert 0.0 <= utilization <= 1.0

    def test_empty_group_falls_back(self):
        config = HeterogeneousConfig(
            big_spec=BIG_SERVER, num_big=0,
            little_spec=SMALL_SERVER, num_little=4,
            partitioning=PARTITIONING,
            demand_threshold=0.0,  # wants big, none exist
        )
        result = run_heterogeneous_open_loop(
            config, scenario(num_queries=500)
        )
        assert len(result) == 500
        assert result.routed_to_little == 500


class TestFleetCompositionStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return fleet_composition_study(
            BIG_SERVER,
            SMALL_SERVER,
            DEMAND,
            rate_qps=250.0,
            all_big=2,
            mixed_big=1,
            mixed_little=3,
            partitioning=PARTITIONING,
            num_queries=4_000,
        )

    def test_three_fleets(self, points):
        labels = [point.label for point in points]
        assert labels[0] == "all-big"
        assert labels[1] == "all-little"
        assert labels[2].startswith("mixed")

    def test_all_little_pays_latency(self, points):
        all_big, all_little, _ = points
        assert all_little.summary.p99 > 1.5 * all_big.summary.p99

    def test_all_little_saves_power(self, points):
        all_big, all_little, _ = points
        assert all_little.total_power_watts < all_big.total_power_watts

    def test_mixed_recovers_tail_cheaper(self, points):
        all_big, all_little, mixed = points
        # Tail: far closer to all-big than to all-little...
        assert mixed.summary.p99 < 0.6 * all_little.summary.p99
        # ...at materially lower power than all-big.
        assert mixed.total_power_watts < 0.8 * all_big.total_power_watts

    def test_big_traffic_share_matches_threshold(self, points):
        mixed = points[2]
        assert 0.1 < mixed.big_traffic_share < 0.35  # top ~20% routed big

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            fleet_composition_study(
                BIG_SERVER, SMALL_SERVER, DEMAND, rate_qps=0.0,
                all_big=1, mixed_big=1, mixed_little=1,
            )
        with pytest.raises(ValueError):
            fleet_composition_study(
                BIG_SERVER, SMALL_SERVER, DEMAND, rate_qps=10.0,
                all_big=1, mixed_big=1, mixed_little=1,
                threshold_quantile=1.5,
            )
