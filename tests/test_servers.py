"""Unit tests for server specs, catalog, and power model."""

import pytest

from repro.servers.catalog import (
    BIG_SERVER,
    SERVER_CATALOG,
    SMALL_SERVER,
    get_server,
)
from repro.servers.power import PowerModel
from repro.servers.spec import ServerSpec


class TestServerSpec:
    def test_compute_capacity(self):
        spec = ServerSpec("s", num_cores=4, core_speed=0.5,
                          idle_power_watts=10, peak_power_watts=20)
        assert spec.compute_capacity == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerSpec("s", 0, 1.0, 10, 20)
        with pytest.raises(ValueError):
            ServerSpec("s", 1, 0.0, 10, 20)
        with pytest.raises(ValueError):
            ServerSpec("s", 1, 1.0, -1, 20)
        with pytest.raises(ValueError):
            ServerSpec("s", 1, 1.0, 30, 20)

    def test_dvfs_scaling(self):
        scaled = BIG_SERVER.scaled(0.5)
        assert scaled.core_speed == pytest.approx(BIG_SERVER.core_speed * 0.5)
        assert scaled.idle_power_watts == BIG_SERVER.idle_power_watts
        # Cubic dynamic-power rule.
        dynamic = BIG_SERVER.peak_power_watts - BIG_SERVER.idle_power_watts
        assert scaled.peak_power_watts == pytest.approx(
            BIG_SERVER.idle_power_watts + dynamic * 0.125
        )

    def test_dvfs_invalid(self):
        with pytest.raises(ValueError):
            BIG_SERVER.scaled(0.0)

    def test_dvfs_custom_name(self):
        assert BIG_SERVER.scaled(0.8, name="slow").name == "slow"


class TestCatalog:
    def test_big_is_reference_speed(self):
        assert BIG_SERVER.core_speed == 1.0

    def test_small_server_ratios(self):
        # The study's premises: much slower cores, much lower power.
        assert SMALL_SERVER.core_speed < 0.5
        assert SMALL_SERVER.peak_power_watts < BIG_SERVER.peak_power_watts / 3

    def test_get_server(self):
        assert get_server(BIG_SERVER.name) is BIG_SERVER

    def test_get_server_unknown(self):
        with pytest.raises(KeyError, match="available"):
            get_server("cray-1")

    def test_catalog_names_consistent(self):
        for name, spec in SERVER_CATALOG.items():
            assert spec.name == name


class TestPowerModel:
    def setup_method(self):
        self.model = PowerModel(BIG_SERVER)

    def test_idle_and_peak(self):
        assert self.model.power_at(0.0) == BIG_SERVER.idle_power_watts
        assert self.model.power_at(1.0) == BIG_SERVER.peak_power_watts

    def test_linear_midpoint(self):
        expected = (BIG_SERVER.idle_power_watts + BIG_SERVER.peak_power_watts) / 2
        assert self.model.power_at(0.5) == pytest.approx(expected)

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            self.model.power_at(1.5)
        with pytest.raises(ValueError):
            self.model.power_at(-0.1)

    def test_energy(self):
        assert self.model.energy_joules(0.0, 10.0) == pytest.approx(
            BIG_SERVER.idle_power_watts * 10.0
        )
        with pytest.raises(ValueError):
            self.model.energy_joules(0.5, -1.0)

    def test_energy_per_query(self):
        energy = self.model.energy_per_query(0.5, throughput_qps=100.0)
        assert energy == pytest.approx(self.model.power_at(0.5) / 100.0)
        with pytest.raises(ValueError):
            self.model.energy_per_query(0.5, 0.0)

    def test_small_server_less_energy_at_matched_throughput(self):
        big = PowerModel(BIG_SERVER).energy_per_query(0.5, 100.0)
        small = PowerModel(SMALL_SERVER).energy_per_query(0.9, 100.0)
        assert small < big
