"""Tests for service-time prediction and deadline-aware scheduling.

The load-bearing contract is bit-identity when disabled: a service
built with ``scheduler=None`` (or a scheduler that only routes, never
caps depth) must return exactly the seed's hits, across every
traversal strategy and in both execution paths — and the DES must not
even *draw* the prediction noise stream when no scheduler is set.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.hetero import (
    HeterogeneousConfig,
    run_heterogeneous_open_loop,
)
from repro.cluster.server import PartitionModelConfig
from repro.engine.isn import IndexServingNode
from repro.engine.service import SearchService, SearchServiceConfig
from repro.index.partitioner import partition_index
from repro.predict.calibrate import calibrate_predictor
from repro.predict.features import QueryFeatures, extract_features
from repro.predict.predictor import ServiceTimePredictor
from repro.predict.scheduler import DeadlineCappedDemand, DeadlineScheduler
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

PREDICTOR = ServiceTimePredictor(
    base_seconds=1e-4,
    per_term_seconds=5e-5,
    per_posting_seconds=1e-6,
    residual_log_sigma=0.25,
)


@pytest.fixture(scope="module")
def partitioned(small_collection):
    return partition_index(small_collection, 2)


class TestQueryFeatures:
    def test_validation(self):
        with pytest.raises(ValueError):
            QueryFeatures(term_count=-1, total_postings=0, max_postings=0)
        with pytest.raises(ValueError):
            QueryFeatures(term_count=1, total_postings=5, max_postings=9)

    def test_extraction_sums_document_frequencies(self, partitioned):
        index = partitioned[0].index
        terms = index.dictionary.terms()[:2]
        features = extract_features(index, terms)
        assert features.term_count == 2
        assert features.total_postings == sum(
            index.document_frequency(t) for t in terms
        )
        assert features.max_postings == max(
            index.document_frequency(t) for t in terms
        )

    def test_partitioned_extraction_matches_shard_sum(self, partitioned):
        term = partitioned[0].index.dictionary.terms()[0]
        features = extract_features(partitioned, [term])
        expected = sum(
            shard.index.document_frequency(term) for shard in partitioned
        )
        assert features.total_postings == expected

    def test_unknown_terms_count_but_cost_nothing(self, partitioned):
        features = extract_features(
            partitioned, ["zzz-definitely-not-a-term"]
        )
        assert features.term_count == 1
        assert features.total_postings == 0


class TestPredictorFit:
    def _synthetic(self, rng, n=60):
        features = [
            QueryFeatures(
                term_count=int(rng.integers(1, 6)),
                total_postings=int(rng.integers(10, 5_000)),
                max_postings=0,
            )
            for _ in range(n)
        ]
        times = [
            2e-4 + 1e-4 * f.term_count + 2e-6 * f.total_postings
            for f in features
        ]
        return features, times

    def test_recovers_linear_model(self, rng):
        features, times = self._synthetic(rng)
        fitted = ServiceTimePredictor.fit(features, times)
        assert fitted.mape(features, times) < 0.01
        assert fitted.per_posting_seconds == pytest.approx(2e-6, rel=0.05)

    def test_fit_is_deterministic(self, rng):
        features, times = self._synthetic(rng)
        assert ServiceTimePredictor.fit(
            features, times
        ) == ServiceTimePredictor.fit(features, times)

    def test_prediction_monotone_in_postings(self, rng):
        """More postings never predict a cheaper query (clamped fit)."""
        features, times = self._synthetic(rng)
        # Adversarial: negatively-correlated noise tempts an
        # unconstrained fit into a negative coefficient.
        times = [
            max(t - 1e-6 * f.total_postings * 0.5, 1e-6)
            for f, t in zip(features, times)
        ]
        fitted = ServiceTimePredictor.fit(features, times)
        assert fitted.per_posting_seconds >= 0
        assert fitted.per_term_seconds >= 0
        assert fitted.base_seconds >= 0
        previous = 0.0
        for postings in (0, 10, 1_000, 100_000):
            predicted = fitted.predict(
                QueryFeatures(
                    term_count=2, total_postings=postings, max_postings=0
                )
            )
            assert predicted >= previous
            previous = predicted

    def test_quantiles_bracket_the_point_prediction(self):
        features = QueryFeatures(
            term_count=2, total_postings=1_000, max_postings=0
        )
        point = PREDICTOR.predict(features)
        assert PREDICTOR.predict_quantile(features, 0.9) > point
        assert PREDICTOR.predict_quantile(features, 0.1) < point


class TestCalibration:
    def test_deterministic_and_split_by_text(self, partitioned, small_query_log):
        isn = IndexServingNode(partitioned)
        try:
            first = calibrate_predictor(
                isn, small_query_log, num_queries=40, repeats=1, seed=0
            )
            second = calibrate_predictor(
                isn, small_query_log, num_queries=40, repeats=1, seed=0
            )
        finally:
            isn.close()
        # Measured wall-clock times differ run to run, but the query
        # selection and train/holdout split are seed-deterministic.
        assert first.holdout_features == second.holdout_features
        assert first.num_train == second.num_train
        assert first.num_holdout == second.num_holdout
        assert first.num_train + first.num_holdout >= 8
        assert first.num_holdout >= 1
        # The fit itself is sane: a finite model with physical signs.
        assert first.predictor.base_seconds >= 0
        assert first.predictor.per_posting_seconds >= 0
        assert first.holdout_mape < 10.0  # not astronomically wrong


class TestDeadlineScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineScheduler(predictor=PREDICTOR, deadline_s=0.0)
        with pytest.raises(ValueError):
            DeadlineScheduler(predictor=PREDICTOR, depth_from_budget=True)
        inert = DeadlineScheduler(predictor=PREDICTOR)
        assert not inert.routes

    def test_depth_mapping_caps_only_when_budget_short(self):
        scheduler = DeadlineScheduler(
            predictor=PREDICTOR, deadline_s=0.05, depth_from_budget=True
        )
        big = QueryFeatures(
            term_count=2, total_postings=100_000, max_postings=0
        )
        # Ample remaining budget: no cap.
        assert scheduler.max_docs_for(big, remaining_s=10.0) is None
        # Tight budget: capped, but never below the floor.
        capped = scheduler.max_docs_for(big, remaining_s=0.01, floor=10)
        assert capped is not None
        assert 10 <= capped < big.total_postings
        # Exhausted budget: the min-depth floor still applies.
        floor = scheduler.max_docs_for(big, remaining_s=0.0, floor=10)
        assert floor >= scheduler.min_depth_fraction * big.total_postings

    def test_depth_mapping_splits_across_shards(self):
        scheduler = DeadlineScheduler(
            predictor=PREDICTOR, deadline_s=0.05, depth_from_budget=True
        )
        big = QueryFeatures(
            term_count=2, total_postings=100_000, max_postings=0
        )
        one = scheduler.max_docs_for(big, remaining_s=0.01, num_shards=1)
        four = scheduler.max_docs_for(big, remaining_s=0.01, num_shards=4)
        assert four < one

    def test_capped_demand_respects_prediction_not_truth(self):
        scheduler = DeadlineScheduler(predictor=PREDICTOR, deadline_s=0.05)
        # Predicted to fit: untouched even though the true demand is huge.
        assert scheduler.capped_demand(1.0, predicted=0.01, core_speed=1.0) == 1.0
        # Predicted to blow the budget: truncated — but never below the
        # min-depth floor, which dominates here (floor 0.1 > affordable).
        capped = scheduler.capped_demand(1.0, predicted=10.0, core_speed=1.0)
        assert capped == pytest.approx(scheduler.min_depth_fraction * 1.0)
        # With a negligible floor the cap is exactly the affordable work.
        greedy = DeadlineScheduler(
            predictor=PREDICTOR, deadline_s=0.05, min_depth_fraction=1e-6
        )
        capped = greedy.capped_demand(1.0, predicted=10.0, core_speed=1.0)
        assert capped == pytest.approx(
            greedy.deadline_s * greedy.budget_headroom
        )

    def test_capped_demand_model_tracks_served_fraction(self):
        base = LognormalDemand(mu=-4.6, sigma=0.8)
        scheduler = DeadlineScheduler(predictor=PREDICTOR, deadline_s=0.02)
        wrapped = DeadlineCappedDemand(
            base=base, scheduler=scheduler, core_speed=0.35, parallelism=2
        )
        raw = base.demands(5_000, np.random.default_rng(1))
        capped = wrapped.demands(5_000, np.random.default_rng(1))
        assert np.all(capped <= raw + 1e-12)
        assert 0.0 < wrapped.last_served_fraction < 1.0
        assert wrapped.last_served_fraction == pytest.approx(
            capped.sum() / raw.sum()
        )

    def test_capped_demand_base_draws_bit_identical(self):
        """The wrapper's base demands must consume the RNG exactly like
        the unwrapped model (prediction noise is drawn *after*)."""
        base = LognormalDemand(mu=-4.6, sigma=0.8)
        scheduler = DeadlineScheduler(
            predictor=ServiceTimePredictor(
                base_seconds=0.0,
                per_term_seconds=0.0,
                per_posting_seconds=0.0,
                residual_log_sigma=0.0,
            ),
            deadline_s=1e9,  # never truncates
        )
        wrapped = DeadlineCappedDemand(
            base=base, scheduler=scheduler, core_speed=1.0
        )
        assert np.array_equal(
            base.demands(100, np.random.default_rng(7)),
            wrapped.demands(100, np.random.default_rng(7)),
        )


ALL_STRATEGIES = ("daat", "taat", "wand", "block_max_wand")


class TestNativeBitIdentity:
    @pytest.mark.parametrize("algorithm", ALL_STRATEGIES)
    def test_routing_only_scheduler_never_changes_hits(
        self, partitioned, small_query_log, algorithm
    ):
        """scheduler=None vs routing-only scheduler: identical hits,
        scores, and coverage for every traversal strategy."""
        plain = IndexServingNode(partitioned, algorithm=algorithm)
        routed = IndexServingNode(
            partitioned,
            algorithm=algorithm,
            scheduler=DeadlineScheduler(
                predictor=PREDICTOR, long_query_threshold_s=1e-4
            ),
        )
        try:
            for query in list(small_query_log)[:10]:
                a = plain.execute(query.text, k=10)
                b = routed.execute(query.text, k=10)
                assert [(h.doc_id, h.score) for h in a.hits] == [
                    (h.doc_id, h.score) for h in b.hits
                ]
                assert a.coverage == b.coverage
        finally:
            plain.close()
            routed.close()

    def test_inert_scheduler_without_deadline_never_caps(
        self, partitioned, small_query_log
    ):
        """No deadline, no threshold: the scheduler is inert even on
        the depth-capable BMW path."""
        plain = IndexServingNode(partitioned, algorithm="block_max_wand")
        inert = IndexServingNode(
            partitioned,
            algorithm="block_max_wand",
            scheduler=DeadlineScheduler(predictor=PREDICTOR),
        )
        try:
            for query in list(small_query_log)[:10]:
                a = plain.execute(query.text, k=10)
                b = inert.execute(query.text, k=10)
                assert [(h.doc_id, h.score) for h in a.hits] == [
                    (h.doc_id, h.score) for h in b.hits
                ]
        finally:
            plain.close()
            inert.close()

    def test_depth_cap_truncates_and_flags(self, partitioned, small_query_log):
        """A starved budget must actually truncate BMW traversal —
        visible in the ``predict.depth_capped`` counter — while still
        returning hits for every query."""
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        capped = IndexServingNode(
            partitioned,
            algorithm="block_max_wand",
            scheduler=DeadlineScheduler(
                predictor=ServiceTimePredictor(
                    base_seconds=0.0,
                    per_term_seconds=0.0,
                    per_posting_seconds=1.0,  # 1 s per posting: any
                    # budget affords almost nothing
                    residual_log_sigma=0.0,
                ),
                deadline_s=1e-3,
                depth_from_budget=True,
                min_depth_fraction=0.01,
            ),
            metrics=metrics,
        )
        try:
            for query in list(small_query_log)[:10]:
                response = capped.execute(query.text, k=3)
                assert response.hits  # degraded, never empty
            snapshot = metrics.snapshot()
            assert snapshot["predict.depth_capped"]["value"] > 0
            assert snapshot["predict.queries"]["value"] == 10
        finally:
            capped.close()

    def test_batch_dispatch_order_preserves_results(
        self, partitioned, small_query_log
    ):
        """Longest-predicted-first batch dispatch must not change what
        each query returns, only when it is dispatched."""
        texts = [q.text for q in list(small_query_log)[:8]]
        plain = IndexServingNode(partitioned)
        scheduled = IndexServingNode(
            partitioned,
            scheduler=DeadlineScheduler(
                predictor=PREDICTOR, long_query_threshold_s=1e-4
            ),
        )
        try:
            a = plain.execute_batch(texts, k=5)
            b = scheduled.execute_batch(texts, k=5)
            for ra, rb in zip(a, b):
                assert [(h.doc_id, h.score) for h in ra.hits] == [
                    (h.doc_id, h.score) for h in rb.hits
                ]
        finally:
            plain.close()
            scheduled.close()


DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)
PARTITIONING = PartitionModelConfig(num_partitions=4)


def _scenario(num_queries=1_500):
    return WorkloadScenario(
        arrivals=PoissonArrivals(80.0),
        demands=DEMAND,
        num_queries=num_queries,
    )


def _fleet(scheduler=None, threshold=None):
    return HeterogeneousConfig(
        big_spec=BIG_SERVER,
        num_big=1,
        little_spec=SMALL_SERVER,
        num_little=3,
        partitioning=PARTITIONING,
        demand_threshold=threshold,
        scheduler=scheduler,
    )


class TestDesScheduler:
    def test_scheduler_and_threshold_mutually_exclusive(self):
        with pytest.raises(ValueError):
            _fleet(
                scheduler=DeadlineScheduler(
                    predictor=PREDICTOR, deadline_s=0.05
                ),
                threshold=0.01,
            )

    def test_scheduler_must_route(self):
        with pytest.raises(ValueError):
            _fleet(scheduler=DeadlineScheduler(predictor=PREDICTOR))

    def test_scheduler_none_is_bit_identical_to_seed_config(self):
        """A config that never mentions the scheduler field and one with
        scheduler=None must produce byte-identical runs — the
        prediction stream is never drawn."""
        seed_style = HeterogeneousConfig(
            big_spec=BIG_SERVER,
            num_big=1,
            little_spec=SMALL_SERVER,
            num_little=3,
            partitioning=PARTITIONING,
        )
        explicit = _fleet(scheduler=None)
        a = run_heterogeneous_open_loop(seed_style, _scenario(), seed=5)
        b = run_heterogeneous_open_loop(explicit, _scenario(), seed=5)
        assert [r.latency for r in a.records] == [
            r.latency for r in b.records
        ]
        assert a.per_server_power_watts == b.per_server_power_watts

    def test_deadline_routing_deterministic(self):
        scheduler = DeadlineScheduler(predictor=PREDICTOR, deadline_s=0.03)
        a = run_heterogeneous_open_loop(
            _fleet(scheduler=scheduler), _scenario(), seed=5
        )
        b = run_heterogeneous_open_loop(
            _fleet(scheduler=scheduler), _scenario(), seed=5
        )
        assert [r.latency for r in a.records] == [
            r.latency for r in b.records
        ]
        assert a.routed_to_big == b.routed_to_big

    def test_deadline_routing_sends_long_queries_big(self):
        scheduler = DeadlineScheduler(predictor=PREDICTOR, deadline_s=0.03)
        result = run_heterogeneous_open_loop(
            _fleet(scheduler=scheduler), _scenario(), seed=5
        )
        assert result.routed_to_big > 0
        assert result.routed_to_little > result.routed_to_big

    def test_threshold_only_scheduler_routes(self):
        scheduler = DeadlineScheduler(
            predictor=PREDICTOR, long_query_threshold_s=0.05
        )
        result = run_heterogeneous_open_loop(
            _fleet(scheduler=scheduler), _scenario(), seed=5
        )
        assert result.routed_to_big > 0
        assert (
            result.routed_to_big + result.routed_to_little
            == len(result.records)
        )


class TestServiceIntegration:
    def test_service_threads_scheduler_to_isn(self, small_query_log):
        from tests.conftest import SMALL_CORPUS_CONFIG

        scheduler = DeadlineScheduler(
            predictor=PREDICTOR, long_query_threshold_s=1e-4
        )
        config = SearchServiceConfig(
            corpus=SMALL_CORPUS_CONFIG, scheduler=scheduler
        )
        with SearchService(config) as service:
            assert service.isn.scheduler is scheduler
            response = service.search("web search")
            assert response.latency_s >= 0
