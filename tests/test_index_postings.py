"""Unit + property tests for posting lists."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.postings import PostingsList


def sorted_postings_strategy():
    """Hypothesis strategy: valid (doc_ids, frequencies) pairs."""
    return st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=1, max_value=100),
        ),
        max_size=50,
        unique_by=lambda pair: pair[0],
    ).map(lambda pairs: sorted(pairs))


class TestPostingsList:
    def test_empty(self):
        postings = PostingsList.empty()
        assert len(postings) == 0
        assert postings.collection_frequency() == 0
        assert postings.pairs() == []

    def test_from_pairs(self):
        postings = PostingsList.from_pairs([(1, 2), (5, 1), (9, 4)])
        assert len(postings) == 3
        assert postings.document_frequency() == 3
        assert postings.collection_frequency() == 7

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            PostingsList([3, 1], [1, 1])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PostingsList([2, 2], [1, 1])

    def test_rejects_negative_doc_id(self):
        with pytest.raises(ValueError):
            PostingsList([-1, 2], [1, 1])

    def test_rejects_zero_frequency(self):
        with pytest.raises(ValueError):
            PostingsList([1], [0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            PostingsList([1, 2], [1])

    def test_frequency_of(self):
        postings = PostingsList.from_pairs([(1, 2), (5, 3)])
        assert postings.frequency_of(1) == 2
        assert postings.frequency_of(5) == 3
        assert postings.frequency_of(3) == 0
        assert postings.frequency_of(99) == 0

    def test_next_geq(self):
        postings = PostingsList.from_pairs([(2, 1), (5, 1), (9, 1)])
        assert postings.next_geq(0) == 0
        assert postings.next_geq(2) == 0
        assert postings.next_geq(3) == 1
        assert postings.next_geq(9) == 2
        assert postings.next_geq(10) == 3

    def test_next_geq_with_start(self):
        postings = PostingsList.from_pairs([(2, 1), (5, 1), (9, 1)])
        assert postings.next_geq(2, start=1) == 1
        assert postings.next_geq(5, start=1) == 1
        assert postings.next_geq(6, start=1) == 2

    def test_intersect(self):
        first = PostingsList.from_pairs([(1, 1), (3, 1), (5, 1)])
        second = PostingsList.from_pairs([(3, 1), (5, 1), (7, 1)])
        assert list(first.intersect(second)) == [3, 5]

    def test_intersect_empty(self):
        first = PostingsList.from_pairs([(1, 1)])
        assert list(first.intersect(PostingsList.empty())) == []

    def test_equality(self):
        first = PostingsList.from_pairs([(1, 2)])
        second = PostingsList.from_pairs([(1, 2)])
        third = PostingsList.from_pairs([(1, 3)])
        assert first == second
        assert first != third
        assert first != "not postings"

    def test_iteration_yields_python_ints(self):
        postings = PostingsList.from_pairs([(4, 7)])
        doc_id, frequency = next(iter(postings))
        assert isinstance(doc_id, int)
        assert isinstance(frequency, int)

    @given(sorted_postings_strategy())
    def test_roundtrip_through_pairs(self, pairs):
        postings = PostingsList.from_pairs(pairs)
        assert postings.pairs() == [(int(d), int(f)) for d, f in pairs]

    @given(sorted_postings_strategy())
    def test_collection_frequency_is_sum(self, pairs):
        postings = PostingsList.from_pairs(pairs)
        assert postings.collection_frequency() == sum(f for _, f in pairs)

    @given(sorted_postings_strategy(), st.integers(min_value=0, max_value=11_000))
    def test_next_geq_postcondition(self, pairs, target):
        postings = PostingsList.from_pairs(pairs)
        position = postings.next_geq(target)
        doc_ids = postings.doc_ids
        if position < len(postings):
            assert doc_ids[position] >= target
        if position > 0:
            assert doc_ids[position - 1] < target
