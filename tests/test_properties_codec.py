"""Property-based round-trips for the postings codec and index format.

The serialization layer has no redundancy: a single mis-biased gap or
mis-counted varint silently corrupts every downstream figure.  These
properties pin the codec over the full input space — empty lists,
single elements, boundary-width integers, and random corpora with
every analyzer flag combination.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.compression import (
    decode_postings,
    decode_varint,
    encode_postings,
    encode_varint,
    encode_varint_stream,
)
from repro.index.positional import PositionalIndexBuilder
from repro.index.postings import PostingsList
from repro.index.serialization import (
    deserialize_index,
    deserialize_positional_index,
    load_index,
    save_index,
    serialize_index,
    serialize_positional_index,
)
from repro.text.analyzer import Analyzer, AnalyzerConfig

# Strictly-increasing doc-id lists, the codec's input domain.  Hypothesis
# shrinks toward [] and single elements; @example pins those cases even
# on --hypothesis-seed runs.
doc_id_lists = st.lists(
    st.integers(min_value=0, max_value=1 << 40), unique=True
).map(sorted)

frequency = st.integers(min_value=1, max_value=1 << 20)


@st.composite
def postings_lists(draw):
    doc_ids = draw(doc_id_lists)
    frequencies = draw(
        st.lists(frequency, min_size=len(doc_ids), max_size=len(doc_ids))
    )
    return PostingsList.from_pairs(list(zip(doc_ids, frequencies)))


class TestVarintBoundaries:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @example(0)
    @example(127)
    @example(128)
    @example(2**63 - 1)
    def test_roundtrip_full_width(self, value):
        decoded, offset = decode_varint(encode_varint(value))
        assert decoded == value
        assert offset == len(encode_varint(value))

    def test_width_steps_at_7_bit_boundaries(self):
        for width in range(1, 9):
            boundary = 1 << (7 * width)
            assert len(encode_varint(boundary - 1)) == width
            assert len(encode_varint(boundary)) == width + 1

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=30))
    def test_stream_is_concatenation(self, values):
        stream = encode_varint_stream(values)
        assert stream == b"".join(encode_varint(v) for v in values)
        # Chained offset decoding walks the stream exactly once.
        offset = 0
        for expected in values:
            decoded, offset = decode_varint(stream, offset)
            assert decoded == expected
        assert offset == len(stream)


class TestPostingsRoundtrip:
    @given(postings_lists())
    @example(PostingsList.empty())
    @example(PostingsList.from_pairs([(0, 1)]))
    @example(PostingsList.from_pairs([(1 << 40, 1)]))
    def test_delta_varint_roundtrip(self, postings):
        encoded = encode_postings(postings)
        decoded, consumed = decode_postings(encoded)
        assert decoded == postings
        assert consumed == len(encoded)

    @given(postings_lists())
    def test_consecutive_blocks_self_delimit(self, postings):
        """Two encoded blocks back-to-back decode independently."""
        other = PostingsList.from_pairs([(5, 2), (9, 1)])
        data = encode_postings(postings) + encode_postings(other)
        first, offset = decode_postings(data)
        second, consumed = decode_postings(data[offset:])
        assert first == postings
        assert second == other
        assert offset + consumed == len(data)

    @given(doc_id_lists)
    def test_gap_bias_never_negative(self, doc_ids):
        """Strictly-increasing ids always produce encodable gaps."""
        postings = PostingsList.from_pairs([(d, 1) for d in doc_ids])
        decoded, _ = decode_postings(encode_postings(postings))
        assert list(decoded.doc_ids) == doc_ids


# Tiny shared vocabulary so random documents collide on terms.
corpus_words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "the", "of", "running", "runs"]
)
corpus_texts = st.lists(
    st.lists(corpus_words, min_size=1, max_size=10).map(" ".join),
    min_size=1,
    max_size=10,
)
analyzer_configs = st.builds(
    AnalyzerConfig,
    lowercase=st.booleans(),
    remove_stopwords=st.booleans(),
    stem=st.booleans(),
    max_token_length=st.integers(min_value=4, max_value=64),
)


def build_collection(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return collection


class TestIndexSerializationProperties:
    @settings(max_examples=30, deadline=None)
    @given(corpus_texts, analyzer_configs)
    def test_roundtrip_preserves_index_and_analyzer(self, texts, config):
        index = IndexBuilder(Analyzer(config)).build(build_collection(texts))
        restored = deserialize_index(serialize_index(index))

        restored_config = restored.analyzer.config
        assert restored_config.lowercase == config.lowercase
        assert restored_config.remove_stopwords == config.remove_stopwords
        assert restored_config.stem == config.stem
        assert restored_config.max_token_length == config.max_token_length

        assert restored.num_documents == index.num_documents
        assert list(restored.doc_lengths) == list(index.doc_lengths)
        assert restored.dictionary.terms() == index.dictionary.terms()
        for term in index.dictionary:
            assert restored.postings_for(term) == index.postings_for(term)

    @settings(max_examples=15, deadline=None)
    @given(corpus_texts)
    def test_serialization_deterministic(self, texts):
        analyzer = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
        index = IndexBuilder(analyzer).build(build_collection(texts))
        assert serialize_index(index) == serialize_index(index)

    @settings(max_examples=15, deadline=None)
    @given(corpus_texts)
    def test_positional_roundtrip_random(self, texts):
        analyzer = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
        positional = PositionalIndexBuilder(analyzer).build(
            build_collection(texts)
        )
        restored = deserialize_positional_index(
            serialize_positional_index(positional)
        )
        index = positional.index
        assert restored.index.dictionary.terms() == index.dictionary.terms()
        for term in index.dictionary:
            original = positional.positions_for(term)
            loaded = restored.positions_for(term)
            assert list(loaded.doc_ids) == list(original.doc_ids)
            for doc_id in original.doc_ids:
                assert list(loaded.positions_in(int(doc_id))) == list(
                    original.positions_in(int(doc_id))
                )

    def test_save_load_file_roundtrip(self, tmp_path, small_index):
        path = tmp_path / "index.ridx"
        written = save_index(small_index, path)
        assert written == path.stat().st_size
        restored = load_index(path)
        assert restored.dictionary.terms() == small_index.dictionary.terms()
        assert restored.num_documents == small_index.num_documents

    def test_trailing_garbage_rejected(self, small_index):
        data = serialize_index(small_index) + b"\x00"
        with pytest.raises(ValueError, match="trailing"):
            deserialize_index(data)
