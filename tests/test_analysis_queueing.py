"""Erlang-C formulas, and validation of the simulator against them.

The M/M/c regime (Poisson arrivals, exponential demands, one partition,
zero overheads) has exact closed forms; the simulator must match them.
"""

import numpy as np
import pytest

from repro.analysis.queueing import erlang_c, mmc_metrics
from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_open_loop
from repro.servers.spec import ServerSpec
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import ExponentialDemand

MM_C_PARTITIONING = PartitionModelConfig(
    num_partitions=1,
    partition_overhead=0.0,
    merge_base=0.0,
    merge_per_partition=0.0,
)


class TestErlangC:
    def test_single_server_equals_utilization(self):
        # M/M/1: P(wait) = rho.
        assert erlang_c(0.5, 1.0, 1) == pytest.approx(0.5)
        assert erlang_c(0.9, 1.0, 1) == pytest.approx(0.9)

    def test_more_servers_less_waiting(self):
        few = erlang_c(4.0, 1.0, 5)
        many = erlang_c(4.0, 1.0, 10)
        assert many < few

    def test_probability_bounds(self):
        for servers in (1, 2, 8, 32):
            for utilization in (0.1, 0.5, 0.9):
                p = erlang_c(utilization * servers, 1.0, servers)
                assert 0.0 < p < 1.0

    def test_unstable_rejected(self):
        with pytest.raises(ValueError):
            erlang_c(2.0, 1.0, 2)
        with pytest.raises(ValueError):
            erlang_c(0.0, 1.0, 1)
        with pytest.raises(ValueError):
            erlang_c(1.0, 1.0, 0)

    def test_mm1_mean_wait(self):
        # M/M/1: Wq = rho / (mu - lambda).
        metrics = mmc_metrics(0.8, 1.0, 1)
        assert metrics.mean_wait == pytest.approx(0.8 / 0.2)
        assert metrics.mean_response == pytest.approx(0.8 / 0.2 + 1.0)

    def test_wait_quantile(self):
        metrics = mmc_metrics(0.5, 1.0, 1)
        assert metrics.wait_quantile(0.4) == 0.0  # below the zero mass
        assert metrics.wait_quantile(0.99) > metrics.wait_quantile(0.9) > 0
        with pytest.raises(ValueError):
            metrics.wait_quantile(0.0)


class TestSimulatorAgainstErlangC:
    """The DES in the M/M/c regime must reproduce the closed forms."""

    def _simulate(self, arrival_rate, mean_service, cores, num_queries=60_000):
        spec = ServerSpec(
            name="mmc", num_cores=cores, core_speed=1.0,
            idle_power_watts=0.0, peak_power_watts=1.0,
        )
        config = ClusterConfig(spec=spec, partitioning=MM_C_PARTITIONING)
        scenario = WorkloadScenario(
            arrivals=PoissonArrivals(arrival_rate),
            demands=ExponentialDemand(mean_service),
            num_queries=num_queries,
        )
        return run_open_loop(config, scenario, seed=7)

    @pytest.mark.parametrize(
        "cores,utilization",
        [(1, 0.5), (1, 0.8), (4, 0.7), (8, 0.6)],
    )
    def test_mean_response_matches(self, cores, utilization):
        mean_service = 0.01
        service_rate = 1.0 / mean_service
        arrival_rate = utilization * cores * service_rate
        result = self._simulate(arrival_rate, mean_service, cores)
        expected = mmc_metrics(arrival_rate, service_rate, cores)
        measured = float(result.latencies(0.1).mean())
        assert measured == pytest.approx(expected.mean_response, rel=0.05)

    def test_mean_wait_matches(self):
        result = self._simulate(700.0, 0.01, 8)  # util 0.875
        expected = mmc_metrics(700.0, 100.0, 8)
        waits = np.array(
            [record.queue_wait for record in result.records]
        )[6_000:]
        assert waits.mean() == pytest.approx(expected.mean_wait, rel=0.1)

    def test_wait_quantiles_match(self):
        result = self._simulate(600.0, 0.01, 8, num_queries=80_000)
        expected = mmc_metrics(600.0, 100.0, 8)
        waits = np.sort(
            np.array([record.queue_wait for record in result.records])[8_000:]
        )
        for quantile in (0.8, 0.95, 0.99):
            measured = float(np.quantile(waits, quantile))
            analytic = expected.wait_quantile(quantile)
            assert measured == pytest.approx(analytic, rel=0.15, abs=2e-4)

    def test_utilization_matches(self):
        result = self._simulate(400.0, 0.01, 8)
        assert result.utilization() == pytest.approx(0.5, rel=0.05)
