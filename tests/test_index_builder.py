"""Unit tests for index construction."""

import numpy as np
import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.text.analyzer import Analyzer, AnalyzerConfig


def make_collection(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return collection


@pytest.fixture()
def plain_builder():
    # No stemming/stopwords so tests can reason about exact terms.
    return IndexBuilder(
        Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
    )


class TestIndexBuilder:
    def test_basic_postings(self, plain_builder):
        index = plain_builder.build(
            make_collection(["cat dog", "dog dog bird", "cat"])
        )
        cat = index.postings_for("cat")
        assert cat.pairs() == [(0, 1), (2, 1)]
        dog = index.postings_for("dog")
        assert dog.pairs() == [(0, 1), (1, 2)]
        bird = index.postings_for("bird")
        assert bird.pairs() == [(1, 1)]

    def test_doc_lengths(self, plain_builder):
        index = plain_builder.build(make_collection(["a b c", "a", ""]))
        assert list(index.doc_lengths) == [3, 1, 0]
        assert index.average_doc_length == pytest.approx(4 / 3)

    def test_dictionary_statistics(self, plain_builder):
        index = plain_builder.build(make_collection(["x x y", "x"]))
        info = index.term_info("x")
        assert info.document_frequency == 2
        assert info.collection_frequency == 3

    def test_empty_collection(self, plain_builder):
        index = plain_builder.build(DocumentCollection())
        assert index.num_documents == 0
        assert index.num_terms == 0
        assert index.average_doc_length == 0.0

    def test_analyzer_applied(self):
        index = IndexBuilder().build(make_collection(["The Running Dogs"]))
        # "the" dropped, "Running" -> "run" + "ning"? no: running -> "runn"?
        # The light stemmer strips "ing": running -> runn.
        assert index.term_info("runn") is not None or index.term_info("run") is not None
        assert index.term_info("the") is None

    def test_title_is_indexed(self):
        collection = DocumentCollection()
        collection.add(Document(0, "u", "UniqueTitleTerm", "body words"))
        index = IndexBuilder(
            Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
        ).build(collection)
        assert index.term_info("uniquetitleterm") is not None

    def test_deterministic_term_ids(self, plain_builder, small_collection):
        first = plain_builder.build(small_collection)
        second = plain_builder.build(small_collection)
        assert first.dictionary.terms() == second.dictionary.terms()

    def test_total_postings_consistency(self, small_index):
        total = sum(len(p) for p in small_index.all_postings())
        assert small_index.total_postings == total

    def test_postings_sorted_by_doc_id(self, small_index):
        for postings in small_index.all_postings():
            doc_ids = postings.doc_ids
            assert np.all(np.diff(doc_ids) > 0) or len(doc_ids) <= 1
