"""Tests for topic drift and the partition-strategy balance study."""

import numpy as np
import pytest

from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.querylog import QueryLogConfig, QueryLogGenerator
from repro.corpus.vocabulary import VocabularyConfig
from repro.core.strategies import partition_balance_study
from repro.index.partitioner import PartitionStrategy

VOCAB = VocabularyConfig(size=3_000, seed=6)


@pytest.fixture(scope="module")
def drifted():
    """A corpus with strong crawl-order topical locality + its log."""
    generator = CorpusGenerator(
        CorpusConfig(
            num_documents=400,
            vocabulary=VOCAB,
            mean_length=80,
            topic_fraction=0.7,
            topic_drift=5.0,
            seed=31,
        )
    )
    collection = generator.generate()
    log = QueryLogGenerator(
        generator.vocabulary, QueryLogConfig(num_unique_queries=120, seed=4)
    ).generate()
    return collection, log


class TestTopicDrift:
    def test_drift_changes_documents(self):
        base = CorpusConfig(
            num_documents=50, vocabulary=VOCAB, mean_length=60, seed=9
        )
        from dataclasses import replace

        no_drift = CorpusGenerator(base).generate()
        with_drift = CorpusGenerator(
            replace(base, topic_drift=10.0)
        ).generate()
        assert no_drift[40].body != with_drift[40].body

    def test_drift_zero_is_default_behaviour(self):
        config = CorpusConfig(
            num_documents=20, vocabulary=VOCAB, mean_length=40, seed=9
        )
        from dataclasses import replace

        assert (
            CorpusGenerator(config).generate()[10].body
            == CorpusGenerator(replace(config, topic_drift=0.0))
            .generate()[10]
            .body
        )

    def test_negative_drift_rejected(self):
        with pytest.raises(ValueError):
            CorpusConfig(topic_drift=-1.0)

    def test_drift_creates_locality(self, drifted):
        """Neighbouring documents share more vocabulary than distant
        ones when drift is on."""
        collection, _ = drifted
        from repro.text.analyzer import default_analyzer

        analyzer = default_analyzer()

        def terms(doc_id):
            return set(analyzer.analyze(collection[doc_id].text))

        near_overlap = np.mean(
            [
                len(terms(i) & terms(i + 1)) / max(1, len(terms(i)))
                for i in range(0, 60, 10)
            ]
        )
        far_overlap = np.mean(
            [
                len(terms(i) & terms(i + 300)) / max(1, len(terms(i)))
                for i in range(0, 60, 10)
            ]
        )
        assert near_overlap > far_overlap


class TestPartitionBalanceStudy:
    def test_contiguous_skewed_under_drift(self, drifted):
        collection, log = drifted
        rows = partition_balance_study(
            collection, log, num_partitions=4, num_queries=80
        )
        by_strategy = {row.strategy: row for row in rows}
        contiguous = by_strategy[PartitionStrategy.CONTIGUOUS]
        round_robin = by_strategy[PartitionStrategy.ROUND_ROBIN]
        assert contiguous.imbalance > 1.3 * round_robin.imbalance

    def test_round_robin_near_even(self, drifted):
        collection, log = drifted
        rows = partition_balance_study(
            collection, log, num_partitions=4, num_queries=80,
            strategies=[PartitionStrategy.ROUND_ROBIN],
        )
        assert rows[0].imbalance < 2.0
        assert rows[0].shard_document_spread <= 1

    def test_imbalance_bounds(self, drifted):
        collection, log = drifted
        rows = partition_balance_study(
            collection, log, num_partitions=4, num_queries=60
        )
        for row in rows:
            assert 1.0 <= row.imbalance <= row.worst_query_imbalance <= 4.0

    def test_invalid_args(self, drifted):
        collection, log = drifted
        with pytest.raises(ValueError):
            partition_balance_study(collection, log, num_partitions=1)
        with pytest.raises(ValueError):
            partition_balance_study(
                collection, log, num_partitions=4, strategies=[]
            )
        with pytest.raises(ValueError):
            partition_balance_study(
                collection, log, num_partitions=4, num_queries=0
            )
