"""The process execution backend: shared index, worker pool, bit-identity.

The GIL-escape contract has three parts, each tested here:

- **zero-copy attach** — :class:`SharedIndexArena` exports the index
  hot state into one shared-memory segment and
  :func:`attach_shared_index` rebuilds a structurally identical index
  over read-only views; searches over the attached index are
  bit-identical (ids *and* float scores) to the original, across
  random corpora × all four traversal strategies × partition counts
  (hypothesis);
- **backend equivalence** — a full :class:`IndexServingNode` on
  ``backend="processes"`` answers every query identically to the
  thread backend, on the single-query and the batched path;
- **worker lifecycle** — a worker killed *between* dispatches is found
  by the liveness checks (the background heartbeat within one probe
  interval, or the cheap pre-dispatch ``is_alive`` check) and respawned
  without burning a query; a worker dying *mid-dispatch* surfaces as a
  typed :class:`WorkerCrashError`, feeds the circuit breaker, and
  degrades coverage like any shard failure — batches re-dispatch to
  healthy workers first; ``close()`` deterministically unlinks the
  shared segment.
"""

import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.documents import Document, DocumentCollection
from repro.engine.execution import ExecutionConfig
from repro.engine.isn import IndexServingNode
from repro.engine.mp import ProcessShardPool, WorkerCrashError, WorkerOptions
from repro.index.partitioner import partition_index
from repro.index.shared import SharedIndexArena, attach_shared_index
from repro.obs.registry import MetricsRegistry
from repro.resilience.breaker import BreakerConfig
from repro.search.executor import ALGORITHMS, ShardSearcher
from repro.search.global_stats import global_scorer_factory
from repro.search.query import ParsedQuery
from repro.text.analyzer import Analyzer, AnalyzerConfig

PLAIN = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))

words = st.sampled_from(
    ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"]
)
documents_strategy = st.lists(
    st.lists(words, min_size=1, max_size=12).map(" ".join),
    min_size=1,
    max_size=14,
)
query_strategy = st.lists(words, min_size=1, max_size=4, unique=True)


def build(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return collection


def hit_pairs(hits):
    """(doc_id, raw float score) pairs — the bit-identity currency."""
    return [(hit.doc_id, hit.score) for hit in hits]


class TestSharedIndexAttach:
    """The export/attach round-trip is lossless for the scoring kernel."""

    @settings(max_examples=25, deadline=None)
    @given(
        documents_strategy,
        query_strategy,
        st.integers(min_value=1, max_value=4),
        st.sampled_from(ALGORITHMS),
    )
    def test_attached_index_scores_bit_identical(
        self, texts, terms, num_partitions, algorithm
    ):
        collection = build(texts)
        partitioned = partition_index(
            collection, num_partitions, analyzer=PLAIN
        )
        arena = SharedIndexArena(partitioned)
        try:
            attached, segment = attach_shared_index(arena.spec)
            query = ParsedQuery(terms=tuple(terms), k=5)
            factory = global_scorer_factory(partitioned)
            attached_factory = global_scorer_factory(attached)
            for shard_id in range(num_partitions):
                original = ShardSearcher(
                    partitioned[shard_id],
                    algorithm=algorithm,
                    scorer_factory=factory,
                ).search(query)
                rebuilt = ShardSearcher(
                    attached[shard_id],
                    algorithm=algorithm,
                    scorer_factory=attached_factory,
                ).search(query)
                assert hit_pairs(rebuilt.hits) == hit_pairs(original.hits)
                assert rebuilt.matched_volume == original.matched_volume
            segment.close()
        finally:
            arena.close()

    def test_attached_arrays_are_read_only_views(self, small_collection):
        partitioned = partition_index(small_collection, 2)
        with SharedIndexArena(partitioned) as arena:
            attached, segment = attach_shared_index(arena.spec)
            postings = attached[0].index.all_postings()
            nonempty = next(p for p in postings if len(p))
            with pytest.raises((ValueError, OSError)):
                nonempty.doc_ids[0] = 99
            # Views, not copies: no postings array owns its memory.
            assert not nonempty.doc_ids.flags.owndata
            segment.close()

    def test_arena_close_unlinks_segment(self, small_collection):
        partitioned = partition_index(small_collection, 2)
        arena = SharedIndexArena(partitioned)
        path = os.path.join("/dev/shm", arena.spec.shm_name.lstrip("/"))
        if not os.path.exists(path):  # pragma: no cover - non-Linux
            pytest.skip("no /dev/shm segment path to observe")
        arena.close()
        assert arena.closed
        assert not os.path.exists(path)
        arena.close()  # idempotent

    def test_tiered_shards_are_rejected(self, small_collection):
        from repro.index.store import TieredStorageConfig, tier_partitioned_index

        partitioned = tier_partitioned_index(
            partition_index(small_collection, 2),
            TieredStorageConfig(cache_budget_bytes=1 << 16),
        )
        with pytest.raises(TypeError, match="re-tiered inside each worker"):
            SharedIndexArena(partitioned)


@pytest.fixture(scope="module")
def parity_setup(small_collection, small_query_log):
    """One partitioned index + query sample shared by the parity tests."""
    partitioned = partition_index(small_collection, 3)
    texts = [q.text for q in list(small_query_log)[:12]]
    return partitioned, texts


class TestBackendBitIdentity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_threads_and_processes_answer_identically(
        self, parity_setup, algorithm
    ):
        partitioned, texts = parity_setup
        with IndexServingNode(
            partitioned, algorithm=algorithm
        ) as threads, IndexServingNode(
            partitioned,
            algorithm=algorithm,
            execution=ExecutionConfig(backend="processes", workers=2),
        ) as processes:
            for text in texts:
                expected = threads.execute(text, k=8)
                actual = processes.execute(text, k=8)
                assert hit_pairs(actual.hits) == hit_pairs(expected.hits)
                assert actual.matched_volume == expected.matched_volume
                assert actual.coverage == 1.0

    def test_execute_batch_matches_execute_on_both_backends(
        self, parity_setup
    ):
        partitioned, texts = parity_setup
        for execution in (
            None,
            ExecutionConfig(backend="processes", workers=2, batch_size=5),
        ):
            with IndexServingNode(
                partitioned, execution=execution
            ) as node:
                singles = [node.execute(text, k=8) for text in texts]
                batched = node.execute_batch(texts, k=8)
                assert len(batched) == len(singles)
                for one, many in zip(singles, batched):
                    assert hit_pairs(many.hits) == hit_pairs(one.hits)
                    assert many.matched_volume == one.matched_volume

    def test_worker_counters_merge_into_parent_registry(self, parity_setup):
        partitioned, texts = parity_setup
        threads_metrics, process_metrics = (
            MetricsRegistry(),
            MetricsRegistry(),
        )
        with IndexServingNode(
            partitioned, algorithm="wand", metrics=threads_metrics
        ) as threads, IndexServingNode(
            partitioned,
            algorithm="wand",
            metrics=process_metrics,
            execution=ExecutionConfig(backend="processes", workers=2),
        ) as processes:
            for text in texts:
                threads.execute(text, k=8)
                processes.execute(text, k=8)
        expected = threads_metrics.snapshot()
        actual = process_metrics.snapshot()
        compared = 0
        for name, entry in expected.items():
            if entry["type"] != "counter" or not name.startswith(
                ("search.", "wand.")
            ):
                continue
            compared += 1
            assert actual[name]["value"] == entry["value"], name
        assert compared > 0


class TestWorkerLifecycle:
    def _kill_one_worker(self, pool: ProcessShardPool) -> int:
        pid = pool.worker_pids()[0]
        os.kill(pid, signal.SIGKILL)
        # SIGKILL is immediate; the kernel closes the worker's pipe end,
        # so any in-flight dispatch observes EOF.  (The zombie is
        # reaped by the pool's respawn path.)
        time.sleep(0.05)
        return pid

    def _hide_death(self, pool: ProcessShardPool):
        """Blind the liveness checks to slot 0's coming death.

        With ``is_alive`` pinned True, neither the heartbeat monitor
        nor the pre-dispatch check can see the corpse — the dispatch
        itself must discover it, which is exactly the mid-flight crash
        path these tests pin down.  Patch *before* killing so the
        monitor cannot win the race.
        """
        handle = pool._workers[0]
        handle.process.is_alive = lambda: True
        return handle

    def test_idle_crash_is_healed_without_burning_a_query(
        self, parity_setup
    ):
        partitioned, texts = parity_setup
        with IndexServingNode(
            partitioned,
            execution=ExecutionConfig(backend="processes", workers=1),
        ) as node:
            pool = node.process_pool
            expected = node.execute(texts[0], k=5)
            dead = self._kill_one_worker(pool)
            # The liveness checks (heartbeat probe or the pre-dispatch
            # is_alive check) find the corpse first: the very next
            # query is served by a respawned worker, bit-identically —
            # no query is burned discovering the death.
            response = node.execute(texts[0], k=5)
            assert response.coverage == 1.0
            assert hit_pairs(response.hits) == hit_pairs(expected.hits)
            assert dead not in pool.worker_pids()

    def test_heartbeat_detects_sigkill_within_probe_interval(
        self, small_collection
    ):
        partitioned = partition_index(small_collection, 1)
        interval = 0.05
        with SharedIndexArena(partitioned) as arena:
            pool = ProcessShardPool(
                arena.spec,
                workers=2,
                options=WorkerOptions(),
                probe_interval_s=interval,
            )
            try:
                pids = pool.worker_pids()
                os.kill(pids[0], signal.SIGKILL)
                # No dispatch happens: only the background heartbeat
                # can notice.  Nominal detection is one probe interval;
                # the deadline leaves scheduling slack for loaded CI.
                deadline = time.monotonic() + 50 * interval
                while time.monotonic() < deadline:
                    snapshot = pool.health_snapshot()
                    if (
                        snapshot["deaths_detected"] >= 1
                        and snapshot["live_workers"] == 2
                    ):
                        break
                    time.sleep(interval / 5)
                snapshot = pool.health_snapshot()
                assert snapshot["deaths_detected"] >= 1
                assert snapshot["respawns"] >= 1
                assert snapshot["live_workers"] == 2
                assert pids[0] not in pool.worker_pids()
                # The respawned fleet serves without a burned query.
                future = pool.submit_one(
                    0, ParsedQuery(terms=("alpha",), k=3)
                )
                future.result(timeout=30)
            finally:
                pool.close()

    def test_mid_dispatch_crash_is_typed_and_pool_self_heals(
        self, parity_setup
    ):
        partitioned, texts = parity_setup
        with IndexServingNode(
            partitioned,
            execution=ExecutionConfig(backend="processes", workers=1),
        ) as node:
            pool = node.process_pool
            node.execute(texts[0], k=5)
            self._hide_death(pool)
            dead = self._kill_one_worker(pool)
            # Plain single-query fan-out has no retry machinery: the
            # mid-dispatch crash propagates as the typed failure,
            # naming the shards it took down.
            with pytest.raises(WorkerCrashError) as excinfo:
                node.execute(texts[1], k=5)
            assert excinfo.value.shards
            # Self-healed: a respawned worker serves the next query.
            response = node.execute(texts[0], k=5)
            assert response.coverage == 1.0
            assert dead not in pool.worker_pids()

    def test_batch_crash_retries_on_healthy_workers(self, parity_setup):
        partitioned, texts = parity_setup
        with IndexServingNode(
            partitioned, execution=ExecutionConfig(backend="threads")
        ) as reference_node:
            expected = [
                reference_node.execute(text, k=5) for text in texts[:6]
            ]
        with IndexServingNode(
            partitioned,
            execution=ExecutionConfig(
                backend="processes", workers=2, batch_size=4
            ),
        ) as node:
            pool = node.process_pool
            node.execute(texts[0], k=5)
            self._hide_death(pool)
            self._kill_one_worker(pool)
            # Chunks dispatched to the dead worker crash mid-flight and
            # re-dispatch to the healthy worker (or the respawn): the
            # whole batch still answers, bit-identical, no exception.
            responses = node.execute_batch(texts[:6], k=5)
            for response, want in zip(responses, expected):
                assert response.coverage == 1.0
                assert hit_pairs(response.hits) == hit_pairs(want.hits)

    def test_crash_trips_breaker_and_degrades_coverage(self, parity_setup):
        partitioned, texts = parity_setup
        with IndexServingNode(
            partitioned,
            execution=ExecutionConfig(backend="processes", workers=1),
            breakers=BreakerConfig(
                failure_threshold=1, recovery_time_s=30.0
            ),
        ) as node:
            node.execute(texts[0], k=5)
            self._hide_death(node.process_pool)
            self._kill_one_worker(node.process_pool)
            # The crashed dispatch fails one shard's attempt; with a
            # one-strike breaker the retry is fenced off, so the answer
            # arrives with degraded coverage instead of an error.
            response = node.execute(texts[1], k=5)
            assert response.coverage < 1.0
            assert response.breaker_skips >= 1
            from repro.resilience.breaker import BreakerState

            board = node.breaker_board
            now = time.perf_counter()
            assert any(
                board.breaker(shard).state(now) is not BreakerState.CLOSED
                for shard in range(node.num_partitions)
            )
            # The pool itself recovered: the un-fenced shards still serve.
            follow_up = node.execute(texts[2], k=5)
            assert 0.0 < follow_up.coverage < 1.0

    def test_node_close_unlinks_shared_segment(self, parity_setup):
        partitioned, texts = parity_setup
        node = IndexServingNode(
            partitioned,
            execution=ExecutionConfig(backend="processes", workers=1),
        )
        arena = node._arena
        path = os.path.join("/dev/shm", arena.spec.shm_name.lstrip("/"))
        if not os.path.exists(path):  # pragma: no cover - non-Linux
            node.close()
            pytest.skip("no /dev/shm segment path to observe")
        node.execute(texts[0], k=5)
        node.close()
        assert arena.closed
        assert not os.path.exists(path)
        with pytest.raises(RuntimeError):
            node.execute(texts[0], k=5)

    def test_pool_rejects_submissions_after_close(self, small_collection):
        partitioned = partition_index(small_collection, 1)
        with SharedIndexArena(partitioned) as arena:
            pool = ProcessShardPool(
                arena.spec, workers=1, options=WorkerOptions()
            )
            future = pool.submit_one(
                0, ParsedQuery(terms=("alpha",), k=3)
            )
            future.result(timeout=30)
            pool.close()
            pool.close()  # idempotent
            with pytest.raises(RuntimeError):
                pool.submit_one(0, ParsedQuery(terms=("alpha",), k=3))


class TestExecutionConfigValidation:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            ExecutionConfig(backend="gpu")

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)
        with pytest.raises(ValueError):
            ExecutionConfig(batch_size=0)
        with pytest.raises(ValueError, match="start_method"):
            ExecutionConfig(start_method="teleport")

    def test_defaults_are_the_thread_backend(self):
        config = ExecutionConfig()
        assert config.backend == "threads"
        assert not config.use_processes
        assert config.workers is None
