"""Unit tests for index (de)serialization."""

import numpy as np
import pytest

from repro.index.serialization import (
    deserialize_index,
    load_index,
    save_index,
    serialize_index,
)
from repro.text.analyzer import Analyzer, AnalyzerConfig


class TestSerialization:
    def test_roundtrip_preserves_structure(self, small_index):
        restored = deserialize_index(serialize_index(small_index))
        assert restored.num_documents == small_index.num_documents
        assert restored.num_terms == small_index.num_terms
        assert restored.dictionary.terms() == small_index.dictionary.terms()
        assert np.array_equal(restored.doc_lengths, small_index.doc_lengths)

    def test_roundtrip_preserves_postings(self, small_index):
        restored = deserialize_index(serialize_index(small_index))
        for term in list(small_index.dictionary)[:100]:
            assert restored.postings_for(term) == small_index.postings_for(term)

    def test_roundtrip_preserves_analyzer_config(self, small_index):
        restored = deserialize_index(serialize_index(small_index))
        original = small_index.analyzer.config
        loaded = restored.analyzer.config
        assert loaded.lowercase == original.lowercase
        assert loaded.remove_stopwords == original.remove_stopwords
        assert loaded.stem == original.stem
        assert loaded.max_token_length == original.max_token_length

    def test_file_roundtrip(self, small_index, tmp_path):
        path = tmp_path / "index.ridx"
        written = save_index(small_index, path)
        assert path.stat().st_size == written
        restored = load_index(path)
        assert restored.num_terms == small_index.num_terms

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_index(b"XXXX" + b"\x00" * 10)

    def test_bad_version_rejected(self, small_index):
        data = bytearray(serialize_index(small_index))
        data[4] = 99
        with pytest.raises(ValueError, match="version"):
            deserialize_index(bytes(data))

    def test_trailing_bytes_rejected(self, small_index):
        data = serialize_index(small_index) + b"junk"
        with pytest.raises(ValueError, match="trailing"):
            deserialize_index(data)

    def test_custom_stopwords_not_persistable(self, small_collection):
        from repro.index.builder import IndexBuilder

        analyzer = Analyzer(
            AnalyzerConfig(stopwords=frozenset({"custom"}))
        )
        index = IndexBuilder(analyzer).build(small_collection)
        with pytest.raises(ValueError, match="stopword"):
            serialize_index(index)

    def test_positional_roundtrip(self, small_collection, tmp_path):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            load_positional_index,
            save_positional_index,
        )

        positional = PositionalIndexBuilder().build(small_collection)
        path = tmp_path / "index.rixp"
        written = save_positional_index(positional, path)
        assert path.stat().st_size == written
        restored = load_positional_index(path)
        assert (
            restored.index.dictionary.terms()
            == positional.index.dictionary.terms()
        )
        for term in list(positional.index.dictionary)[:60]:
            original = positional.positions_for(term)
            loaded = restored.positions_for(term)
            assert np.array_equal(original.doc_ids, loaded.doc_ids)
            for doc_id in original.doc_ids[:5]:
                assert np.array_equal(
                    original.positions_in(int(doc_id)),
                    loaded.positions_in(int(doc_id)),
                )

    def test_loaded_positional_index_answers_phrases(
        self, small_collection, tmp_path
    ):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            load_positional_index,
            save_positional_index,
        )
        from repro.search.phrase import score_phrase

        positional = PositionalIndexBuilder().build(small_collection)
        path = tmp_path / "index.rixp"
        save_positional_index(positional, path)
        restored = load_positional_index(path)
        terms = positional.analyzer.analyze(small_collection[0].body)
        pair = (terms[0], terms[1])
        original_hits = score_phrase(positional, pair, k=20)
        loaded_hits = score_phrase(restored, pair, k=20)
        assert [h.doc_id for h in original_hits] == [
            h.doc_id for h in loaded_hits
        ]

    def test_positional_bad_magic(self):
        from repro.index.serialization import deserialize_positional_index

        with pytest.raises(ValueError, match="RIXP"):
            deserialize_positional_index(b"RIDX" + b"\x00" * 20)

    def test_positional_trailing_bytes_rejected(self, small_collection):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            deserialize_positional_index,
            serialize_positional_index,
        )

        positional = PositionalIndexBuilder().build(small_collection)
        data = serialize_positional_index(positional) + b"x"
        with pytest.raises(ValueError, match="trailing"):
            deserialize_positional_index(data)

    def test_loaded_index_searchable(self, small_index, small_query_log):
        from repro.search.executor import Searcher

        restored = deserialize_index(serialize_index(small_index))
        original_searcher = Searcher(small_index)
        restored_searcher = Searcher(restored)
        for query in list(small_query_log)[:10]:
            original = original_searcher.search(query.text)
            loaded = restored_searcher.search(query.text)
            assert original.doc_ids() == loaded.doc_ids()


class TestChecksum:
    """Version-2 integrity verification (corrupted-postings detection)."""

    def _v1_payload(self, index) -> bytes:
        """Rewrite a v2 payload as version 1 (checksum field removed)."""
        from repro.index.compression import decode_varint

        data = serialize_index(index)
        offset = 6
        _, offset = decode_varint(data, offset)  # max_token_length
        header = bytearray(data[:offset])
        header[4] = 1
        return bytes(header) + data[offset + 4 :]

    def test_current_version_is_two(self, small_index):
        assert serialize_index(small_index)[4] == 2

    def test_flipped_postings_byte_detected(self, small_index):
        from repro.index.serialization import CorruptedIndexError

        data = bytearray(serialize_index(small_index))
        data[-10] ^= 0x40
        with pytest.raises(CorruptedIndexError):
            deserialize_index(bytes(data))

    def test_flipped_header_adjacent_byte_detected(self, small_index):
        from repro.index.serialization import CorruptedIndexError

        data = bytearray(serialize_index(small_index))
        data[15] ^= 0x01  # early in the body (doc-length table)
        with pytest.raises(CorruptedIndexError):
            deserialize_index(bytes(data))

    def test_truncated_payload_detected(self, small_index):
        from repro.index.serialization import CorruptedIndexError

        data = serialize_index(small_index)
        with pytest.raises((CorruptedIndexError, ValueError)):
            deserialize_index(data[: len(data) // 2])

    def test_corruption_error_is_a_value_error(self):
        from repro.index.serialization import CorruptedIndexError

        assert issubclass(CorruptedIndexError, ValueError)

    def test_version1_payload_still_loads(self, small_index):
        restored = deserialize_index(self._v1_payload(small_index))
        assert restored.num_terms == small_index.num_terms
        assert restored.dictionary.terms() == small_index.dictionary.terms()

    def test_version1_corruption_not_reported_as_corrupt(self, small_index):
        """v1 has no checksum: a bad byte may parse or fail either way,

        but a clean parse is accepted (no integrity guarantee)."""
        from repro.index.serialization import CorruptedIndexError

        data = bytearray(self._v1_payload(small_index))
        data[-1] ^= 0x01
        try:
            deserialize_index(bytes(data))
        except CorruptedIndexError:
            pytest.fail("v1 payloads must not raise CorruptedIndexError")
        except ValueError:
            pass  # an unparseable v1 payload is a plain format error

    def test_positional_position_corruption_detected(self, small_collection):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            CorruptedIndexError,
            deserialize_positional_index,
            serialize_positional_index,
        )

        positional = PositionalIndexBuilder().build(small_collection)
        data = bytearray(serialize_positional_index(positional))
        data[-6] ^= 0x01  # inside the position section, before its crc
        with pytest.raises(CorruptedIndexError):
            deserialize_positional_index(bytes(data))

    def test_positional_base_corruption_detected(self, small_collection):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            CorruptedIndexError,
            deserialize_positional_index,
            serialize_positional_index,
        )

        positional = PositionalIndexBuilder().build(small_collection)
        data = bytearray(serialize_positional_index(positional))
        data[len(data) // 2] ^= 0x40  # in the embedded RIDX body
        with pytest.raises(CorruptedIndexError):
            deserialize_positional_index(bytes(data))
