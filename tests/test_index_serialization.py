"""Unit tests for index (de)serialization."""

import numpy as np
import pytest

from repro.index.serialization import (
    deserialize_index,
    load_index,
    save_index,
    serialize_index,
)
from repro.text.analyzer import Analyzer, AnalyzerConfig


class TestSerialization:
    def test_roundtrip_preserves_structure(self, small_index):
        restored = deserialize_index(serialize_index(small_index))
        assert restored.num_documents == small_index.num_documents
        assert restored.num_terms == small_index.num_terms
        assert restored.dictionary.terms() == small_index.dictionary.terms()
        assert np.array_equal(restored.doc_lengths, small_index.doc_lengths)

    def test_roundtrip_preserves_postings(self, small_index):
        restored = deserialize_index(serialize_index(small_index))
        for term in list(small_index.dictionary)[:100]:
            assert restored.postings_for(term) == small_index.postings_for(term)

    def test_roundtrip_preserves_analyzer_config(self, small_index):
        restored = deserialize_index(serialize_index(small_index))
        original = small_index.analyzer.config
        loaded = restored.analyzer.config
        assert loaded.lowercase == original.lowercase
        assert loaded.remove_stopwords == original.remove_stopwords
        assert loaded.stem == original.stem
        assert loaded.max_token_length == original.max_token_length

    def test_file_roundtrip(self, small_index, tmp_path):
        path = tmp_path / "index.ridx"
        written = save_index(small_index, path)
        assert path.stat().st_size == written
        restored = load_index(path)
        assert restored.num_terms == small_index.num_terms

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            deserialize_index(b"XXXX" + b"\x00" * 10)

    def test_bad_version_rejected(self, small_index):
        data = bytearray(serialize_index(small_index))
        data[4] = 99
        with pytest.raises(ValueError, match="version"):
            deserialize_index(bytes(data))

    def test_trailing_bytes_rejected(self, small_index):
        data = serialize_index(small_index) + b"junk"
        with pytest.raises(ValueError, match="trailing"):
            deserialize_index(data)

    def test_custom_stopwords_not_persistable(self, small_collection):
        from repro.index.builder import IndexBuilder

        analyzer = Analyzer(
            AnalyzerConfig(stopwords=frozenset({"custom"}))
        )
        index = IndexBuilder(analyzer).build(small_collection)
        with pytest.raises(ValueError, match="stopword"):
            serialize_index(index)

    def test_positional_roundtrip(self, small_collection, tmp_path):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            load_positional_index,
            save_positional_index,
        )

        positional = PositionalIndexBuilder().build(small_collection)
        path = tmp_path / "index.rixp"
        written = save_positional_index(positional, path)
        assert path.stat().st_size == written
        restored = load_positional_index(path)
        assert (
            restored.index.dictionary.terms()
            == positional.index.dictionary.terms()
        )
        for term in list(positional.index.dictionary)[:60]:
            original = positional.positions_for(term)
            loaded = restored.positions_for(term)
            assert np.array_equal(original.doc_ids, loaded.doc_ids)
            for doc_id in original.doc_ids[:5]:
                assert np.array_equal(
                    original.positions_in(int(doc_id)),
                    loaded.positions_in(int(doc_id)),
                )

    def test_loaded_positional_index_answers_phrases(
        self, small_collection, tmp_path
    ):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            load_positional_index,
            save_positional_index,
        )
        from repro.search.phrase import score_phrase

        positional = PositionalIndexBuilder().build(small_collection)
        path = tmp_path / "index.rixp"
        save_positional_index(positional, path)
        restored = load_positional_index(path)
        terms = positional.analyzer.analyze(small_collection[0].body)
        pair = (terms[0], terms[1])
        original_hits = score_phrase(positional, pair, k=20)
        loaded_hits = score_phrase(restored, pair, k=20)
        assert [h.doc_id for h in original_hits] == [
            h.doc_id for h in loaded_hits
        ]

    def test_positional_bad_magic(self):
        from repro.index.serialization import deserialize_positional_index

        with pytest.raises(ValueError, match="RIXP"):
            deserialize_positional_index(b"RIDX" + b"\x00" * 20)

    def test_positional_trailing_bytes_rejected(self, small_collection):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            deserialize_positional_index,
            serialize_positional_index,
        )

        positional = PositionalIndexBuilder().build(small_collection)
        data = serialize_positional_index(positional) + b"x"
        with pytest.raises(ValueError, match="trailing"):
            deserialize_positional_index(data)

    def test_loaded_index_searchable(self, small_index, small_query_log):
        from repro.search.executor import Searcher

        restored = deserialize_index(serialize_index(small_index))
        original_searcher = Searcher(small_index)
        restored_searcher = Searcher(restored)
        for query in list(small_query_log)[:10]:
            original = original_searcher.search(query.text)
            loaded = restored_searcher.search(query.text)
            assert original.doc_ids() == loaded.doc_ids()


class TestChecksum:
    """Version-2+ integrity verification (corrupted-postings detection)."""

    def _v1_payload(self, index) -> bytes:
        """A genuine version-1 payload (no checksum, no block section)."""
        return serialize_index(index, version=1)

    def test_current_version_is_three(self, small_index):
        assert serialize_index(small_index)[4] == 3

    def test_flipped_postings_byte_detected(self, small_index):
        from repro.index.serialization import CorruptedIndexError

        data = bytearray(serialize_index(small_index))
        data[-10] ^= 0x40
        with pytest.raises(CorruptedIndexError):
            deserialize_index(bytes(data))

    def test_flipped_header_adjacent_byte_detected(self, small_index):
        from repro.index.serialization import CorruptedIndexError

        data = bytearray(serialize_index(small_index))
        data[15] ^= 0x01  # early in the body (doc-length table)
        with pytest.raises(CorruptedIndexError):
            deserialize_index(bytes(data))

    def test_truncated_payload_detected(self, small_index):
        from repro.index.serialization import CorruptedIndexError

        data = serialize_index(small_index)
        with pytest.raises((CorruptedIndexError, ValueError)):
            deserialize_index(data[: len(data) // 2])

    def test_corruption_error_is_a_value_error(self):
        from repro.index.serialization import CorruptedIndexError

        assert issubclass(CorruptedIndexError, ValueError)

    def test_version1_payload_still_loads(self, small_index):
        restored = deserialize_index(self._v1_payload(small_index))
        assert restored.num_terms == small_index.num_terms
        assert restored.dictionary.terms() == small_index.dictionary.terms()

    def test_version1_corruption_not_reported_as_corrupt(self, small_index):
        """v1 has no checksum: a bad byte may parse or fail either way,

        but a clean parse is accepted (no integrity guarantee)."""
        from repro.index.serialization import CorruptedIndexError

        data = bytearray(self._v1_payload(small_index))
        data[-1] ^= 0x01
        try:
            deserialize_index(bytes(data))
        except CorruptedIndexError:
            pytest.fail("v1 payloads must not raise CorruptedIndexError")
        except ValueError:
            pass  # an unparseable v1 payload is a plain format error

    def test_positional_position_corruption_detected(self, small_collection):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            CorruptedIndexError,
            deserialize_positional_index,
            serialize_positional_index,
        )

        positional = PositionalIndexBuilder().build(small_collection)
        data = bytearray(serialize_positional_index(positional))
        data[-6] ^= 0x01  # inside the position section, before its crc
        with pytest.raises(CorruptedIndexError):
            deserialize_positional_index(bytes(data))

    def test_positional_base_corruption_detected(self, small_collection):
        from repro.index.positional import PositionalIndexBuilder
        from repro.index.serialization import (
            CorruptedIndexError,
            deserialize_positional_index,
            serialize_positional_index,
        )

        positional = PositionalIndexBuilder().build(small_collection)
        data = bytearray(serialize_positional_index(positional))
        data[len(data) // 2] ^= 0x40  # in the embedded RIDX body
        with pytest.raises(CorruptedIndexError):
            deserialize_positional_index(bytes(data))


class TestFormatVersions:
    """Version-3 block metadata plus v1/v2 backward compatibility."""

    def _block_index(self, small_collection, block_size=4):
        from repro.index.builder import IndexBuilder

        return IndexBuilder(block_size=block_size).build(small_collection)

    def test_unsupported_write_version_rejected(self, small_index):
        with pytest.raises(ValueError, match="version"):
            serialize_index(small_index, version=4)

    def test_version2_payload_still_loads(self, small_index):
        data = serialize_index(small_index, version=2)
        assert data[4] == 2
        restored = deserialize_index(data)
        assert restored.num_terms == small_index.num_terms
        assert restored.dictionary.terms() == small_index.dictionary.terms()

    def test_version2_corruption_still_detected(self, small_index):
        from repro.index.serialization import CorruptedIndexError

        data = bytearray(serialize_index(small_index, version=2))
        data[-10] ^= 0x40
        with pytest.raises(CorruptedIndexError):
            deserialize_index(bytes(data))

    def test_v3_roundtrip_preserves_block_metadata(self, small_collection):
        index = self._block_index(small_collection)
        restored = deserialize_index(serialize_index(index))
        assert restored.block_size == index.block_size
        for term_id in range(index.num_terms):
            original = index.block_metadata_for_id(term_id)
            loaded = restored.block_metadata_for_id(term_id)
            assert np.array_equal(original.last_doc_ids, loaded.last_doc_ids)
            assert np.array_equal(
                original.max_frequencies, loaded.max_frequencies
            )
            assert np.array_equal(
                original.min_doc_lengths, loaded.min_doc_lengths
            )

    def test_legacy_payloads_derive_block_metadata_lazily(
        self, small_collection
    ):
        index = self._block_index(small_collection, block_size=128)
        for version in (1, 2):
            restored = deserialize_index(
                serialize_index(index, version=version)
            )
            for term_id in range(min(index.num_terms, 50)):
                original = index.block_metadata_for_id(term_id)
                derived = restored.block_metadata_for_id(term_id)
                assert np.array_equal(
                    original.last_doc_ids, derived.last_doc_ids
                )
                assert np.array_equal(
                    original.max_frequencies, derived.max_frequencies
                )

    def test_every_version_searches_identically(
        self, small_index, small_query_log
    ):
        from repro.search.executor import Searcher

        searchers = {
            version: Searcher(
                deserialize_index(serialize_index(small_index, version=version)),
                algorithm="block_max_wand",
            )
            for version in (1, 2, 3)
        }
        baseline = Searcher(small_index)
        for query in list(small_query_log)[:10]:
            expected = baseline.search(query.text)
            for version, searcher in searchers.items():
                result = searcher.search(query.text)
                assert result.doc_ids() == expected.doc_ids(), version
                assert result.scores() == expected.scores(), version
