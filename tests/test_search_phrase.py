"""Tests for phrase query evaluation."""

import numpy as np
import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.positional import PositionalIndexBuilder
from repro.search.phrase import parse_phrase, phrase_frequency, score_phrase
from repro.text.analyzer import Analyzer, AnalyzerConfig

PLAIN = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))


def build(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return PositionalIndexBuilder(PLAIN).build(collection)


@pytest.fixture(scope="module")
def positional():
    return build(
        [
            "new york city",             # 0: phrase at 0
            "york new jersey",           # 1: terms present, wrong order
            "the new great york",        # 2: terms present, gap
            "new york new york",         # 3: phrase twice
            "completely unrelated text", # 4
        ]
    )


class TestPhraseFrequency:
    def test_single_occurrence(self):
        assert phrase_frequency([np.array([0]), np.array([1])]) == 1

    def test_no_occurrence(self):
        assert phrase_frequency([np.array([0]), np.array([5])]) == 0

    def test_multiple_occurrences(self):
        assert (
            phrase_frequency([np.array([0, 2]), np.array([1, 3])]) == 2
        )

    def test_three_term_phrase(self):
        assert (
            phrase_frequency(
                [np.array([4]), np.array([5]), np.array([6])]
            )
            == 1
        )

    def test_empty(self):
        assert phrase_frequency([]) == 0


class TestScorePhrase:
    def test_matches_only_consecutive_in_order(self, positional):
        hits = score_phrase(positional, ("new", "york"))
        assert sorted(hit.doc_id for hit in hits) == [0, 3]

    def test_phrase_frequency_boosts_score(self, positional):
        hits = score_phrase(positional, ("new", "york"))
        by_doc = {hit.doc_id: hit.score for hit in hits}
        assert by_doc[3] > by_doc[0]  # two occurrences beat one

    def test_three_term_phrase(self, positional):
        hits = score_phrase(positional, ("new", "york", "city"))
        assert [hit.doc_id for hit in hits] == [0]

    def test_missing_term_empty(self, positional):
        assert score_phrase(positional, ("new", "zealand")) == []

    def test_single_term_degenerates_to_term_query(self, positional):
        hits = score_phrase(positional, ("york",))
        assert sorted(hit.doc_id for hit in hits) == [0, 1, 2, 3]

    def test_empty_phrase(self, positional):
        assert score_phrase(positional, ()) == []

    def test_k_limits(self, positional):
        hits = score_phrase(positional, ("new",), k=2)
        assert len(hits) == 2

    def test_invalid_k(self, positional):
        with pytest.raises(ValueError):
            score_phrase(positional, ("new",), k=0)

    def test_parse_phrase_keeps_order_and_duplicates(self):
        assert parse_phrase(PLAIN, "new york new") == ("new", "york", "new")

    def test_phrase_subset_of_conjunctive_results(self, small_collection):
        """Every phrase match must also be an AND match — the phrase
        adds the adjacency constraint on top."""
        from repro.index.positional import PositionalIndexBuilder
        from repro.search.daat import score_daat
        from repro.search.query import ParsedQuery, QueryMode

        positional = PositionalIndexBuilder().build(small_collection)
        # Take adjacent term pairs from real documents so phrases exist.
        analyzer = positional.analyzer
        checked = 0
        for document in list(small_collection)[:40]:
            terms = analyzer.analyze(document.text)
            if len(terms) < 2:
                continue
            pair = (terms[0], terms[1])
            if pair[0] == pair[1]:
                continue
            phrase_hits = score_phrase(positional, pair, k=100)
            and_hits = score_daat(
                positional.index,
                ParsedQuery(terms=pair, mode=QueryMode.AND, k=10_000),
            )
            assert set(h.doc_id for h in phrase_hits) <= set(
                h.doc_id for h in and_hits
            )
            assert document.doc_id in {h.doc_id for h in phrase_hits}
            checked += 1
            if checked >= 10:
                break
        assert checked >= 5
