"""Unit tests for the simulated fork-join server."""

import numpy as np
import pytest

from repro.cluster.results import QueryRecord
from repro.cluster.server import PartitionModelConfig, SimulatedServer
from repro.servers.spec import ServerSpec
from repro.sim.engine import Simulator

IDEAL = PartitionModelConfig(
    num_partitions=1,
    partition_overhead=0.0,
    merge_base=0.0,
    merge_per_partition=0.0,
)


def make_server(sim, completions, partitions=IDEAL, cores=4, speed=1.0):
    spec = ServerSpec(
        name="test",
        num_cores=cores,
        core_speed=speed,
        idle_power_watts=0.0,
        peak_power_watts=1.0,
    )
    return SimulatedServer(
        sim,
        spec,
        partitions,
        imbalance_rng=np.random.default_rng(0),
        on_complete=completions.append,
    )


def submit(sim, server, arrival, demand, query_id=0):
    record = QueryRecord(query_id=query_id, client_send=arrival, demand=demand)
    sim.schedule(arrival, server.handle_arrival, record)
    return record


class TestSimulatedServerSinglePartition:
    def test_unloaded_latency_equals_demand(self):
        sim = Simulator()
        done = []
        server = make_server(sim, done)
        record = submit(sim, server, arrival=1.0, demand=0.5)
        sim.run()
        assert len(done) == 1
        assert record.merge_end == pytest.approx(1.5)
        assert record.queue_wait == pytest.approx(0.0)
        assert record.straggler_skew == pytest.approx(0.0)

    def test_speed_scales_latency(self):
        sim = Simulator()
        done = []
        server = make_server(sim, done, speed=0.5)
        record = submit(sim, server, arrival=0.0, demand=1.0)
        sim.run()
        assert record.merge_end == pytest.approx(2.0)

    def test_queueing_under_overload(self):
        sim = Simulator()
        done = []
        server = make_server(sim, done, cores=1)
        first = submit(sim, server, 0.0, 1.0, query_id=0)
        second = submit(sim, server, 0.1, 1.0, query_id=1)
        sim.run()
        assert first.queue_wait == pytest.approx(0.0)
        assert second.queue_wait == pytest.approx(0.9)
        assert second.merge_end == pytest.approx(2.0)


class TestSimulatedServerPartitioned:
    def test_partitioning_shortens_unloaded_latency(self):
        # One long query on an idle server: P=4 cuts service ~4x.
        latencies = {}
        for partitions in (1, 4):
            sim = Simulator()
            done = []
            config = PartitionModelConfig(
                num_partitions=partitions,
                partition_overhead=0.0,
                imbalance_concentration=1e6,  # nearly even split
                merge_base=0.0,
                merge_per_partition=0.0,
            )
            server = make_server(sim, done, partitions=config, cores=4)
            record = submit(sim, server, 0.0, 1.0)
            sim.run()
            latencies[partitions] = record.merge_end
        assert latencies[4] == pytest.approx(latencies[1] / 4, rel=0.05)

    def test_more_partitions_than_cores_serializes(self):
        sim = Simulator()
        done = []
        config = PartitionModelConfig(
            num_partitions=8,
            partition_overhead=0.0,
            imbalance_concentration=1e6,
            merge_base=0.0,
            merge_per_partition=0.0,
        )
        server = make_server(sim, done, partitions=config, cores=2)
        record = submit(sim, server, 0.0, 1.0)
        sim.run()
        # 8 tasks of 1/8 each on 2 cores: 4 waves -> 0.5 total.
        assert record.merge_end == pytest.approx(0.5, rel=0.05)

    def test_overhead_inflates_total_work(self):
        config = PartitionModelConfig(
            num_partitions=4, partition_overhead=0.01,
            merge_base=0.005, merge_per_partition=0.001,
        )
        assert config.total_work(1.0) == pytest.approx(1.0 + 0.04 + 0.009)

    def test_merge_runs_after_last_task(self):
        sim = Simulator()
        done = []
        config = PartitionModelConfig(
            num_partitions=2,
            partition_overhead=0.0,
            merge_base=0.1,
            merge_per_partition=0.0,
        )
        server = make_server(sim, done, partitions=config, cores=4)
        record = submit(sim, server, 0.0, 1.0)
        sim.run()
        assert record.merge_start >= record.last_task_end
        assert record.merge_end == pytest.approx(record.merge_start + 0.1)

    def test_imbalance_creates_skew(self):
        sim = Simulator()
        done = []
        config = PartitionModelConfig(
            num_partitions=4,
            partition_overhead=0.0,
            imbalance_concentration=2.0,  # very uneven
            merge_base=0.0,
            merge_per_partition=0.0,
        )
        server = make_server(sim, done, partitions=config, cores=4)
        record = submit(sim, server, 0.0, 1.0)
        sim.run()
        assert record.straggler_skew > 0.0

    def test_work_shares_sum_to_one(self):
        sim = Simulator()
        server = make_server(sim, [], partitions=PartitionModelConfig(
            num_partitions=8))
        shares = server._work_shares(8)
        assert shares.sum() == pytest.approx(1.0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PartitionModelConfig(num_partitions=0)
        with pytest.raises(ValueError):
            PartitionModelConfig(partition_overhead=-1.0)
        with pytest.raises(ValueError):
            PartitionModelConfig(imbalance_concentration=0.0)
        with pytest.raises(ValueError):
            PartitionModelConfig(merge_base=-0.1)


class TestTraversalCostModel:
    def test_default_is_exhaustive(self):
        from repro.search.strategy import TraversalStrategy

        config = PartitionModelConfig()
        assert config.traversal is TraversalStrategy.EXHAUSTIVE
        assert config.effective_demand(2.0) == 2.0

    def test_string_traversal_coerced(self):
        from repro.search.strategy import TraversalStrategy

        config = PartitionModelConfig(traversal="block-max-wand")
        assert config.traversal is TraversalStrategy.BLOCK_MAX_WAND

    def test_unknown_traversal_rejected(self):
        with pytest.raises(ValueError):
            PartitionModelConfig(traversal="magic")

    def test_pruning_factor_validated(self):
        with pytest.raises(ValueError):
            PartitionModelConfig(pruning_factor=0.0)
        with pytest.raises(ValueError):
            PartitionModelConfig(pruning_factor=1.5)

    def test_pruning_scales_demand(self):
        config = PartitionModelConfig(traversal="wand", pruning_factor=0.4)
        assert config.effective_demand(2.0) == pytest.approx(0.8)

    def test_pruning_factor_ignored_for_exhaustive(self):
        config = PartitionModelConfig(
            traversal="exhaustive", pruning_factor=0.4
        )
        assert config.effective_demand(2.0) == 2.0

    def test_total_work_scales_only_scoring_demand(self):
        exhaustive = PartitionModelConfig(
            num_partitions=4, traversal="exhaustive"
        )
        pruned = PartitionModelConfig(
            num_partitions=4, traversal="wand", pruning_factor=0.5
        )
        # Overheads and merge are posting-volume independent.
        saved = exhaustive.total_work(1.0) - pruned.total_work(1.0)
        assert saved == pytest.approx(0.5)

    def test_pruned_latency_beats_exhaustive(self):
        results = {}
        for traversal in ("exhaustive", "wand"):
            sim = Simulator()
            completions = []
            config = PartitionModelConfig(
                num_partitions=1,
                partition_overhead=0.0,
                merge_base=0.0,
                merge_per_partition=0.0,
                traversal=traversal,
                pruning_factor=0.5,
            )
            server = make_server(sim, completions, partitions=config)
            record = submit(sim, server, 0.0, 1.0)
            sim.run()
            results[traversal] = record.merge_end
        assert results["wand"] == pytest.approx(results["exhaustive"] / 2)

    def test_pruning_counters_recorded(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        sim = Simulator()
        spec = ServerSpec(
            name="test",
            num_cores=2,
            core_speed=1.0,
            idle_power_watts=0.0,
            peak_power_watts=1.0,
        )
        config = PartitionModelConfig(traversal="wand", pruning_factor=0.25)
        server = SimulatedServer(
            sim,
            spec,
            config,
            imbalance_rng=np.random.default_rng(0),
            metrics=registry,
        )
        submit(sim, server, 0.0, 2.0)
        sim.run()
        assert registry.counter("sim.wand.queries_pruned").value == 1
        assert registry.counter(
            "sim.wand.demand_saved_s"
        ).value == pytest.approx(1.5)
