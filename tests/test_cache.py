"""Unit + property tests for the LRU and query result caches."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.cache.querycache import QueryResultCache, make_cache_key
from repro.search.query import ParsedQuery, QueryMode
from repro.search.topk import SearchHit


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_miss_returns_default(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        assert cache.get("missing", default=42) == 42
        assert cache.stats.misses == 2

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts "b", not "a"
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite, no eviction
        cache.put("c", 3)  # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_capacity_never_exceeded(self):
        cache = LRUCache(3)
        for key in range(10):
            cache.put(key, key)
        assert len(cache) == 3

    def test_contains_does_not_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        _ = "a" in cache
        assert cache.stats.lookups == 0

    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_no_lookups(self):
        assert LRUCache(1).stats.hit_rate == 0.0

    def test_clear_keeps_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_cached_none_is_a_hit(self):
        cache = LRUCache(2)
        cache.put("a", None)
        assert cache.get("a") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_keys_in_lru_order(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ["b", "a"]

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=200
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_capacity_invariant_and_freshness(self, operations, capacity):
        cache = LRUCache(capacity)
        reference = {}
        for key, value in operations:
            cache.put(key, value)
            reference[key] = value
            assert len(cache) <= capacity
        # Every retained entry carries its most recent value.
        for key in cache.keys():
            assert cache.get(key) == reference[key]


class TestQueryResultCache:
    def _query(self, terms=("web", "search"), k=10, mode=QueryMode.OR):
        return ParsedQuery(terms=tuple(terms), k=k, mode=mode)

    def test_store_lookup(self):
        cache = QueryResultCache(4)
        hits = (SearchHit(score=1.0, doc_id=3),)
        cache.store(self._query(), hits)
        assert cache.lookup(self._query()) == hits

    def test_key_includes_k_and_mode(self):
        cache = QueryResultCache(4)
        cache.store(self._query(k=10), (SearchHit(score=1.0, doc_id=1),))
        assert cache.lookup(self._query(k=5)) is None
        assert cache.lookup(self._query(mode=QueryMode.AND)) is None

    def test_key_function(self):
        key = make_cache_key(self._query())
        assert key == (("web", "search"), 10, "or")

    def test_miss(self):
        assert QueryResultCache(2).lookup(self._query()) is None

    def test_clear(self):
        cache = QueryResultCache(2)
        cache.store(self._query(), ())
        cache.clear()
        assert cache.lookup(self._query()) is None

    def test_stats_exposed(self):
        cache = QueryResultCache(2)
        cache.lookup(self._query())
        assert cache.stats.misses == 1


class TestIsnCacheIntegration:
    def test_cached_response_matches_uncached(
        self, small_collection, small_query_log
    ):
        from repro.engine.isn import IndexServingNode
        from repro.index.partitioner import partition_index

        cache = QueryResultCache(64)
        partitioned = partition_index(small_collection, 2)
        with IndexServingNode(partitioned, cache=cache) as isn:
            query = small_query_log[0]
            first = isn.execute(query.text)
            assert cache.stats.misses >= 1
            second = isn.execute(query.text)
            assert cache.stats.hits >= 1
            assert second.hits == first.hits
            # Cache hits skip the fan-out entirely.
            assert second.timings.shard_seconds == []

    def test_serial_path_bypasses_cache(self, small_collection, small_query_log):
        from repro.engine.isn import IndexServingNode
        from repro.index.partitioner import partition_index

        cache = QueryResultCache(64)
        partitioned = partition_index(small_collection, 2)
        with IndexServingNode(partitioned, cache=cache) as isn:
            query = small_query_log[1]
            isn.execute_serial(query.text)
            isn.execute_serial(query.text)
            assert cache.stats.lookups == 0
