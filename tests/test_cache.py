"""Unit + property tests for the LRU and query result caches."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.lru import LRUCache
from repro.cache.querycache import CachedPage, QueryResultCache, make_cache_key
from repro.search.query import ParsedQuery, QueryMode
from repro.search.topk import SearchHit


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.hits == 1

    def test_miss_returns_default(self):
        cache = LRUCache(2)
        assert cache.get("missing") is None
        assert cache.get("missing", default=42) == 42
        assert cache.stats.misses == 2

    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts "a"
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts "b", not "a"
        assert "a" in cache
        assert "b" not in cache

    def test_put_refreshes_recency(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # overwrite, no eviction
        cache.put("c", 3)  # evicts "b"
        assert cache.get("a") == 10
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_capacity_never_exceeded(self):
        cache = LRUCache(3)
        for key in range(10):
            cache.put(key, key)
        assert len(cache) == 3

    def test_contains_does_not_count(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        _ = "a" in cache
        assert cache.stats.lookups == 0

    def test_hit_rate(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_no_lookups(self):
        assert LRUCache(1).stats.hit_rate == 0.0

    def test_clear_keeps_stats(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_cached_none_is_a_hit(self):
        cache = LRUCache(2)
        cache.put("a", None)
        assert cache.get("a") is None
        assert cache.stats.hits == 1
        assert cache.stats.misses == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_keys_in_lru_order(self):
        cache = LRUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ["b", "a"]

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 100)), max_size=200
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_capacity_invariant_and_freshness(self, operations, capacity):
        cache = LRUCache(capacity)
        reference = {}
        for key, value in operations:
            cache.put(key, value)
            reference[key] = value
            assert len(cache) <= capacity
        # Every retained entry carries its most recent value.
        for key in cache.keys():
            assert cache.get(key) == reference[key]

    def test_put_reports_eviction_count(self):
        cache = LRUCache(2)
        assert cache.put("a", 1) == 0
        assert cache.put("b", 2) == 0
        assert cache.put("a", 10) == 0  # overwrite: nothing evicted
        assert cache.put("c", 3) == 1  # "b" falls out


class TestLRUCacheThreadSafety:
    """Regression for the unsynchronized OrderedDict mutation bug.

    ISN worker threads used to race ``move_to_end``/``popitem``; under
    contention the cache could over-evict past capacity, corrupt the
    recency order, or raise ``KeyError`` from ``move_to_end`` on a key
    another thread had just evicted.
    """

    def test_concurrent_put_get_stress(self):
        capacity = 16
        cache = LRUCache(capacity)
        errors = []
        barrier = threading.Barrier(8)

        def hammer(seed):
            try:
                barrier.wait()
                for i in range(2000):
                    key = (seed * 7 + i * 13) % 64
                    cache.put(key, (seed, i))
                    cache.get((seed + i) % 64)
                    if i % 50 == 0:
                        assert len(cache) <= capacity
                        cache.keys()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(cache) <= capacity
        # Recency order survived: keys() is consistent and every entry
        # is still retrievable.
        for key in cache.keys():
            assert cache.get(key) is not None

    def test_concurrent_eviction_accounting(self):
        cache = LRUCache(4)
        evictions = []
        barrier = threading.Barrier(4)

        def writer(seed):
            barrier.wait()
            local = 0
            for i in range(1000):
                local += cache.put((seed, i), i)
            evictions.append(local)

        threads = [
            threading.Thread(target=writer, args=(seed,)) for seed in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # 4000 distinct inserts into capacity 4: all but the survivors
        # were evicted, and every eviction was attributed exactly once.
        assert sum(evictions) == 4000 - len(cache)
        assert cache.stats.evictions == sum(evictions)


class TestQueryResultCache:
    def _query(self, terms=("web", "search"), k=10, mode=QueryMode.OR):
        return ParsedQuery(terms=tuple(terms), k=k, mode=mode)

    def test_store_lookup(self):
        cache = QueryResultCache(4)
        hits = (SearchHit(score=1.0, doc_id=3),)
        cache.store(self._query(), hits)
        assert cache.lookup(self._query()) == hits

    def test_key_includes_k_and_mode(self):
        cache = QueryResultCache(4)
        cache.store(self._query(k=10), (SearchHit(score=1.0, doc_id=1),))
        assert cache.lookup(self._query(k=5)) is None
        assert cache.lookup(self._query(mode=QueryMode.AND)) is None

    def test_key_function(self):
        key = make_cache_key(self._query())
        assert key == (("web", "search"), 10, "or")

    def test_miss(self):
        assert QueryResultCache(2).lookup(self._query()) is None

    def test_clear(self):
        cache = QueryResultCache(2)
        cache.store(self._query(), ())
        cache.clear()
        assert cache.lookup(self._query()) is None

    def test_stats_exposed(self):
        cache = QueryResultCache(2)
        cache.lookup(self._query())
        assert cache.stats.misses == 1

    def test_entry_carries_matched_volume(self):
        cache = QueryResultCache(4)
        hits = (SearchHit(score=1.0, doc_id=3),)
        cache.store(self._query(), hits, matched_volume=57)
        entry = cache.lookup_entry(self._query())
        assert isinstance(entry, CachedPage)
        assert entry.hits == hits
        assert entry.matched_volume == 57

    def test_lookup_still_returns_bare_hits(self):
        cache = QueryResultCache(4)
        hits = (SearchHit(score=2.0, doc_id=7),)
        cache.store(self._query(), hits, matched_volume=3)
        assert cache.lookup(self._query()) == hits


class TestIsnCacheIntegration:
    def test_cached_response_matches_uncached(
        self, small_collection, small_query_log
    ):
        from repro.engine.isn import IndexServingNode
        from repro.index.partitioner import partition_index

        cache = QueryResultCache(64)
        partitioned = partition_index(small_collection, 2)
        with IndexServingNode(partitioned, cache=cache) as isn:
            query = small_query_log[0]
            first = isn.execute(query.text)
            assert cache.stats.misses >= 1
            second = isn.execute(query.text)
            assert cache.stats.hits >= 1
            assert second.hits == first.hits
            # Cache hits skip the fan-out entirely.
            assert second.timings.shard_seconds == []

    def test_cached_response_preserves_matched_volume(
        self, small_collection, small_query_log
    ):
        """Regression: cache hits used to respond with matched_volume=0."""
        from repro.engine.isn import IndexServingNode
        from repro.index.partitioner import partition_index

        cache = QueryResultCache(64)
        partitioned = partition_index(small_collection, 2)
        with IndexServingNode(partitioned, cache=cache) as isn:
            query = small_query_log[0]
            first = isn.execute(query.text)
            assert first.matched_volume > 0
            assert first.cached is False
            second = isn.execute(query.text)
            assert second.cached is True
            assert second.matched_volume == first.matched_volume

    def test_serial_path_bypasses_cache(self, small_collection, small_query_log):
        from repro.engine.isn import IndexServingNode
        from repro.index.partitioner import partition_index

        cache = QueryResultCache(64)
        partitioned = partition_index(small_collection, 2)
        with IndexServingNode(partitioned, cache=cache) as isn:
            query = small_query_log[1]
            isn.execute_serial(query.text)
            isn.execute_serial(query.text)
            assert cache.stats.lookups == 0
