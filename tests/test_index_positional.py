"""Tests for positional indexing."""

import numpy as np
import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.positional import (
    PositionalIndexBuilder,
    PositionalPostings,
)
from repro.text.analyzer import Analyzer, AnalyzerConfig

PLAIN = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))


def make_collection(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return collection


class TestPositionalPostings:
    def test_positions_lookup(self):
        postings = PositionalPostings(
            [1, 5], [np.array([0, 4]), np.array([2])]
        )
        assert list(postings.positions_in(1)) == [0, 4]
        assert list(postings.positions_in(5)) == [2]
        assert postings.positions_in(3) is None

    def test_to_postings(self):
        postings = PositionalPostings(
            [1, 5], [np.array([0, 4]), np.array([2])]
        )
        projected = postings.to_postings()
        assert projected.pairs() == [(1, 2), (5, 1)]

    def test_validation(self):
        with pytest.raises(ValueError):
            PositionalPostings([1], [])
        with pytest.raises(ValueError):
            PositionalPostings([2, 1], [np.array([0]), np.array([0])])
        with pytest.raises(ValueError):
            PositionalPostings([1], [np.array([])])


class TestPositionalIndexBuilder:
    def test_positions_recorded(self):
        positional = PositionalIndexBuilder(PLAIN).build(
            make_collection(["aa bb aa cc"])
        )
        aa = positional.positions_for("aa")
        assert list(aa.positions_in(0)) == [0, 2]
        bb = positional.positions_for("bb")
        assert list(bb.positions_in(0)) == [1]

    def test_title_offsets_body(self):
        collection = DocumentCollection()
        collection.add(Document(0, "u", "title words", "body text"))
        positional = PositionalIndexBuilder(PLAIN).build(collection)
        # Title tokens come first in the analyzed stream.
        assert list(positional.positions_for("title").positions_in(0)) == [0]
        assert list(positional.positions_for("body").positions_in(0)) == [2]

    def test_unknown_term(self):
        positional = PositionalIndexBuilder(PLAIN).build(
            make_collection(["xx"])
        )
        assert positional.positions_for("zz") is None

    def test_frequency_index_agrees_with_plain_builder(self, small_collection):
        positional = PositionalIndexBuilder().build(small_collection)
        plain = IndexBuilder().build(small_collection)
        assert positional.index.dictionary.terms() == plain.dictionary.terms()
        for term in list(plain.dictionary)[:100]:
            assert positional.index.postings_for(term) == plain.postings_for(
                term
            )

    def test_positions_consistent_with_frequencies(self, small_collection):
        positional = PositionalIndexBuilder().build(small_collection)
        for term in list(positional.index.dictionary)[:50]:
            postings = positional.positions_for(term)
            assert postings.to_postings() == positional.index.postings_for(
                term
            )
