"""Tests for the multi-server fan-out simulation and scaling study."""

import numpy as np
import pytest

from repro.cluster.fanout import FanoutConfig, run_fanout_open_loop
from repro.cluster.server import PartitionModelConfig
from repro.core.fanout import fanout_scaling_study
from repro.servers.catalog import BIG_SERVER
from repro.sim.network import LognormalDelay
from repro.workload.arrivals import PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.0, sigma=0.6)

IDEAL_PARTITIONING = PartitionModelConfig(
    num_partitions=1,
    partition_overhead=0.0,
    merge_base=0.0,
    merge_per_partition=0.0,
)


def scenario(rate=50.0, num_queries=2_000):
    return WorkloadScenario(
        arrivals=PoissonArrivals(rate), demands=DEMAND, num_queries=num_queries
    )


class TestRunFanoutOpenLoop:
    def test_all_queries_complete(self):
        config = FanoutConfig(num_servers=4, spec=BIG_SERVER)
        result = run_fanout_open_loop(config, scenario())
        assert len(result) == 2_000
        assert result.num_servers == 4

    def test_deterministic(self):
        config = FanoutConfig(num_servers=3, spec=BIG_SERVER)
        first = run_fanout_open_loop(config, scenario(), seed=7)
        second = run_fanout_open_loop(config, scenario(), seed=7)
        assert np.array_equal(first.latencies(), second.latencies())

    def test_single_server_matches_single_node_sim(self):
        """N=1 fan-out must equal the plain single-server simulation."""
        from repro.cluster.simulation import ClusterConfig, run_open_loop

        fanout = run_fanout_open_loop(
            FanoutConfig(
                num_servers=1,
                spec=BIG_SERVER,
                partitioning=IDEAL_PARTITIONING,
                broker_merge_per_server=0.0,
            ),
            scenario(),
            seed=0,
        )
        single = run_open_loop(
            ClusterConfig(spec=BIG_SERVER, partitioning=IDEAL_PARTITIONING),
            scenario(),
            seed=0,
        )
        assert np.allclose(fanout.latencies(), single.latencies())

    def test_sharding_cuts_median_latency(self):
        narrow = run_fanout_open_loop(
            FanoutConfig(
                num_servers=1, spec=BIG_SERVER,
                partitioning=IDEAL_PARTITIONING,
            ),
            scenario(),
            seed=0,
        )
        wide = run_fanout_open_loop(
            FanoutConfig(
                num_servers=8, spec=BIG_SERVER,
                partitioning=IDEAL_PARTITIONING,
            ),
            scenario(),
            seed=0,
        )
        assert wide.summary().p50 < 0.3 * narrow.summary().p50

    def test_fanout_skew_exists_with_network_jitter(self):
        config = FanoutConfig(
            num_servers=4,
            spec=BIG_SERVER,
            network=LognormalDelay(median=0.0005, sigma=0.5),
        )
        result = run_fanout_open_loop(config, scenario(num_queries=500))
        assert result.mean_fanout_skew() > 0

    def test_no_skew_single_server(self):
        config = FanoutConfig(
            num_servers=1, spec=BIG_SERVER,
            partitioning=IDEAL_PARTITIONING,
        )
        result = run_fanout_open_loop(config, scenario(num_queries=300))
        assert result.mean_fanout_skew() == 0.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FanoutConfig(num_servers=0, spec=BIG_SERVER)
        with pytest.raises(ValueError):
            FanoutConfig(
                num_servers=1, spec=BIG_SERVER, broker_merge_per_server=-1.0
            )

    def test_warmup_filtering(self):
        config = FanoutConfig(num_servers=2, spec=BIG_SERVER)
        result = run_fanout_open_loop(config, scenario(num_queries=1_000))
        assert result.latencies(0.5).size == 500
        with pytest.raises(ValueError):
            result.latencies(1.0)


class TestFanoutScalingStudy:
    def test_tail_at_scale_shape(self):
        """Latency improves with N, but sublinearly: the broker waits
        for the slowest node, so skew eats the speedup."""
        points = fanout_scaling_study(
            BIG_SERVER,
            DEMAND,
            server_counts=[1, 4, 16],
            rate_qps=40.0,
            partitioning=PartitionModelConfig(
                num_partitions=1,
                partition_overhead=0.0002,
                imbalance_concentration=10.0,
                merge_base=0.0,
                merge_per_partition=0.0,
            ),
            network=LognormalDelay(median=0.0003, sigma=0.4),
            num_queries=3_000,
        )
        p50s = [p.summary.p50 for p in points]
        assert p50s[2] < p50s[1] < p50s[0]
        # Sublinear sharding: 16 servers give less than 16x on p50.
        assert p50s[0] / p50s[2] < 16
        # Skew grows as a fraction of latency with cluster width.
        assert points[2].skew_fraction > points[1].skew_fraction
        assert points[1].skew_fraction > points[0].skew_fraction

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            fanout_scaling_study(BIG_SERVER, DEMAND, [], rate_qps=10.0)
        with pytest.raises(ValueError):
            fanout_scaling_study(BIG_SERVER, DEMAND, [1], rate_qps=0.0)
