"""Tests for snippet generation."""

import pytest

from repro.corpus.documents import Document
from repro.engine.snippets import SnippetGenerator
from repro.text.analyzer import Analyzer, AnalyzerConfig, default_analyzer

PLAIN = Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))


def doc(body, title=""):
    return Document(0, "u", title, body)


class TestSnippetGenerator:
    def test_highlights_query_terms(self):
        generator = SnippetGenerator(PLAIN, window_tokens=10)
        snippet = generator.snippet(
            doc("the quick brown fox jumps"), ["fox", "quick"]
        )
        assert "**quick**" in snippet.text
        assert "**fox**" in snippet.text
        assert snippet.matched_terms == 2

    def test_window_centers_on_matches(self):
        filler = " ".join(f"word{i}" for i in range(60))
        body = filler + " target phrase here " + filler
        generator = SnippetGenerator(PLAIN, window_tokens=8)
        snippet = generator.snippet(doc(body), ["target", "phrase"])
        assert "**target**" in snippet.text
        assert "**phrase**" in snippet.text
        assert snippet.window_start > 0
        assert snippet.text.startswith("… ")

    def test_no_match_returns_opening_window(self):
        generator = SnippetGenerator(PLAIN, window_tokens=5)
        snippet = generator.snippet(
            doc("one two three four five six seven"), ["absent"]
        )
        assert snippet.window_start == 0
        assert snippet.matched_terms == 0
        assert "**" not in snippet.text
        assert snippet.text.endswith(" …")

    def test_empty_document(self):
        generator = SnippetGenerator(PLAIN)
        snippet = generator.snippet(doc(""), ["x"])
        assert snippet.text == ""
        assert snippet.matched_terms == 0

    def test_short_document_no_ellipses(self):
        generator = SnippetGenerator(PLAIN, window_tokens=50)
        snippet = generator.snippet(doc("tiny body"), ["tiny"])
        assert not snippet.text.startswith("…")
        assert not snippet.text.endswith("…")

    def test_analyzer_normalization_highlights_variants(self):
        """A query term 'search' must highlight 'Searching' in the raw
        text — both normalize to the same index term."""
        generator = SnippetGenerator(default_analyzer(), window_tokens=10)
        snippet = generator.snippet(
            doc("Users are Searching constantly"), ["search"]
        )
        assert "**Searching**" in snippet.text

    def test_prefers_window_with_more_distinct_terms(self):
        body = (
            "alpha filler filler filler filler filler filler filler "
            "filler filler alpha beta"
        )
        generator = SnippetGenerator(PLAIN, window_tokens=4)
        snippet = generator.snippet(doc(body), ["alpha", "beta"])
        assert snippet.matched_terms == 2

    def test_title_participates(self):
        generator = SnippetGenerator(PLAIN, window_tokens=5)
        snippet = generator.snippet(
            doc("plain body text", title="Important Title"), ["important"]
        )
        assert "**Important**" in snippet.text

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SnippetGenerator(PLAIN, window_tokens=0)

    def test_end_to_end_with_service(self, small_collection, small_index):
        """Snippets for real search hits highlight real matches."""
        from repro.search.executor import Searcher

        searcher = Searcher(small_index)
        generator = SnippetGenerator(small_index.analyzer, window_tokens=20)
        term = None
        # Find a mid-frequency term to query.
        for candidate in small_index.dictionary:
            if 3 <= small_index.document_frequency(candidate) <= 20:
                term = candidate
                break
        assert term is not None
        result = searcher.search(term, k=3)
        assert result.hits
        for hit in result.hits:
            snippet = generator.snippet(
                small_collection[hit.doc_id], list(result.query.terms)
            )
            assert snippet.matched_terms >= 1
            assert "**" in snippet.text
