"""Tests for the GC-pause study."""

import pytest

from repro.cluster.server import PartitionModelConfig
from repro.core.hiccups import hiccup_study
from repro.servers.catalog import BIG_SERVER
from repro.sim.hiccups import HiccupConfig
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.0, sigma=0.6)
PAUSES = HiccupConfig(mean_interval=0.25, pause_duration=0.03)
COST_MODEL = PartitionModelConfig(
    partition_overhead=0.0003, merge_base=0.0002, merge_per_partition=0.0001
)


@pytest.fixture(scope="module")
def points():
    return hiccup_study(
        BIG_SERVER,
        DEMAND,
        partition_counts=[1, 8],
        rate_qps=100.0,
        hiccups=PAUSES,
        cost_model=COST_MODEL,
        num_queries=4_000,
    )


def select(points, num_partitions, enabled):
    return next(
        p.summary
        for p in points
        if p.num_partitions == num_partitions
        and p.hiccups_enabled == enabled
    )


class TestHiccupStudy:
    def test_point_count(self, points):
        assert len(points) == 4

    def test_pauses_inflate_the_tail(self, points):
        clean = select(points, 1, False)
        paused = select(points, 1, True)
        assert paused.p99 > clean.p99 + 0.5 * PAUSES.pause_duration

    def test_partitioning_helps_clean_tail(self, points):
        assert select(points, 8, False).p99 < select(points, 1, False).p99

    def test_pause_floor_survives_partitioning(self, points):
        """Partitioning cannot remove the pause-driven tail: with
        pauses on, p99 at P=8 stays at least a pause above the clean
        P=8 tail."""
        clean_p8 = select(points, 8, False)
        paused_p8 = select(points, 8, True)
        assert paused_p8.p99 > clean_p8.p99 + 0.5 * PAUSES.pause_duration

    def test_pause_tail_reduction_smaller_than_clean(self, points):
        """The relative tail win of partitioning shrinks under pauses."""
        clean_gain = select(points, 1, False).p99 / select(points, 8, False).p99
        paused_gain = select(points, 1, True).p99 / select(points, 8, True).p99
        assert paused_gain < clean_gain

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            hiccup_study(
                BIG_SERVER, DEMAND, [], rate_qps=10.0, hiccups=PAUSES
            )
        with pytest.raises(ValueError):
            hiccup_study(
                BIG_SERVER, DEMAND, [1], rate_qps=0.0, hiccups=PAUSES
            )
