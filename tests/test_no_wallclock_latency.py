"""Repo lint: no wall-clock timing in latency or deadline code.

``time.time()`` (and ``datetime.now()``) follow the wall clock, which
NTP can step forwards or backwards mid-query; a latency measured across
such a step is silently wrong, and a deadline can fire early, late, or
never.  Every duration measurement in this repo must use
``time.perf_counter()`` (highest resolution) or ``time.monotonic()``
(cheap, step-free) instead.

Audit record (2026-08): the sweep found wall-clock timing only in
``tests/test_hedging.py`` (two spin-wait loops, both converted to
``time.monotonic()``); ``src/`` and ``benchmarks/`` were already clean
— ``engine/isn.py``'s 35 timing sites all use ``perf_counter``.  This
test pins that state.

Scope: ``src/``, ``benchmarks/``, and ``tests/`` (a flaky test that
trusts the wall clock is still a bug).  Legitimate wall-clock use —
timestamps for display or log records, not durations — may be exempted
by adding ``# wallclock: ok`` on the offending line.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCANNED_DIRS = ("src", "benchmarks", "tests")

#: Wall-clock reads that must never time a latency or deadline.
_FORBIDDEN = re.compile(
    r"""
    \btime\.time\(\)
    | \bdatetime\.now\(
    | \bdatetime\.utcnow\(
    | \bdatetime\.datetime\.now\(
    """,
    re.VERBOSE,
)

_EXEMPT_MARKER = "# wallclock: ok"


def _violations():
    found = []
    for directory in SCANNED_DIRS:
        for path in sorted((REPO_ROOT / directory).rglob("*.py")):
            if path.name == Path(__file__).name:
                continue  # this file quotes the forbidden patterns
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            ):
                if _EXEMPT_MARKER in line:
                    continue
                stripped = line.split("#", 1)[0]
                if _FORBIDDEN.search(stripped):
                    found.append(
                        f"{path.relative_to(REPO_ROOT)}:{number}: "
                        f"{line.strip()}"
                    )
    return found


def test_no_wallclock_in_timing_code():
    violations = _violations()
    assert not violations, (
        "wall-clock timing calls found — use time.perf_counter() or "
        "time.monotonic() for durations/deadlines, or append "
        f"'{_EXEMPT_MARKER}' for a genuine timestamp:\n"
        + "\n".join(violations)
    )


def test_lint_actually_detects(tmp_path, monkeypatch):
    """The lint is live: a planted violation is caught, an exempted or
    commented one is not."""
    planted = tmp_path / "src"
    planted.mkdir()
    (planted / "bad.py").write_text(
        "import time\n"
        "start = time.time()\n"
        "stamp = time.time()  # wallclock: ok\n"
        "# time.time() in a comment is fine\n"
    )
    monkeypatch.setattr(
        "tests.test_no_wallclock_latency.REPO_ROOT", tmp_path
    )
    monkeypatch.setattr(
        "tests.test_no_wallclock_latency.SCANNED_DIRS", ("src",)
    )
    violations = _violations()
    assert len(violations) == 1
    assert "bad.py:2" in violations[0]
