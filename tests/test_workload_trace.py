"""Tests for trace-driven arrivals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.trace import TraceArrivals, save_trace


@pytest.fixture()
def simple_trace():
    return TraceArrivals([0.0, 0.1, 0.3, 0.6])


class TestTraceArrivals:
    def test_replays_exactly(self, simple_trace, rng):
        times = simple_trace.arrival_times(3, rng)
        assert list(times) == [0.0, 0.1, 0.3]

    def test_rng_is_irrelevant(self, simple_trace):
        a = simple_trace.arrival_times(4, np.random.default_rng(1))
        b = simple_trace.arrival_times(4, np.random.default_rng(99))
        assert np.array_equal(a, b)

    def test_looping_extends_without_burst(self, simple_trace, rng):
        times = simple_trace.arrival_times(8, rng)
        assert times.size == 8
        assert np.all(np.diff(times) >= 0)
        # Second pass starts one mean gap after the first pass ends.
        assert times[4] > times[3]

    def test_loop_disabled_raises(self, rng):
        trace = TraceArrivals([0.0, 1.0], loop=False)
        with pytest.raises(ValueError, match="looping is disabled"):
            trace.arrival_times(5, rng)

    def test_rate_scale_compresses_time(self, rng):
        base = TraceArrivals([0.0, 1.0, 2.0])
        fast = TraceArrivals([0.0, 1.0, 2.0], rate_scale=2.0)
        assert fast.arrival_times(3, rng)[-1] == pytest.approx(
            base.arrival_times(3, rng)[-1] / 2.0
        )
        assert fast.mean_rate == pytest.approx(2 * base.mean_rate)

    def test_validation(self):
        with pytest.raises(ValueError):
            TraceArrivals([])
        with pytest.raises(ValueError):
            TraceArrivals([1.0, 0.5])
        with pytest.raises(ValueError):
            TraceArrivals([-1.0, 0.0])
        with pytest.raises(ValueError):
            TraceArrivals([0.0], rate_scale=0.0)

    def test_file_roundtrip(self, tmp_path, rng):
        path = tmp_path / "trace.txt"
        original = [0.0, 0.25, 0.75, 1.5]
        assert save_trace(original, path) == 4
        loaded = TraceArrivals.from_file(path)
        assert np.allclose(loaded.arrival_times(4, rng), original)

    def test_file_comments_and_blanks_skipped(self, tmp_path, rng):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n\n0.5\n1.5\n")
        trace = TraceArrivals.from_file(path)
        assert trace.trace_length == 2

    def test_file_bad_line_reported(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.5\nnot-a-number\n")
        with pytest.raises(ValueError, match="trace.txt:2"):
            TraceArrivals.from_file(path)

    # save_trace serializes at nanosecond precision ("%.9f"), so any
    # trace whose timestamps are coarser than that must survive the
    # file round trip bit-exactly after quantization.
    gaps_strategy = st.lists(
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
        min_size=1,
        max_size=200,
    )

    @given(gaps=gaps_strategy, rate_scale=st.sampled_from([0.5, 1.0, 4.0]))
    @settings(max_examples=60, deadline=None)
    def test_file_round_trip_property(self, gaps, rate_scale, tmp_path_factory):
        timestamps = np.round(np.cumsum(np.asarray(gaps)), 9)
        path = tmp_path_factory.mktemp("traces") / "trace.txt"
        assert save_trace(timestamps, path) == timestamps.size
        loaded = TraceArrivals.from_file(path, rate_scale=rate_scale)
        rng = np.random.default_rng(0)
        replayed = loaded.arrival_times(timestamps.size, rng)
        assert loaded.trace_length == timestamps.size
        assert np.allclose(
            replayed, timestamps / rate_scale, rtol=0.0, atol=1e-6
        )
        # Replay is order-preserving whatever the input spacing.
        assert np.all(np.diff(replayed) >= 0)

    def test_drives_a_simulation(self, rng):
        """A trace plugs into the open-loop runner as an ArrivalProcess."""
        from repro.cluster.simulation import ClusterConfig, run_open_loop
        from repro.servers.catalog import BIG_SERVER
        from repro.workload.scenario import WorkloadScenario
        from repro.workload.servicetime import LognormalDemand

        poisson_like = np.cumsum(
            np.random.default_rng(0).exponential(0.01, 500)
        )
        scenario = WorkloadScenario(
            arrivals=TraceArrivals(poisson_like),
            demands=LognormalDemand(-5.0, 0.5),
            num_queries=500,
        )
        result = run_open_loop(ClusterConfig(spec=BIG_SERVER), scenario)
        assert len(result) == 500
