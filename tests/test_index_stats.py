"""Unit tests for index statistics."""

import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.stats import compute_statistics
from repro.text.analyzer import Analyzer, AnalyzerConfig


def build_index(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return IndexBuilder(
        Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
    ).build(collection)


class TestIndexStatistics:
    def test_counts(self):
        stats = compute_statistics(build_index(["aa bb", "aa"]))
        assert stats.num_documents == 2
        assert stats.num_terms == 2
        assert stats.total_postings == 3

    def test_posting_length_percentiles_ordered(self, small_index):
        stats = compute_statistics(small_index, include_compressed_size=False)
        assert (
            stats.median_posting_length
            <= stats.p90_posting_length
            <= stats.p99_posting_length
            <= stats.max_posting_length
        )

    def test_skew_present_in_zipfian_corpus(self, small_index):
        stats = compute_statistics(small_index, include_compressed_size=False)
        # Zipfian vocabularies produce a long posting-length tail.
        assert stats.max_posting_length > 5 * stats.median_posting_length

    def test_compressed_size_positive(self):
        stats = compute_statistics(build_index(["aa bb cc"]))
        assert stats.compressed_size_bytes > 0

    def test_compressed_size_skippable(self):
        stats = compute_statistics(
            build_index(["aa bb cc"]), include_compressed_size=False
        )
        assert stats.compressed_size_bytes == 0

    def test_empty_index(self):
        stats = compute_statistics(build_index([]))
        assert stats.num_documents == 0
        assert stats.num_terms == 0
        assert stats.max_posting_length == 0

    def test_as_rows_contains_all_labels(self, small_index):
        rows = compute_statistics(small_index, include_compressed_size=False).as_rows()
        assert "documents" in rows
        assert "p99 posting length" in rows
        assert rows["documents"] == small_index.num_documents
