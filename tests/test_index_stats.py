"""Unit tests for index statistics."""

import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.partitioner import partition_index
from repro.index.serialization import serialize_index
from repro.index.stats import (
    SECTION_NAMES,
    compressed_section_sizes,
    compute_statistics,
    shard_compressed_sizes,
)
from repro.text.analyzer import Analyzer, AnalyzerConfig


def build_index(texts):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return IndexBuilder(
        Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False))
    ).build(collection)


class TestIndexStatistics:
    def test_counts(self):
        stats = compute_statistics(build_index(["aa bb", "aa"]))
        assert stats.num_documents == 2
        assert stats.num_terms == 2
        assert stats.total_postings == 3

    def test_posting_length_percentiles_ordered(self, small_index):
        stats = compute_statistics(small_index, include_compressed_size=False)
        assert (
            stats.median_posting_length
            <= stats.p90_posting_length
            <= stats.p99_posting_length
            <= stats.max_posting_length
        )

    def test_skew_present_in_zipfian_corpus(self, small_index):
        stats = compute_statistics(small_index, include_compressed_size=False)
        # Zipfian vocabularies produce a long posting-length tail.
        assert stats.max_posting_length > 5 * stats.median_posting_length

    def test_compressed_size_positive(self):
        stats = compute_statistics(build_index(["aa bb cc"]))
        assert stats.compressed_size_bytes > 0

    def test_compressed_size_skippable(self):
        stats = compute_statistics(
            build_index(["aa bb cc"]), include_compressed_size=False
        )
        assert stats.compressed_size_bytes == 0

    def test_empty_index(self):
        stats = compute_statistics(build_index([]))
        assert stats.num_documents == 0
        assert stats.num_terms == 0
        assert stats.max_posting_length == 0

    def test_as_rows_contains_all_labels(self, small_index):
        rows = compute_statistics(small_index, include_compressed_size=False).as_rows()
        assert "documents" in rows
        assert "p99 posting length" in rows
        assert rows["documents"] == small_index.num_documents


class TestCompressedSections:
    def test_sections_sum_to_exact_segment_length(self, small_index):
        """The accounting mirrors the serializer byte for byte — the
        regression that keeps the two from drifting apart."""
        sections = compressed_section_sizes(small_index)
        assert set(sections) == set(SECTION_NAMES)
        assert sum(sections.values()) == len(
            serialize_index(small_index, version=3)
        )

    def test_sections_sum_holds_on_tiny_and_empty_indexes(self):
        for texts in ([], ["aa"], ["aa bb", "aa", "cc cc cc"]):
            index = build_index(texts)
            sections = compressed_section_sizes(index)
            assert sum(sections.values()) == len(
                serialize_index(index, version=3)
            )

    def test_postings_dominate_on_real_corpus(self, small_index):
        sections = compressed_section_sizes(small_index)
        assert sections["postings"] == max(sections.values())
        assert all(size > 0 for size in sections.values())

    def test_compute_statistics_surfaces_sections(self, small_index):
        stats = compute_statistics(small_index, include_sections=True)
        assert stats.compressed_sections == compressed_section_sizes(
            small_index
        )
        rows = stats.as_rows()
        assert rows["compressed segment total (bytes)"] == sum(
            stats.compressed_sections.values()
        )
        assert rows["compressed postings (bytes)"] > 0

    def test_sections_off_by_default(self, small_index):
        stats = compute_statistics(small_index)
        assert stats.compressed_sections is None
        assert "compressed postings (bytes)" not in stats.as_rows()

    def test_build_with_stats(self, small_collection):
        index, stats = IndexBuilder().build_with_stats(small_collection)
        assert index.num_documents == len(small_collection)
        assert stats.compressed_sections is not None
        assert sum(stats.compressed_sections.values()) == len(
            serialize_index(index, version=3)
        )

    def test_per_shard_sizes(self, small_collection):
        partitioned = partition_index(small_collection, 3)
        per_shard = shard_compressed_sizes(partitioned)
        assert len(per_shard) == 3
        for shard, sections in zip(partitioned, per_shard):
            assert sum(sections.values()) == len(
                serialize_index(shard.index, version=3)
            )
