"""Tests for the DES replica autoscaler and its scaling policies."""

import numpy as np
import pytest

from repro.capacity.model import CapacityModel, ServiceTimeProfile
from repro.obs.registry import MetricsRegistry
from repro.resilience.admission import OverloadPolicy
from repro.servers.spec import ServerSpec
from repro.sim.autoscale import (
    AutoscaleConfig,
    AutoscaleObservation,
    AutoscaleResult,
    ModelPolicy,
    ReactivePolicy,
    StaticPolicy,
    run_autoscaled_cluster,
)
from repro.workload.diurnal import DiurnalArrivals
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.6, sigma=0.8)

SPEC = ServerSpec(
    name="autoscale-test-node",
    num_cores=2,
    core_speed=0.5,
    idle_power_watts=30.0,
    peak_power_watts=90.0,
)


def observation(**overrides):
    params = dict(
        now=600.0,
        interval_s=60.0,
        arrival_rate_qps=50.0,
        previous_rate_qps=50.0,
        active_replicas=4,
        provisioned_replicas=4,
        utilization=0.5,
    )
    params.update(overrides)
    return AutoscaleObservation(**params)


def make_trace(horizon_s=600.0, base_qps=15.0, peak_qps=60.0, seed=0):
    """A short diurnal day realized into (arrival_times, demands)."""
    day = DiurnalArrivals(
        base_qps=base_qps,
        peak_qps=peak_qps,
        period_s=horizon_s,
        peak_time_s=horizon_s / 2.0,
    )
    rng = np.random.default_rng(seed)
    times = day.realize_trace(horizon_s, rng)
    demands = DEMAND.demands(times.size, rng)
    return times, demands


def make_config(**overrides):
    params = dict(
        spec=SPEC,
        initial_replicas=2,
        min_replicas=1,
        max_replicas=8,
        warmup_s=30.0,
        control_interval_s=20.0,
        scale_down_cooldown_s=60.0,
        scale_down_stability=2,
    )
    params.update(overrides)
    return AutoscaleConfig(**params)


class TestPolicies:
    def test_static_pins_the_count(self):
        policy = StaticPolicy(replicas=5)
        assert policy.desired_replicas(observation(utilization=0.05)) == 5
        assert policy.desired_replicas(observation(utilization=0.95)) == 5
        with pytest.raises(ValueError):
            StaticPolicy(replicas=0)

    def test_reactive_target_tracking(self):
        policy = ReactivePolicy(target_utilization=0.5)
        # 4 active at 75% busy against a 50% target -> ceil(6) = 6.
        assert policy.desired_replicas(observation(utilization=0.75)) == 6
        # At the target exactly, hold.
        assert policy.desired_replicas(observation(utilization=0.5)) == 4
        # Idle fleet collapses toward one replica, never zero.
        assert policy.desired_replicas(observation(utilization=0.0)) == 1
        with pytest.raises(ValueError):
            ReactivePolicy(target_utilization=1.5)

    def test_model_policy_extrapolates_rising_rate(self):
        model = CapacityModel(
            profile=ServiceTimeProfile.from_demand_model(DEMAND), spec=SPEC
        )
        policy = ModelPolicy(
            model=model, p99_slo_s=0.25, lookahead_s=600.0, headroom=1.0
        )
        flat = policy.desired_replicas(
            observation(arrival_rate_qps=40.0, previous_rate_qps=40.0)
        )
        rising = policy.desired_replicas(
            observation(arrival_rate_qps=40.0, previous_rate_qps=10.0)
        )
        # Rising: 40 + (30/60)*600 = 340 qps predicted vs 40 flat.
        assert rising > flat
        # A falling rate must not extrapolate below the current rate.
        falling = policy.desired_replicas(
            observation(arrival_rate_qps=40.0, previous_rate_qps=80.0)
        )
        assert falling == flat
        with pytest.raises(ValueError):
            ModelPolicy(model=model, p99_slo_s=0.0)


class TestConfigValidation:
    def test_replica_bounds(self):
        with pytest.raises(ValueError, match="min_replicas"):
            make_config(min_replicas=5, max_replicas=2)
        with pytest.raises(ValueError, match="initial_replicas"):
            make_config(initial_replicas=9, max_replicas=8)
        with pytest.raises(ValueError, match="control_interval_s"):
            make_config(control_interval_s=0.0)
        with pytest.raises(ValueError, match="scale_down_stability"):
            make_config(scale_down_stability=0)


class TestRunAutoscaledCluster:
    @pytest.fixture(scope="class")
    def trace(self):
        return make_trace()

    def test_deterministic_under_seed(self, trace):
        times, demands = trace
        config = make_config()
        policy = ReactivePolicy(target_utilization=0.5)
        a = run_autoscaled_cluster(config, policy, times, demands, seed=3)
        b = run_autoscaled_cluster(config, policy, times, demands, seed=3)
        assert np.array_equal(a.latencies(), b.latencies())
        assert a.row_spans == b.row_spans
        assert a.timeline == b.timeline

    def test_static_policy_never_scales(self, trace):
        times, demands = trace
        config = make_config(initial_replicas=4)
        result = run_autoscaled_cluster(
            config, StaticPolicy(replicas=4), times, demands
        )
        assert result.scale_up_events == 0
        assert result.scale_down_events == 0
        assert result.max_provisioned() == 4
        assert result.replica_hours() == pytest.approx(
            4 * result.horizon_s / 3600.0
        )

    def test_bounds_are_enforced(self, trace):
        times, demands = trace
        config = make_config(initial_replicas=2, max_replicas=3)

        class GreedyPolicy:
            name = "greedy"

            def desired_replicas(self, obs):
                return 100

        result = run_autoscaled_cluster(
            config, GreedyPolicy(), times, demands
        )
        assert result.max_provisioned() == 3
        assert all(s.provisioned <= 3 for s in result.timeline)

    def test_min_replicas_floor(self, trace):
        times, demands = trace
        config = make_config(
            initial_replicas=2, min_replicas=2, scale_down_cooldown_s=0.0,
            scale_down_stability=1,
        )

        class ShrinkPolicy:
            name = "shrink"

            def desired_replicas(self, obs):
                return 1

        result = run_autoscaled_cluster(
            config, ShrinkPolicy(), times, demands
        )
        assert all(s.provisioned >= 2 for s in result.timeline)
        assert result.scale_down_events == 0

    def test_scale_down_needs_cooldown_and_stability(self, trace):
        """One shrink request is not enough; the streak plus the
        cooldown gate the retirement, and newest rows retire first."""
        times, demands = trace
        config = make_config(
            initial_replicas=1,
            scale_down_cooldown_s=120.0,
            scale_down_stability=3,
        )

        class UpThenDown:
            name = "up-then-down"

            def desired_replicas(self, obs):
                return 4 if obs.now < 100.0 else 1

        result = run_autoscaled_cluster(
            config, UpThenDown(), times, demands
        )
        assert result.scale_up_events >= 1
        assert result.scale_down_events >= 1
        down_tick = next(
            s for s in result.timeline if s.provisioned < 4 and s.now > 100.0
        )
        # The scale-up lands at the first tick (t=20 s); with a 120 s
        # cooldown and a 3-interval stability streak after the first
        # shrink request (t=100 s), the earliest legal retirement is
        # t=140 s — and shrink requests at 100/120 s must not retire.
        assert down_tick.now >= 140.0
        held = [s for s in result.timeline if 100.0 <= s.now < down_tick.now]
        assert all(s.provisioned == 4 for s in held)
        # Newest-first retirement: the earliest-launched row survives.
        retire_times = [r for _, r in result.row_spans]
        assert result.row_spans[0][1] == max(retire_times)

    def test_warmup_delays_dispatchability(self, trace):
        times, demands = trace
        config = make_config(initial_replicas=1, warmup_s=100.0)

        class BigBang:
            name = "big-bang"

            def desired_replicas(self, obs):
                return 4

        result = run_autoscaled_cluster(config, BigBang(), times, demands)
        first_grow = next(s for s in result.timeline if s.provisioned == 4)
        # Paid for immediately, dispatchable only after the warm-up.
        assert first_grow.active < 4
        warmed = next(
            s
            for s in result.timeline
            if s.now >= first_grow.now + config.warmup_s
        )
        assert warmed.active == 4

    def test_metrics_registry_records_activity(self, trace):
        times, demands = trace
        config = make_config(
            initial_replicas=1, scale_down_cooldown_s=40.0,
            scale_down_stability=1,
        )
        metrics = MetricsRegistry()

        class Sawtooth:
            name = "sawtooth"

            def desired_replicas(self, obs):
                return 3 if (obs.now // 100.0) % 2 == 0 else 1

        result = run_autoscaled_cluster(
            config, Sawtooth(), times, demands, metrics=metrics
        )
        snapshot = metrics.snapshot()
        value = lambda name: snapshot[f"autoscale.{name}"]["value"]  # noqa: E731
        assert value("scale_up_events") == result.scale_up_events
        assert value("scale_down_events") == result.scale_down_events
        assert value("replicas_launched") == len(result.row_spans)
        retired_early = sum(
            1 for _, r in result.row_spans if r < result.horizon_s
        )
        assert value("replicas_retired") == retired_early
        last = result.timeline[-1]
        assert value("provisioned_replicas") == last.provisioned
        assert value("active_replicas") == last.active

    def test_admission_control_sheds_under_overload(self):
        """A deliberately tiny fleet behind a strict admission policy
        sheds instead of queueing without bound, and sheds count
        against SLO attainment."""
        times, demands = make_trace(
            horizon_s=300.0, base_qps=80.0, peak_qps=160.0
        )
        config = make_config(
            initial_replicas=1,
            max_replicas=1,
            overload=OverloadPolicy(max_concurrency=8, queue_limit=4),
        )
        policy = StaticPolicy(replicas=1)
        result = run_autoscaled_cluster(config, policy, times, demands)
        assert result.shed_count > 0
        assert len(result.records) == times.size
        # Sheds are SLO misses even if every served query was fast.
        served_within = np.sum(result.latencies() <= 10.0)
        assert result.slo_attainment(10.0) == pytest.approx(
            served_within / times.size
        )
        metrics = MetricsRegistry()
        again = run_autoscaled_cluster(
            config, policy, times, demands, metrics=metrics
        )
        assert (
            metrics.snapshot()["autoscale.sheds"]["value"]
            == again.shed_count
        )

    def test_input_validation(self, trace):
        times, demands = trace
        config = make_config()
        policy = StaticPolicy(replicas=2)
        with pytest.raises(ValueError, match="align"):
            run_autoscaled_cluster(config, policy, times, demands[:-1])
        with pytest.raises(ValueError, match="empty"):
            run_autoscaled_cluster(
                config, policy, np.array([]), np.array([])
            )

    def test_replica_hours_track_spans(self, trace):
        times, demands = trace
        config = make_config()
        result = run_autoscaled_cluster(
            config, ReactivePolicy(target_utilization=0.5), times, demands
        )
        expected = (
            sum(r - l for l, r in result.row_spans) / 3600.0  # noqa: E741
        )
        assert result.replica_hours() == pytest.approx(expected)
        assert isinstance(result, AutoscaleResult)
        assert result.policy_name == "reactive"
