"""Property-based proof that tiered serving is bit-identical.

The tiered index's whole contract is that paging changes the I/O
schedule and nothing else: for any corpus, any cache budget (including
budgets too small to hold a single term's blocks), any traversal
algorithm, and any index format version the segment round-tripped
through, the ranked results — doc ids AND exact float scores — must
equal the fully-resident index's.  Hypothesis explores that space;
a second property family fuzzes the failure surface (corruption and
timeouts must raise typed errors, never return wrong results).
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.corpus.documents import Document, DocumentCollection
from repro.index.builder import IndexBuilder
from repro.index.serialization import deserialize_index, serialize_index
from repro.index.store import (
    BlockKey,
    SlowStore,
    StoreError,
    StoreTimeoutError,
    open_tiered_index,
    tier_index,
    write_tiered_segment,
)
from repro.search.block_max_wand import score_block_max_wand
from repro.search.daat import score_daat
from repro.search.query import ParsedQuery
from repro.search.taat import score_taat
from repro.search.wand import score_wand
from repro.text.analyzer import Analyzer, AnalyzerConfig

ALGORITHMS = {
    "daat": score_daat,
    "taat": score_taat,
    "wand": score_wand,
    "block_max_wand": score_block_max_wand,
}

# A tiny shared vocabulary makes random documents collide on terms, so
# postings lists grow long enough to span multiple blocks.
WORDS = ["alpha", "beta", "gamma", "delta", "epsi", "zeta", "eta", "theta"]

corpus_texts = st.lists(
    st.lists(st.sampled_from(WORDS), min_size=1, max_size=12).map(" ".join),
    min_size=1,
    max_size=25,
)
queries = st.lists(
    st.sampled_from(WORDS + ["missing"]), min_size=1, max_size=4, unique=True
).map(tuple)
# Budgets from "cache nothing" through "smaller than one term's blocks"
# up to "everything resident".
budgets = st.sampled_from([0, 1, 64, 256, 1 << 20])
block_sizes = st.sampled_from([1, 2, 4, 7])
format_versions = st.sampled_from([1, 2, 3])


def build_index(texts, block_size):
    collection = DocumentCollection()
    for doc_id, text in enumerate(texts):
        collection.add(Document(doc_id, f"u{doc_id}", "", text))
    return IndexBuilder(
        Analyzer(AnalyzerConfig(remove_stopwords=False, stem=False)),
        block_size=block_size,
    ).build(collection)


def assert_bit_identical(resident_hits, tiered_hits, context):
    assert len(resident_hits) == len(tiered_hits), context
    for expected, actual in zip(resident_hits, tiered_hits):
        assert expected.doc_id == actual.doc_id, context
        # Bit-identical means the exact same float, not approximately.
        assert expected.score == actual.score, context


class TestTieredBitIdentity:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        texts=corpus_texts,
        terms=queries,
        budget=budgets,
        block_size=block_sizes,
        admission=st.booleans(),
    )
    def test_in_memory_store_all_algorithms(
        self, texts, terms, budget, block_size, admission
    ):
        resident = build_index(texts, block_size)
        tiered = tier_index(
            resident, cache_budget_bytes=budget, admission=admission
        )
        query = ParsedQuery(terms=terms, k=10)
        for name, score in ALGORITHMS.items():
            assert_bit_identical(
                score(resident, query),
                score(tiered, query),
                context=f"{name} budget={budget} block_size={block_size}",
            )

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        texts=corpus_texts,
        terms=queries,
        budget=budgets,
        block_size=block_sizes,
        version=format_versions,
    )
    def test_file_segment_after_format_roundtrip(
        self, texts, terms, budget, block_size, version
    ):
        """Tiering composes with every RIDX version: an index that
        round-tripped through v1/v2/v3 serialization and was then
        written as an RTIX segment still answers bit-identically."""
        resident = deserialize_index(
            serialize_index(build_index(texts, block_size), version=version)
        )
        query = ParsedQuery(terms=terms, k=10)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "segment.rtix"
            write_tiered_segment(resident, path)
            tiered = open_tiered_index(path, cache_budget_bytes=budget)
            try:
                for name, score in ALGORITHMS.items():
                    assert_bit_identical(
                        score(resident, query),
                        score(tiered, query),
                        context=f"{name} v{version} budget={budget}",
                    )
            finally:
                tiered.store.close()

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        texts=corpus_texts,
        terms=queries,
        block_size=block_sizes,
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_query_sequences_share_one_cache(
        self, texts, terms, block_size, seed
    ):
        """Repeated queries through a warm (and thrashing) cache stay
        bit-identical — hits, evictions, and admission rejections never
        change a result."""
        resident = build_index(texts, block_size)
        tiered = tier_index(resident, cache_budget_bytes=96)
        rng = np.random.default_rng(seed)
        for _ in range(5):
            k = int(rng.integers(1, 10))
            query = ParsedQuery(terms=terms, k=k)
            assert_bit_identical(
                score_block_max_wand(resident, query),
                score_block_max_wand(tiered, query),
                context=f"k={k}",
            )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(texts=corpus_texts, terms=queries, block_size=block_sizes)
    def test_paged_bmw_reads_no_more_than_resident_volume(
        self, texts, terms, block_size
    ):
        """Paging is demand-driven: BMW never reads more block bytes
        than the whole pageable set, and a second identical query on a
        big-budget cache reads nothing."""
        resident = build_index(texts, block_size)
        tiered = tier_index(resident, cache_budget_bytes=1 << 20)
        query = ParsedQuery(terms=terms, k=10)
        score_block_max_wand(tiered, query)
        first = tiered.store_stats()
        assert first.bytes_read <= tiered.total_block_bytes
        score_block_max_wand(tiered, query)
        second = tiered.store_stats().delta(first)
        assert second.blocks_fetched == 0


class TestTieredFaultInjection:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        texts=corpus_texts,
        terms=queries,
        block_size=block_sizes,
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.sampled_from([0.3, 0.7, 1.0]),
    )
    def test_timeouts_raise_or_results_stay_identical(
        self, texts, terms, block_size, seed, rate
    ):
        """Under a lossy store every query either raises the typed
        timeout or returns the exact resident answer — never a silently
        degraded result."""
        resident = build_index(texts, block_size)
        tiered = tier_index(
            resident,
            cache_budget_bytes=0,  # no cache: every touch hits the store
            store_wrapper=lambda store: SlowStore(
                store, timeout_rate=rate, seed=seed
            ),
        )
        query = ParsedQuery(terms=terms, k=10)
        try:
            hits = score_block_max_wand(tiered, query)
        except StoreTimeoutError:
            return
        assert_bit_identical(
            score_block_max_wand(resident, query), hits, context="lossy"
        )

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        texts=corpus_texts,
        block_size=block_sizes,
        data=st.data(),
    )
    def test_random_byte_flip_never_silently_corrupts(
        self, texts, block_size, data
    ):
        """Flip one random byte of one random block payload: every
        query either raises a typed store error or — when the damaged
        block is never paged in / the flip hit a slack bit that still
        checksums — returns the exact resident answer."""
        resident = build_index(texts, block_size)
        tiered = tier_index(resident, cache_budget_bytes=1 << 20)
        blocks = tiered.store._blocks
        key = data.draw(st.sampled_from(sorted(blocks)))
        payload = bytearray(blocks[key])
        position = data.draw(
            st.integers(min_value=0, max_value=len(payload) - 1)
        )
        payload[position] ^= 1 << data.draw(
            st.integers(min_value=0, max_value=7)
        )
        blocks[key] = bytes(payload)

        terms = data.draw(queries)
        query = ParsedQuery(terms=terms, k=10)
        expected = score_block_max_wand(resident, query)
        try:
            hits = score_block_max_wand(tiered, query)
        except StoreError:
            return  # typed failure is the accepted outcome
        assert_bit_identical(expected, hits, context=f"flip {key}")


class TestTieredSmallIndexEdgeCases:
    def test_empty_collection(self):
        resident = build_index([], block_size=4)
        tiered = tier_index(resident, cache_budget_bytes=100)
        assert tiered.num_documents == 0
        assert score_daat(tiered, ParsedQuery(terms=("alpha",), k=5)) == []

    def test_single_posting_terms(self):
        resident = build_index(["alpha", "beta"], block_size=4)
        tiered = tier_index(resident, cache_budget_bytes=100)
        query = ParsedQuery(terms=("alpha", "beta"), k=5)
        assert_bit_identical(
            score_block_max_wand(resident, query),
            score_block_max_wand(tiered, query),
            context="single-posting",
        )

    @pytest.mark.parametrize("budget", [0, 1, 5])
    def test_budget_below_single_block(self, budget):
        """Every block is larger than the whole budget: nothing ever
        caches, everything re-fetches, results stay exact."""
        texts = ["alpha beta gamma"] * 12
        resident = build_index(texts, block_size=4)
        tiered = tier_index(resident, cache_budget_bytes=budget)
        query = ParsedQuery(terms=("alpha", "gamma"), k=10)
        for _ in range(3):
            assert_bit_identical(
                score_block_max_wand(resident, query),
                score_block_max_wand(tiered, query),
                context=f"budget={budget}",
            )
        snap = tiered.store_stats()
        assert snap.bytes_cached == 0
        assert snap.block_hits == 0
