"""Unit + property tests for the Zipf sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.zipf import ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        weights = zipf_weights(100, 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_monotonically_decreasing(self):
        weights = zipf_weights(50, 1.2)
        assert np.all(np.diff(weights) < 0)

    def test_exponent_zero_is_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_head_share_grows_with_exponent(self):
        light = zipf_weights(1000, 0.5)[:10].sum()
        heavy = zipf_weights(1000, 1.5)[:10].sum()
        assert heavy > light

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            zipf_weights(10, -0.1)

    @given(
        size=st.integers(min_value=1, max_value=500),
        exponent=st.floats(min_value=0.0, max_value=3.0),
    )
    def test_weights_always_a_distribution(self, size, exponent):
        weights = zipf_weights(size, exponent)
        assert weights.shape == (size,)
        assert np.all(weights > 0)
        assert weights.sum() == pytest.approx(1.0)


class TestZipfSampler:
    def test_samples_in_range(self, rng):
        sampler = ZipfSampler(100, 1.0, rng)
        ranks = sampler.sample_many(5000)
        assert ranks.min() >= 0
        assert ranks.max() < 100

    def test_rank_zero_is_most_frequent(self, rng):
        sampler = ZipfSampler(100, 1.0, rng)
        ranks = sampler.sample_many(20_000)
        counts = np.bincount(ranks, minlength=100)
        assert counts[0] == counts.max()

    def test_empirical_matches_theoretical_head(self, rng):
        sampler = ZipfSampler(50, 1.0, rng)
        ranks = sampler.sample_many(100_000)
        empirical = np.bincount(ranks, minlength=50) / 100_000
        assert empirical[0] == pytest.approx(sampler.probability(0), abs=0.01)

    def test_deterministic_given_seed(self):
        first = ZipfSampler(100, 1.0, np.random.default_rng(9)).sample_many(100)
        second = ZipfSampler(100, 1.0, np.random.default_rng(9)).sample_many(100)
        assert np.array_equal(first, second)

    def test_single_rank_distribution(self, rng):
        sampler = ZipfSampler(1, 1.0, rng)
        assert sampler.sample() == 0
        assert sampler.probability(0) == pytest.approx(1.0)

    def test_probability_out_of_range(self, rng):
        sampler = ZipfSampler(10, 1.0, rng)
        with pytest.raises(IndexError):
            sampler.probability(10)
        with pytest.raises(IndexError):
            sampler.probability(-1)

    def test_probabilities_sum_to_one(self, rng):
        sampler = ZipfSampler(30, 0.8, rng)
        total = sum(sampler.probability(rank) for rank in range(30))
        assert total == pytest.approx(1.0)

    def test_sample_many_negative_count(self, rng):
        sampler = ZipfSampler(10, 1.0, rng)
        with pytest.raises(ValueError):
            sampler.sample_many(-1)

    @settings(max_examples=25)
    @given(
        size=st.integers(min_value=1, max_value=200),
        exponent=st.floats(min_value=0.0, max_value=2.5),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_all_samples_valid_ranks(self, size, exponent, seed):
        sampler = ZipfSampler(size, exponent, np.random.default_rng(seed))
        ranks = sampler.sample_many(200)
        assert np.all((ranks >= 0) & (ranks < size))
