"""The ``repro.api`` facade: construction, protocol, and deprecations."""

import warnings

import pytest

import repro
from repro.api import (
    ClusterConfig,
    ClusterModel,
    CorpusConfig,
    EngineConfig,
    ExecutionConfig,
    FanoutQueryRecord,
    HedgingPolicy,
    HiccupConfig,
    IsnResponse,
    PartitionModelConfig,
    QueryLogConfig,
    QueryOutcome,
    SearchEngine,
    SearchPage,
    VocabularyConfig,
)
from repro.cluster.replication import HedgeConfig

TINY_ENGINE = EngineConfig(
    corpus=CorpusConfig(
        num_documents=150,
        vocabulary=VocabularyConfig(size=1_000, seed=3),
        mean_length=40,
        seed=11,
    ),
    query_log=QueryLogConfig(num_unique_queries=20, seed=5),
    num_partitions=2,
)


@pytest.fixture(scope="module")
def engine():
    with SearchEngine(TINY_ENGINE) as engine:
        yield engine


class TestFacadeSurface:
    def test_blessed_import_line(self):
        # The one import the docs promise.
        from repro.api import (  # noqa: F401
            ClusterModel,
            HedgingPolicy,
            SearchEngine,
        )

    def test_top_level_reexports(self):
        assert repro.SearchEngine is SearchEngine
        assert repro.ClusterModel is ClusterModel
        assert repro.HedgingPolicy is HedgingPolicy
        assert repro.api.__name__ == "repro.api"

    def test_all_names_resolve(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_importing_api_emits_no_deprecation_warnings(self):
        import importlib

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            importlib.reload(repro.api)


class TestSearchEngine:
    def test_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            EngineConfig(CorpusConfig())

    def test_config_xor_overrides(self):
        with pytest.raises(TypeError):
            SearchEngine(TINY_ENGINE, num_partitions=4)

    def test_overrides_build_a_config(self, engine):
        assert engine.config.num_partitions == 2
        assert engine.num_partitions == 2

    def test_search_returns_protocol_outcome(self, engine):
        response = engine.search(engine.query_log[0].text, k=5)
        assert isinstance(response, IsnResponse)
        assert isinstance(response, QueryOutcome)
        assert response.latency_s > 0
        assert response.coverage == 1.0
        assert len(response.doc_ids()) <= 5

    def test_search_page_is_a_list_and_an_outcome(self, engine):
        page = engine.search_page(engine.query_log[0].text, k=5)
        assert isinstance(page, SearchPage)
        assert isinstance(page, list)
        assert isinstance(page, QueryOutcome)
        assert page.latency_s > 0
        assert page.coverage == 1.0
        assert page.doc_ids() == [entry.hit.doc_id for entry in page]

    def test_document_lookup(self, engine):
        response = engine.search(engine.query_log[0].text, k=1)
        if response.doc_ids():
            document = engine.document(response.doc_ids()[0])
            assert document.url

    def test_hedging_policy_threads_through(self):
        config = EngineConfig(
            corpus=TINY_ENGINE.corpus,
            query_log=TINY_ENGINE.query_log,
            num_partitions=2,
            hedging=HedgingPolicy(hedge_delay_s=0.05),
        )
        with SearchEngine(config) as engine:
            assert engine.service.isn.hedging is not None
            response = engine.search(engine.query_log[0].text)
            assert response.coverage == 1.0


class TestClusterModel:
    def test_run_returns_protocol_outcomes(self):
        model = ClusterModel(num_servers=2, num_partitions=4)
        result = model.run(rate_qps=50.0, num_queries=100, seed=1)
        assert len(result) == 100
        record = result.records[0]
        assert isinstance(record, FanoutQueryRecord)
        assert isinstance(record, QueryOutcome)
        assert record.latency_s > 0
        assert record.coverage == 1.0
        assert record.doc_ids() == []

    def test_config_xor_overrides(self):
        with pytest.raises(TypeError):
            ClusterModel(ClusterConfig(num_servers=2), num_servers=4)

    def test_num_partitions_shortcut_builds_partitioning(self):
        model = ClusterModel(num_partitions=8)
        assert model.fanout_config.partitioning.num_partitions == 8

    def test_inconsistent_partitioning_rejected(self):
        config = ClusterConfig(
            num_partitions=8,
            partitioning=PartitionModelConfig(num_partitions=4),
        )
        with pytest.raises(ValueError):
            config.to_fanout_config()

    def test_tail_features_reach_the_fanout_config(self):
        policy = HedgingPolicy(hedge_delay_s=0.01, deadline_s=0.2)
        model = ClusterModel(
            num_servers=2,
            replicas_per_shard=2,
            hiccups=HiccupConfig(mean_interval=1.0, pause_duration=0.02),
            hedging=policy,
        )
        fanout = model.fanout_config
        assert fanout.hedging is policy
        assert fanout.replicas_per_shard == 2
        assert fanout.tail_tolerant


class TestHedgeConfigDeprecationShim:
    def test_new_spelling_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = HedgeConfig(delay_s=0.01)
        assert config.delay_s == 0.01

    def test_old_keyword_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="delay_s"):
            config = HedgeConfig(delay=0.02)
        assert config.delay_s == 0.02

    def test_old_attribute_warns(self):
        config = HedgeConfig(delay_s=0.03)
        with pytest.warns(DeprecationWarning, match="delay_s"):
            assert config.delay == 0.03

    def test_both_spellings_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                HedgeConfig(delay_s=0.01, delay=0.02)

    def test_missing_delay_rejected(self):
        with pytest.raises(TypeError):
            HedgeConfig()


class TestExecutionConfigApi:
    """The redesigned execution surface and its num_threads shim."""

    def test_execution_config_is_exported(self):
        assert "ExecutionConfig" in repro.api.__all__
        assert "EXECUTION_BACKENDS" in repro.api.__all__
        assert repro.api.EXECUTION_BACKENDS == ("threads", "processes")

    def test_new_spelling_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = EngineConfig(
                corpus=TINY_ENGINE.corpus,
                query_log=TINY_ENGINE.query_log,
                num_partitions=2,
                execution=ExecutionConfig(backend="threads", workers=3),
            )
        assert config.execution.workers == 3

    def test_engine_config_num_threads_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="num_threads"):
            config = EngineConfig(
                corpus=TINY_ENGINE.corpus,
                query_log=TINY_ENGINE.query_log,
                num_partitions=2,
                num_threads=3,
            )
        assert config.execution == ExecutionConfig(
            backend="threads", workers=3
        )
        # Folded once at the facade: building the service config from
        # the already-resolved EngineConfig re-warns nowhere.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            service_config = config.to_service_config()
        assert service_config.execution.workers == 3

    def test_service_config_num_threads_warns_and_maps(self):
        from repro.engine.service import SearchServiceConfig

        with pytest.warns(DeprecationWarning, match="num_threads"):
            config = SearchServiceConfig(num_partitions=2, num_threads=4)
        assert config.execution == ExecutionConfig(
            backend="threads", workers=4
        )

    def test_isn_num_threads_warns(self, engine):
        from repro.engine.isn import IndexServingNode

        partitioned = engine.service.partitioned
        with pytest.warns(DeprecationWarning, match="num_threads"):
            node = IndexServingNode(partitioned, num_threads=2)
        with node:
            assert node.execution.workers == 2

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            EngineConfig(
                corpus=TINY_ENGINE.corpus,
                query_log=TINY_ENGINE.query_log,
                num_partitions=2,
                num_threads=3,
                execution=ExecutionConfig(),
            )

    def test_nonpositive_num_threads_still_value_error(self):
        with pytest.raises(ValueError):
            EngineConfig(
                corpus=TINY_ENGINE.corpus,
                query_log=TINY_ENGINE.query_log,
                num_partitions=2,
                num_threads=0,
            )

    def test_process_backend_engine_round_trip(self):
        config = EngineConfig(
            corpus=TINY_ENGINE.corpus,
            query_log=TINY_ENGINE.query_log,
            num_partitions=2,
            execution=ExecutionConfig(backend="processes", workers=2),
        )
        with SearchEngine(config) as engine:
            texts = [q.text for q in engine.query_log[:4]]
            singles = [engine.search(text, k=5) for text in texts]
            batched = engine.search_batch(texts, k=5)
            for one, many in zip(singles, batched):
                assert many.doc_ids() == one.doc_ids()
        # close() tore the pool and shared segment down; the engine is
        # now unusable, deterministically.
        with pytest.raises(RuntimeError):
            engine.search(texts[0])
