"""Unit + property tests for latency recording and percentiles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.latency import LatencyRecorder


class TestLatencyRecorder:
    def test_record_and_count(self):
        recorder = LatencyRecorder()
        recorder.record_many([0.1, 0.2, 0.3])
        assert len(recorder) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-0.1)

    def test_percentile_lower_convention(self):
        recorder = LatencyRecorder()
        recorder.record_many([1.0, 2.0, 3.0, 4.0])
        # "lower" returns an observed sample.
        assert recorder.percentile(50) in (1.0, 2.0, 3.0, 4.0)
        assert recorder.percentile(0) == 1.0
        assert recorder.percentile(100) == 4.0

    def test_percentile_monotone(self):
        recorder = LatencyRecorder()
        recorder.record_many(np.random.default_rng(0).exponential(1.0, 1_000))
        assert (
            recorder.percentile(50)
            <= recorder.percentile(90)
            <= recorder.percentile(99)
        )

    def test_mean_min_max(self):
        recorder = LatencyRecorder()
        recorder.record_many([2.0, 4.0])
        assert recorder.mean() == 3.0
        assert recorder.min() == 2.0
        assert recorder.max() == 4.0

    def test_empty_raises(self):
        recorder = LatencyRecorder()
        with pytest.raises(ValueError):
            recorder.percentile(50)
        with pytest.raises(ValueError):
            recorder.mean()
        with pytest.raises(ValueError):
            recorder.max()

    def test_invalid_quantile(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(101)
        with pytest.raises(ValueError):
            recorder.percentile(-1)

    def test_merge(self):
        first = LatencyRecorder()
        first.record_many([1.0, 2.0])
        second = LatencyRecorder()
        second.record_many([3.0])
        first.merge(second)
        assert len(first) == 3
        assert first.max() == 3.0

    def test_tail_ratio(self):
        recorder = LatencyRecorder()
        recorder.record_many([1.0] * 99 + [10.0])
        assert recorder.tail_ratio(99) >= 1.0

    def test_tail_ratio_zero_median(self):
        recorder = LatencyRecorder()
        recorder.record_many([0.0, 0.0, 5.0])
        assert recorder.tail_ratio() == float("inf")

    def test_records_after_percentile_query(self):
        # The sorted cache must invalidate on new samples.
        recorder = LatencyRecorder()
        recorder.record(1.0)
        assert recorder.percentile(100) == 1.0
        recorder.record(5.0)
        assert recorder.percentile(100) == 5.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=200))
    def test_percentiles_are_observed_samples(self, samples):
        recorder = LatencyRecorder()
        recorder.record_many(samples)
        for quantile in (0, 25, 50, 90, 99, 100):
            assert recorder.percentile(quantile) in samples
