"""Unit tests for the synthetic vocabulary."""

import numpy as np
import pytest

from repro.corpus.vocabulary import Vocabulary, VocabularyConfig
from repro.text.stopwords import DEFAULT_STOPWORDS


class TestVocabulary:
    def test_size(self):
        vocabulary = Vocabulary(VocabularyConfig(size=500))
        assert len(vocabulary) == 500
        assert len(vocabulary.words) == 500

    def test_words_are_unique(self):
        vocabulary = Vocabulary(VocabularyConfig(size=3_000))
        assert len(set(vocabulary.words)) == 3_000

    def test_deterministic(self):
        config = VocabularyConfig(size=200, seed=42)
        assert Vocabulary(config).words == Vocabulary(config).words

    def test_different_seeds_differ(self):
        first = Vocabulary(VocabularyConfig(size=200, seed=1)).words
        second = Vocabulary(VocabularyConfig(size=200, seed=2)).words
        assert first != second

    def test_frequent_words_are_short(self):
        vocabulary = Vocabulary(VocabularyConfig(size=10_000))
        head_length = np.mean([len(word) for word in vocabulary.words[:100]])
        tail_length = np.mean([len(word) for word in vocabulary.words[-100:]])
        assert head_length < tail_length

    def test_no_stopword_collisions(self):
        vocabulary = Vocabulary(VocabularyConfig(size=5_000))
        collisions = set(vocabulary.words) & DEFAULT_STOPWORDS
        assert not collisions

    def test_frequencies_decrease_with_rank(self):
        vocabulary = Vocabulary(VocabularyConfig(size=100, exponent=1.0))
        assert vocabulary.frequency(0) > vocabulary.frequency(50)

    def test_words_are_lowercase_alpha(self):
        vocabulary = Vocabulary(VocabularyConfig(size=1_000))
        for word in vocabulary.words[:200]:
            assert word.isalpha()
            assert word == word.lower()

    def test_sampler_respects_vocabulary_size(self, rng):
        vocabulary = Vocabulary(VocabularyConfig(size=64))
        sampler = vocabulary.sampler(rng)
        assert sampler.size == 64

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            VocabularyConfig(size=0)
        with pytest.raises(ValueError):
            VocabularyConfig(exponent=-1.0)
