"""Tests for the table/series text renderers."""

import pytest

from repro.core.reporting import format_series, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        text = format_table(
            ["name", "value"], [["alpha", 1], ["beta", 22]], title="Demo"
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "name" in lines[2]
        assert "alpha" in text
        assert "22" in text

    def test_column_alignment(self):
        text = format_table(["a", "b"], [["x", 1], ["longer", 2]])
        rows = text.splitlines()[-2:]
        # Both rows render to the same width.
        assert len(rows[0]) <= len(rows[1]) + len("longer")

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000123456]])
        assert "e-04" in text or "0.0001235" in text

    def test_zero_and_large(self):
        text = format_table(["v"], [[0.0], [123456.789]])
        assert "0" in text
        assert "e+05" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_no_title(self):
        text = format_table(["h"], [["x"]])
        assert not text.startswith("=")


class TestFormatSeries:
    def test_series_rendering(self):
        text = format_series(
            "Figure 4",
            "partitions",
            [1, 2, 4],
            [("p50", [10.0, 6.0, 4.0]), ("p99", [50.0, 20.0, 12.0])],
        )
        assert "Figure 4" in text
        assert "partitions" in text
        assert "p99" in text
        assert text.count("\n") >= 5

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_series("t", "x", [1, 2], [("y", [1.0])])
