"""Unit tests for the analyzer chain."""

from repro.text.analyzer import Analyzer, AnalyzerConfig, default_analyzer


class TestAnalyzer:
    def test_full_chain(self):
        analyzer = default_analyzer()
        terms = analyzer.analyze("The Servers are Searching!")
        # "the"/"are" are stopwords; remaining terms lowercased + stemmed.
        assert terms == ["server", "search"]

    def test_lowercase_only(self):
        analyzer = Analyzer(
            AnalyzerConfig(lowercase=True, remove_stopwords=False, stem=False)
        )
        assert analyzer.analyze("The QUICK fox") == ["the", "quick", "fox"]

    def test_stopwords_respect_case_flag(self):
        # Without lowercasing, "The" does not match the lowercase
        # stopword list and survives.
        analyzer = Analyzer(
            AnalyzerConfig(lowercase=False, remove_stopwords=True, stem=False)
        )
        assert analyzer.analyze("The the") == ["The"]

    def test_no_filters(self):
        analyzer = Analyzer(
            AnalyzerConfig(lowercase=False, remove_stopwords=False, stem=False)
        )
        assert analyzer.analyze("Keep EVERYTHING as IS") == [
            "Keep",
            "EVERYTHING",
            "as",
            "IS",
        ]

    def test_empty_input(self):
        assert default_analyzer().analyze("") == []

    def test_all_stopwords_input(self):
        assert default_analyzer().analyze("the and of to") == []

    def test_query_document_symmetry(self):
        # The core invariant: analyzing the same word in a document and
        # in a query must produce the same index term.
        analyzer = default_analyzer()
        assert analyzer.analyze("Characterizations") == analyzer.analyze(
            "characterizations"
        )

    def test_max_token_length_propagates(self):
        analyzer = Analyzer(AnalyzerConfig(max_token_length=4))
        assert analyzer.analyze("tiny enormous") == ["tiny"]
