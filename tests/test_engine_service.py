"""Tests for the SearchService facade."""

import pytest

from repro.corpus.generator import CorpusConfig
from repro.corpus.querylog import QueryLogConfig
from repro.corpus.vocabulary import VocabularyConfig
from repro.engine.service import SearchService, SearchServiceConfig

TINY_CORPUS = CorpusConfig(
    num_documents=120,
    vocabulary=VocabularyConfig(size=800, seed=2),
    mean_length=40,
    seed=21,
)
TINY_LOG = QueryLogConfig(num_unique_queries=30, seed=8)


@pytest.fixture(scope="module")
def service():
    config = SearchServiceConfig(
        corpus=TINY_CORPUS, query_log=TINY_LOG, num_partitions=3
    )
    with SearchService(config) as instance:
        yield instance


class TestSearchService:
    def test_components_assembled(self, service):
        assert len(service.collection) == 120
        assert service.partitioned.num_partitions == 3
        assert len(service.query_log) == 30

    def test_search_returns_hits(self, service):
        query = service.query_log[0]
        response = service.search(query.text)
        assert response.timings.total_seconds > 0

    def test_document_fetch_roundtrip(self, service):
        query = service.query_log[0]
        response = service.search(query.text, k=5)
        for doc_id in response.doc_ids():
            document = service.document(doc_id)
            assert document.doc_id == doc_id

    def test_results_contain_query_terms(self, service):
        """Top documents for a single-term query must actually contain
        (a variant of) the term — end-to-end relevance sanity."""
        from repro.search.query import QueryParser

        parser = QueryParser(service.analyzer)
        checked = 0
        for query in service.query_log:
            parsed = parser.parse(query.text)
            if len(parsed.terms) != 1:
                continue
            response = service.search(query.text, k=3)
            for doc_id in response.doc_ids():
                document = service.document(doc_id)
                doc_terms = set(service.analyzer.analyze(document.text))
                assert parsed.terms[0] in doc_terms
            checked += 1
            if checked >= 3:
                break
        assert checked > 0

    def test_build_shortcut(self):
        with SearchService.build(
            corpus=TINY_CORPUS, query_log=TINY_LOG, num_partitions=2
        ) as instance:
            assert instance.partitioned.num_partitions == 2

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            SearchServiceConfig(num_partitions=0)

    def test_search_page_renders_presentation_fields(self, service):
        query = service.query_log[0]
        page = service.search_page(query.text, k=3)
        response = service.search(query.text, k=3)
        assert [entry.hit.doc_id for entry in page] == response.doc_ids()
        for entry in page:
            document = service.document(entry.hit.doc_id)
            assert entry.url == document.url
            assert entry.title == document.title
            assert entry.snippet.text

    def test_search_page_latency_includes_snippet_rendering(self, service):
        """Regression: SearchPage.latency_s once reported only the ISN
        query time, silently excluding snippet/presentation rendering.
        With rendering made artificially slow, the page latency must
        reflect it — and always dominate the backing ISN response."""
        import time

        query = service.query_log[0]
        baseline = service.search_page(query.text, k=3)
        assert baseline.latency_s >= baseline.response.latency_s

        real_snippet = service._snippets.snippet
        delay_s = 0.05

        def slow_snippet(document, terms):
            time.sleep(delay_s)
            return real_snippet(document, terms)

        service._snippets.snippet = slow_snippet
        try:
            page = service.search_page(query.text, k=3)
        finally:
            service._snippets.snippet = real_snippet
        assert len(page) >= 1
        assert page.latency_s >= delay_s * len(page)
        assert page.latency_s > page.response.latency_s

    def test_search_phrase_from_real_document(self, service):
        # Take an adjacent pair from a real document; the phrase must
        # find at least that document.
        document = service.collection[5]
        terms = service.analyzer.analyze(document.body)
        phrase_text = None
        for first, second in zip(terms, terms[1:]):
            if first != second:
                phrase_text = f"{first} {second}"
                break
        assert phrase_text is not None
        hits = service.search_phrase(phrase_text, k=50)
        assert 5 in {hit.doc_id for hit in hits}

    def test_positional_index_cached(self, service):
        assert service.positional_index() is service.positional_index()

    def test_closed_service_rejects_search(self):
        instance = SearchService(
            SearchServiceConfig(corpus=TINY_CORPUS, query_log=TINY_LOG)
        )
        instance.close()
        with pytest.raises(RuntimeError):
            instance.search("anything")
