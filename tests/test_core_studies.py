"""Tests for the simulated studies: load sweep, partitioning, capacity,
low-power comparison, and component breakdown."""

import pytest

from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig
from repro.core.breakdown import breakdown_vs_partitions
from repro.core.capacity import capacity_vs_partitions, find_max_qps
from repro.core.loadsweep import run_load_sweep
from repro.core.lowpower import compare_servers_vs_partitions, matched_qos_energy
from repro.core.partitioning import imbalance_sensitivity, run_partitioning_sweep
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER
from repro.workload.servicetime import LognormalDemand

# Heavy-tailed demand: mean ~22 ms, p99 ~4x the mean — the shape the
# native characterization measures.
DEMAND = LognormalDemand(mu=-4.0, sigma=0.6)
COST_MODEL = PartitionModelConfig(
    partition_overhead=0.0005, merge_base=0.0003, merge_per_partition=0.0001
)


class TestLoadSweep:
    def test_latency_rises_past_the_knee(self):
        # Below the knee the curve is flat (8 cores absorb the load);
        # past it queueing dominates and the p99 climbs steeply.
        points = run_load_sweep(
            ClusterConfig(spec=BIG_SERVER),
            DEMAND,
            rates=[60.0, 280.0, 340.0],
            num_queries=3_000,
        )
        p99s = [point.summary.p99 for point in points]
        assert p99s[0] <= p99s[1] < p99s[2]
        assert p99s[2] > 1.3 * p99s[0]

    def test_hockey_stick_tail_divergence(self):
        """Near saturation the p99 inflates far more than the mean."""
        points = run_load_sweep(
            ClusterConfig(spec=BIG_SERVER),
            DEMAND,
            rates=[40.0, 330.0],
            num_queries=4_000,
        )
        light, heavy = points
        p99_inflation = heavy.summary.p99 / light.summary.p99
        mean_inflation = heavy.summary.mean / light.summary.mean
        assert p99_inflation > 1.5
        assert heavy.utilization > light.utilization

    def test_utilization_tracks_rate(self):
        points = run_load_sweep(
            ClusterConfig(spec=BIG_SERVER),
            DEMAND,
            rates=[50.0, 100.0],
            num_queries=3_000,
        )
        assert points[1].utilization == pytest.approx(
            2 * points[0].utilization, rel=0.1
        )

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            run_load_sweep(ClusterConfig(spec=BIG_SERVER), DEMAND, rates=[])
        with pytest.raises(ValueError):
            run_load_sweep(ClusterConfig(spec=BIG_SERVER), DEMAND, rates=[-1.0])


class TestPartitioningSweep:
    def test_partitioning_reduces_tail_latency(self):
        """The paper's headline: p99 falls from P=1 to P=4-8."""
        points = run_partitioning_sweep(
            BIG_SERVER,
            DEMAND,
            partition_counts=[1, 4, 8],
            rate_qps=120.0,
            cost_model=COST_MODEL,
            num_queries=4_000,
        )
        by_partitions = {point.num_partitions: point for point in points}
        assert by_partitions[4].summary.p99 < by_partitions[1].summary.p99
        assert by_partitions[8].summary.p99 < by_partitions[1].summary.p99

    def test_partitioning_narrows_absolute_tail_width(self):
        # p99 − p50 (the absolute spread users feel) shrinks with P.
        points = run_partitioning_sweep(
            BIG_SERVER,
            DEMAND,
            partition_counts=[1, 8],
            rate_qps=120.0,
            cost_model=COST_MODEL,
            num_queries=4_000,
        )
        width_p1 = points[0].summary.p99 - points[0].summary.p50
        width_p8 = points[1].summary.p99 - points[1].summary.p50
        assert width_p8 < 0.5 * width_p1

    def test_overhead_inflates_utilization(self):
        """More partitions -> more total work at the same offered QPS."""
        points = run_partitioning_sweep(
            BIG_SERVER,
            DEMAND,
            partition_counts=[1, 16],
            rate_qps=120.0,
            cost_model=COST_MODEL,
            num_queries=3_000,
        )
        assert points[1].utilization > points[0].utilization

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            run_partitioning_sweep(BIG_SERVER, DEMAND, [], rate_qps=10.0)
        with pytest.raises(ValueError):
            run_partitioning_sweep(BIG_SERVER, DEMAND, [1], rate_qps=0.0)


class TestImbalanceSensitivity:
    def test_skew_grows_as_concentration_falls(self):
        points = imbalance_sensitivity(
            BIG_SERVER,
            DEMAND,
            concentrations=[1e6, 3.0],
            rate_qps=100.0,
            num_partitions=8,
            cost_model=COST_MODEL,
            num_queries=3_000,
        )
        even, skewed = points
        assert skewed.mean_straggler_skew > 5 * even.mean_straggler_skew
        assert skewed.summary.p99 > even.summary.p99

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            imbalance_sensitivity(BIG_SERVER, DEMAND, [], rate_qps=10.0)
        with pytest.raises(ValueError):
            imbalance_sensitivity(BIG_SERVER, DEMAND, [0.0], rate_qps=10.0)
        with pytest.raises(ValueError):
            imbalance_sensitivity(BIG_SERVER, DEMAND, [1.0], rate_qps=0.0)


class TestCapacity:
    def test_find_max_qps_respects_qos(self):
        point = find_max_qps(
            ClusterConfig(spec=BIG_SERVER, partitioning=COST_MODEL),
            DEMAND,
            qos_p99_seconds=0.15,
            num_queries=2_500,
            tolerance_qps=10.0,
        )
        assert point.max_qps > 0
        assert point.p99_at_max <= 0.15

    def test_impossible_qos_gives_zero(self):
        point = find_max_qps(
            ClusterConfig(spec=BIG_SERVER, partitioning=COST_MODEL),
            DEMAND,
            qos_p99_seconds=1e-6,
            num_queries=1_000,
            tolerance_qps=10.0,
        )
        assert point.max_qps == 0.0

    def test_looser_qos_more_throughput(self):
        config = ClusterConfig(spec=BIG_SERVER, partitioning=COST_MODEL)
        tight = find_max_qps(
            config, DEMAND, qos_p99_seconds=0.08,
            num_queries=2_000, tolerance_qps=10.0,
        )
        loose = find_max_qps(
            config, DEMAND, qos_p99_seconds=0.4,
            num_queries=2_000, tolerance_qps=10.0,
        )
        assert loose.max_qps > tight.max_qps

    def test_capacity_vs_partitions_runs(self):
        points = capacity_vs_partitions(
            BIG_SERVER,
            DEMAND,
            partition_counts=[1, 4],
            qos_p99_seconds=0.1,
            cost_model=COST_MODEL,
            num_queries=1_500,
            tolerance_qps=15.0,
        )
        assert len(points) == 2
        assert all(point.max_qps >= 0 for point in points)

    def test_invalid_qos(self):
        with pytest.raises(ValueError):
            find_max_qps(
                ClusterConfig(spec=BIG_SERVER), DEMAND, qos_p99_seconds=0.0
            )


class TestLowPower:
    def test_partitioning_closes_the_gap(self):
        """The paper's second headline: with enough partitions the
        low-power server matches the big server's P=1 response time."""
        points = compare_servers_vs_partitions(
            [BIG_SERVER, SMALL_SERVER],
            DEMAND,
            partition_counts=[1, 8],
            rate_qps=30.0,
            cost_model=COST_MODEL,
            num_queries=3_000,
        )
        results = {
            (point.server_name, point.num_partitions): point.summary
            for point in points
        }
        big_p1 = results[(BIG_SERVER.name, 1)]
        small_p1 = results[(SMALL_SERVER.name, 1)]
        small_p8 = results[(SMALL_SERVER.name, 8)]
        # Unpartitioned, the small server is far slower...
        assert small_p1.p99 > 2.0 * big_p1.p99
        # ...but with 8 partitions it reaches the big server's P=1 level.
        assert small_p8.p99 <= 1.2 * big_p1.p99

    def test_matched_qos_energy_favors_small_server(self):
        rows = matched_qos_energy(
            [BIG_SERVER, SMALL_SERVER],
            DEMAND,
            qos_p99_seconds=0.25,
            partition_counts=[1, 4, 8],
            cost_model=COST_MODEL,
            num_queries=1_500,
        )
        by_server = {row.server_name: row for row in rows}
        big = by_server[BIG_SERVER.name]
        small = by_server[SMALL_SERVER.name]
        assert big.meets_qos and small.meets_qos
        assert small.energy_per_query_joules < big.energy_per_query_joules

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            compare_servers_vs_partitions([], DEMAND, [1], rate_qps=10.0)
        with pytest.raises(ValueError):
            compare_servers_vs_partitions(
                [BIG_SERVER], DEMAND, [], rate_qps=10.0
            )


class TestBreakdown:
    def test_components_shift_with_partitions(self):
        points = breakdown_vs_partitions(
            BIG_SERVER,
            DEMAND,
            partition_counts=[1, 8],
            rate_qps=100.0,
            cost_model=COST_MODEL,
            num_queries=3_000,
        )
        p1, p8 = points
        # Parallelism shrinks per-query service...
        assert (
            p8.mean_components["parallel_service"]
            < p1.mean_components["parallel_service"]
        )
        # ...while merge cost and fork-join skew appear.
        assert (
            p8.mean_components["merge_service"]
            > p1.mean_components["merge_service"]
        )
        assert p8.mean_components["straggler_skew"] > 0
        assert p1.mean_components["straggler_skew"] == pytest.approx(0.0)

    def test_mean_latency_property(self):
        points = breakdown_vs_partitions(
            BIG_SERVER, DEMAND, [2], rate_qps=50.0, num_queries=1_500
        )
        assert points[0].mean_latency > 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            breakdown_vs_partitions(BIG_SERVER, DEMAND, [], rate_qps=10.0)
