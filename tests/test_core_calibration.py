"""Tests for native → simulator calibration."""

import numpy as np
import pytest

from repro.core.calibration import (
    calibrate_from_measurements,
    calibrate_isn,
    demand_model_from_calibration,
    lognormal_model_from_measurements,
)
from repro.engine.driver import QueryMeasurement
from repro.engine.isn import IndexServingNode
from repro.index.partitioner import partition_index


def make_measurement(query_id, volume, seconds, terms=2):
    return QueryMeasurement(
        query_id=query_id,
        text="q",
        num_raw_terms=terms,
        service_seconds=seconds,
        matched_volume=volume,
        num_hits=10,
    )


class TestCalibrateFromMeasurements:
    def test_recovers_exact_affine_model(self):
        measurements = [
            make_measurement(i, volume, 0.002 + 1e-5 * volume)
            for i, volume in enumerate([10, 100, 500, 1_000, 2_000])
        ]
        calibration = calibrate_from_measurements(measurements)
        assert calibration.base_seconds == pytest.approx(0.002, rel=1e-6)
        assert calibration.per_posting_seconds == pytest.approx(1e-5, rel=1e-6)
        assert calibration.r_squared == pytest.approx(1.0)
        assert calibration.num_measurements == 5

    def test_predicted_demand(self):
        measurements = [
            make_measurement(i, volume, 0.001 + 2e-6 * volume)
            for i, volume in enumerate([0, 1_000])
        ]
        calibration = calibrate_from_measurements(measurements)
        assert calibration.predicted_demand(500) == pytest.approx(
            0.002, rel=1e-6
        )

    def test_negative_coefficients_clamped(self):
        measurements = [
            make_measurement(0, 100, 0.01),
            make_measurement(1, 200, 0.001),  # nonsense slope
        ]
        calibration = calibrate_from_measurements(measurements)
        assert calibration.per_posting_seconds >= 0.0
        assert calibration.base_seconds >= 0.0

    def test_too_few_measurements(self):
        with pytest.raises(ValueError):
            calibrate_from_measurements([make_measurement(0, 1, 0.1)])


class TestCalibrateIsn:
    def test_end_to_end_calibration(self, small_collection, small_query_log):
        # Medians of 5 repeats: the 300-document corpus has sub-ms
        # service times, where scheduler noise on a loaded machine is
        # proportionally large.
        with IndexServingNode(partition_index(small_collection, 1)) as isn:
            calibration = calibrate_isn(
                isn, small_query_log, num_queries=60, repeats=5
            )
        assert calibration.per_posting_seconds > 0
        assert calibration.num_measurements == 60
        # The postings volume must explain a meaningful share of the
        # variance even under timer noise (alone, R² is ~0.8 here; the
        # threshold leaves headroom for a contended CPU).
        assert calibration.r_squared > 0.3
        assert calibration.service_summary.mean > 0

    def test_invalid_num_queries(self, small_collection, small_query_log):
        with IndexServingNode(partition_index(small_collection, 1)) as isn:
            with pytest.raises(ValueError):
                calibrate_isn(isn, small_query_log, num_queries=0)


class TestDemandModels:
    def test_demand_model_from_calibration(
        self, small_index, small_query_log, rng
    ):
        measurements = [
            make_measurement(i, volume, 0.001 + 1e-6 * volume)
            for i, volume in enumerate([10, 100, 1_000])
        ]
        calibration = calibrate_from_measurements(measurements)
        model = demand_model_from_calibration(
            calibration, small_index, small_query_log
        )
        draws = model.demands(50, rng)
        assert np.all(draws >= calibration.base_seconds)

    def test_lognormal_model(self, rng):
        source = np.random.default_rng(0).lognormal(-4.0, 0.5, 400)
        measurements = [
            make_measurement(i, 100, float(seconds))
            for i, seconds in enumerate(source)
        ]
        model = lognormal_model_from_measurements(measurements)
        assert model.mean_demand() == pytest.approx(source.mean(), rel=0.1)
