"""Unit tests for latency summaries, throughput, and histograms."""

import numpy as np
import pytest

from repro.metrics.histogram import Histogram, cdf_points
from repro.metrics.summary import summarize
from repro.metrics.throughput import ThroughputTracker


class TestSummarize:
    def test_summary_fields(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.p50 == 3.0
        assert summary.max == 5.0

    def test_percentiles_ordered(self):
        samples = np.random.default_rng(1).lognormal(0, 1, 2_000)
        summary = summarize(samples)
        assert (
            summary.p50
            <= summary.p90
            <= summary.p95
            <= summary.p99
            <= summary.p999
            <= summary.max
        )

    def test_tail_ratio(self):
        summary = summarize([1.0] * 90 + [100.0] * 10)
        assert summary.tail_ratio > 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_scaled(self):
        summary = summarize([1.0, 2.0]).scaled(1000.0)
        assert summary.mean == 1500.0
        assert summary.count == 2

    def test_as_dict(self):
        data = summarize([1.0]).as_dict()
        assert set(data) == {
            "count", "mean", "p50", "p90", "p95", "p99", "p999", "max",
        }


class TestThroughputTracker:
    def test_overall_qps(self):
        tracker = ThroughputTracker()
        tracker.record_many([0.0, 1.0, 2.0, 3.0, 4.0])
        assert tracker.overall_qps() == pytest.approx(1.0)

    def test_needs_two_completions(self):
        tracker = ThroughputTracker()
        tracker.record(1.0)
        with pytest.raises(ValueError):
            tracker.overall_qps()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ThroughputTracker().record(-1.0)

    def test_windowed_qps(self):
        tracker = ThroughputTracker()
        tracker.record_many([0.1, 0.2, 0.3, 1.5])
        windows = tracker.windowed_qps(1.0)
        assert windows[0] == pytest.approx(3.0)
        assert windows[1] == pytest.approx(1.0)

    def test_windowed_empty(self):
        assert ThroughputTracker().windowed_qps(1.0).size == 0

    def test_windowed_invalid(self):
        with pytest.raises(ValueError):
            ThroughputTracker().windowed_qps(0)


class TestHistogram:
    def test_counts_cover_all_samples(self):
        samples = np.random.default_rng(2).lognormal(0, 0.5, 500)
        histogram = Histogram.from_samples(samples, num_bins=20)
        assert histogram.total == 500

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Histogram.from_samples([0.0, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Histogram.from_samples([])

    def test_constant_samples(self):
        histogram = Histogram.from_samples([2.0, 2.0, 2.0], num_bins=5)
        assert histogram.total == 3

    def test_densities_sum_to_one(self):
        histogram = Histogram.from_samples([1.0, 2.0, 4.0, 8.0], num_bins=8)
        assert histogram.densities().sum() == pytest.approx(1.0)

    def test_mode_bin(self):
        histogram = Histogram.from_samples([1.0, 1.01, 1.02, 100.0], num_bins=10)
        low, high = histogram.mode_bin()
        assert low <= 1.02 and high < 100.0


class TestCdfPoints:
    def test_endpoints(self):
        points = cdf_points([1.0, 2.0, 3.0], num_points=5)
        assert points[0] == (1.0, 0.0)
        assert points[-1] == (3.0, 1.0)

    def test_monotone(self):
        samples = np.random.default_rng(3).exponential(1.0, 300)
        points = cdf_points(samples, num_points=50)
        values = [value for value, _ in points]
        assert values == sorted(values)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            cdf_points([], num_points=5)
        with pytest.raises(ValueError):
            cdf_points([1.0], num_points=1)
