"""Integration tests for open- and closed-loop cluster simulations."""

import numpy as np
import pytest

from repro.cluster.results import QueryRecord, SimulationResult
from repro.cluster.server import PartitionModelConfig
from repro.cluster.simulation import ClusterConfig, run_closed_loop, run_open_loop
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER
from repro.sim.network import FixedDelay
from repro.workload.arrivals import ClosedLoopSpec, PoissonArrivals
from repro.workload.scenario import WorkloadScenario
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.0, sigma=0.6)  # mean ~ 22 ms


def scenario(rate=100.0, num_queries=2_000):
    return WorkloadScenario(
        arrivals=PoissonArrivals(rate),
        demands=DEMAND,
        num_queries=num_queries,
    )


class TestRunOpenLoop:
    def test_all_queries_complete(self):
        result = run_open_loop(ClusterConfig(spec=BIG_SERVER), scenario())
        assert len(result) == 2_000

    def test_deterministic_given_seed(self):
        config = ClusterConfig(spec=BIG_SERVER)
        first = run_open_loop(config, scenario(), seed=3)
        second = run_open_loop(config, scenario(), seed=3)
        assert np.array_equal(first.latencies(), second.latencies())

    def test_different_seeds_differ(self):
        config = ClusterConfig(spec=BIG_SERVER)
        first = run_open_loop(config, scenario(), seed=1)
        second = run_open_loop(config, scenario(), seed=2)
        assert not np.array_equal(first.latencies(), second.latencies())

    def test_latency_exceeds_service_floor(self):
        result = run_open_loop(ClusterConfig(spec=BIG_SERVER), scenario())
        for record in result.records[:100]:
            # Unpartitioned: latency can never beat own demand / core speed.
            assert record.latency >= record.demand / BIG_SERVER.core_speed - 1e-12

    def test_higher_load_raises_latency(self):
        config = ClusterConfig(spec=BIG_SERVER)
        light = run_open_loop(config, scenario(rate=50.0), seed=0)
        heavy = run_open_loop(config, scenario(rate=300.0), seed=0)
        assert heavy.summary().p99 > light.summary().p99
        assert heavy.utilization() > light.utilization()

    def test_network_delay_adds_to_latency(self):
        base = run_open_loop(ClusterConfig(spec=BIG_SERVER), scenario(), seed=0)
        delayed = run_open_loop(
            ClusterConfig(spec=BIG_SERVER, network=FixedDelay(0.005)),
            scenario(),
            seed=0,
        )
        gap = delayed.summary().mean - base.summary().mean
        assert gap == pytest.approx(0.010, rel=0.05)  # two hops

    def test_slow_server_slower(self):
        fast = run_open_loop(ClusterConfig(spec=BIG_SERVER), scenario(rate=20.0))
        slow = run_open_loop(ClusterConfig(spec=SMALL_SERVER), scenario(rate=20.0))
        assert slow.summary().p50 > fast.summary().p50

    def test_utilization_matches_offered_load(self):
        rate = 100.0
        result = run_open_loop(
            ClusterConfig(spec=BIG_SERVER), scenario(rate=rate, num_queries=5_000)
        )
        offered = rate * DEMAND.mean_demand() / BIG_SERVER.compute_capacity
        assert result.utilization() == pytest.approx(offered, rel=0.15)

    def test_records_sorted_by_send_time(self):
        result = run_open_loop(ClusterConfig(spec=BIG_SERVER), scenario())
        sends = [record.client_send for record in result.records]
        assert sends == sorted(sends)

    def test_partitioned_config_runs(self):
        config = ClusterConfig(
            spec=BIG_SERVER,
            partitioning=PartitionModelConfig(num_partitions=4),
        )
        result = run_open_loop(config, scenario())
        assert len(result) == 2_000
        assert "P=4" in result.label


class TestRunClosedLoop:
    def test_completes_exact_query_budget(self):
        result = run_closed_loop(
            ClusterConfig(spec=BIG_SERVER),
            ClosedLoopSpec(num_clients=8, mean_think_time=0.05),
            DEMAND,
            num_queries=1_000,
        )
        assert len(result) == 1_000

    def test_deterministic(self):
        config = ClusterConfig(spec=BIG_SERVER)
        spec = ClosedLoopSpec(num_clients=4, mean_think_time=0.1)
        first = run_closed_loop(config, spec, DEMAND, 500, seed=5)
        second = run_closed_loop(config, spec, DEMAND, 500, seed=5)
        assert np.array_equal(first.latencies(), second.latencies())

    def test_throughput_self_limits(self):
        """Closed-loop throughput saturates near num_clients/(think+latency)."""
        config = ClusterConfig(spec=BIG_SERVER)
        spec = ClosedLoopSpec(num_clients=4, mean_think_time=0.1)
        result = run_closed_loop(config, spec, DEMAND, 2_000)
        upper_bound = spec.num_clients / spec.mean_think_time
        assert result.achieved_qps() < upper_bound

    def test_more_clients_more_throughput_until_saturation(self):
        config = ClusterConfig(spec=BIG_SERVER)
        few = run_closed_loop(
            config, ClosedLoopSpec(num_clients=2, mean_think_time=0.1),
            DEMAND, 1_000,
        )
        many = run_closed_loop(
            config, ClosedLoopSpec(num_clients=16, mean_think_time=0.1),
            DEMAND, 1_000,
        )
        assert many.achieved_qps() > few.achieved_qps()

    def test_zero_think_time(self):
        result = run_closed_loop(
            ClusterConfig(spec=BIG_SERVER),
            ClosedLoopSpec(num_clients=2, mean_think_time=0.0),
            DEMAND,
            num_queries=200,
        )
        assert len(result) == 200

    def test_invalid_num_queries(self):
        with pytest.raises(ValueError):
            run_closed_loop(
                ClusterConfig(spec=BIG_SERVER),
                ClosedLoopSpec(num_clients=1),
                DEMAND,
                num_queries=0,
            )


class TestSimulationResult:
    def _make_result(self):
        return run_open_loop(ClusterConfig(spec=BIG_SERVER), scenario())

    def test_summary_and_warmup(self):
        result = self._make_result()
        full = result.summary()
        trimmed = result.summary(warmup_fraction=0.2)
        assert trimmed.count == int(len(result) * 0.8)
        assert full.count == len(result)

    def test_invalid_warmup(self):
        result = self._make_result()
        with pytest.raises(ValueError):
            result.latencies(warmup_fraction=1.0)

    def test_breakdown_sums_to_mean_latency(self):
        result = self._make_result()
        breakdown = result.breakdown_means()
        assert sum(breakdown.values()) == pytest.approx(
            result.summary().mean, rel=1e-9
        )

    def test_breakdown_at_percentile(self):
        result = self._make_result()
        tail = result.breakdown_at_percentile(99.0)
        assert sum(tail.values()) == pytest.approx(
            float(np.percentile(result.latencies(), 99.0, method="nearest")),
            rel=0.02,
        )

    def test_incomplete_record_rejected(self):
        record = QueryRecord(query_id=0, client_send=0.0, demand=0.1)
        with pytest.raises(ValueError, match="never completed"):
            SimulationResult(
                records=[record], horizon=1.0, core_busy_time=0.0, num_cores=1
            )

    def test_achieved_qps(self):
        result = self._make_result()
        assert result.achieved_qps() > 0
