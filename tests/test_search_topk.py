"""Unit + property tests for the bounded top-k heap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.search.topk import SearchHit, TopKHeap


class TestTopKHeap:
    def test_keeps_best_k(self):
        heap = TopKHeap(3)
        for doc_id, score in enumerate([1.0, 5.0, 3.0, 4.0, 2.0]):
            heap.offer(doc_id, score)
        results = heap.results()
        assert [hit.score for hit in results] == [5.0, 4.0, 3.0]

    def test_results_best_first(self):
        heap = TopKHeap(10)
        heap.offer(0, 1.0)
        heap.offer(1, 9.0)
        heap.offer(2, 5.0)
        scores = [hit.score for hit in heap.results()]
        assert scores == sorted(scores, reverse=True)

    def test_ties_break_by_doc_id(self):
        heap = TopKHeap(2)
        heap.offer(7, 1.0)
        heap.offer(3, 1.0)
        heap.offer(5, 1.0)
        results = heap.results()
        assert [hit.doc_id for hit in results] == [3, 5]

    def test_threshold_before_full(self):
        heap = TopKHeap(2)
        assert heap.threshold() == float("-inf")
        heap.offer(0, 1.0)
        assert heap.threshold() == float("-inf")
        heap.offer(1, 2.0)
        assert heap.threshold() == 1.0

    def test_threshold_rises(self):
        heap = TopKHeap(1)
        heap.offer(0, 1.0)
        heap.offer(1, 3.0)
        assert heap.threshold() == 3.0

    def test_offer_reports_retention(self):
        heap = TopKHeap(1)
        assert heap.offer(0, 2.0) is True
        assert heap.offer(1, 1.0) is False
        assert heap.offer(2, 3.0) is True

    def test_rejects_equal_score_higher_doc_id(self):
        heap = TopKHeap(1)
        heap.offer(3, 1.0)
        assert heap.offer(9, 1.0) is False
        assert heap.results()[0].doc_id == 3

    def test_accepts_equal_score_lower_doc_id(self):
        heap = TopKHeap(1)
        heap.offer(9, 1.0)
        assert heap.offer(3, 1.0) is True
        assert heap.results()[0].doc_id == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKHeap(0)

    def test_search_hit_sort_key(self):
        better = SearchHit(score=2.0, doc_id=9)
        worse = SearchHit(score=1.0, doc_id=1)
        assert better.sort_key() < worse.sort_key()

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), max_size=100),
        st.integers(min_value=1, max_value=20),
    )
    def test_matches_sorting(self, scores, k):
        heap = TopKHeap(k)
        for doc_id, score in enumerate(scores):
            heap.offer(doc_id, score)
        expected = sorted(
            ((score, doc_id) for doc_id, score in enumerate(scores)),
            key=lambda pair: (-pair[0], pair[1]),
        )[:k]
        actual = [(hit.score, hit.doc_id) for hit in heap.results()]
        assert actual == expected
