"""Unit tests for document generation."""

import numpy as np
import pytest

from repro.corpus.documents import Document, DocumentCollection
from repro.corpus.generator import CorpusConfig, CorpusGenerator
from repro.corpus.vocabulary import VocabularyConfig


class TestDocumentCollection:
    def test_dense_ids_enforced(self):
        collection = DocumentCollection()
        collection.add(Document(0, "u0", "t", "b"))
        with pytest.raises(ValueError):
            collection.add(Document(5, "u5", "t", "b"))

    def test_get_out_of_range(self):
        collection = DocumentCollection()
        assert collection.get(0) is None
        assert collection.get(-1) is None

    def test_iteration_order(self):
        collection = DocumentCollection()
        for doc_id in range(3):
            collection.add(Document(doc_id, f"u{doc_id}", "t", "b"))
        assert [doc.doc_id for doc in collection] == [0, 1, 2]

    def test_slice(self):
        collection = DocumentCollection()
        for doc_id in range(5):
            collection.add(Document(doc_id, f"u{doc_id}", "t", "b"))
        assert [doc.doc_id for doc in collection.slice([4, 0, 2])] == [4, 0, 2]

    def test_text_combines_title_and_body(self):
        document = Document(0, "u", "Title Here", "body text")
        assert "Title Here" in document.text
        assert "body text" in document.text


class TestCorpusGenerator:
    def test_generates_requested_count(self, small_collection):
        assert len(small_collection) == 300

    def test_deterministic(self, corpus_generator):
        first = corpus_generator.generate()
        second = corpus_generator.generate()
        assert first[0].body == second[0].body
        assert first[123].body == second[123].body

    def test_urls_unique(self, small_collection):
        urls = [doc.url for doc in small_collection]
        assert len(set(urls)) == len(urls)

    def test_titles_nonempty(self, small_collection):
        assert all(doc.title.strip() for doc in small_collection)

    def test_lengths_are_skewed(self, small_collection):
        lengths = np.array([len(doc.body.split()) for doc in small_collection])
        # Log-normal: mean above median.
        assert lengths.mean() > np.median(lengths)

    def test_mean_length_roughly_matches_config(self):
        config = CorpusConfig(
            num_documents=400,
            vocabulary=VocabularyConfig(size=1_000),
            mean_length=100,
            stopword_fraction=0.0,
            seed=9,
        )
        collection = CorpusGenerator(config).generate()
        lengths = [len(doc.body.split()) for doc in collection]
        assert np.mean(lengths) == pytest.approx(100, rel=0.15)

    def test_zero_documents(self):
        config = CorpusConfig(num_documents=0, vocabulary=VocabularyConfig(size=10))
        assert len(CorpusGenerator(config).generate()) == 0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            CorpusConfig(num_documents=-1)
        with pytest.raises(ValueError):
            CorpusConfig(mean_length=0)
        with pytest.raises(ValueError):
            CorpusConfig(topic_fraction=1.5)
        with pytest.raises(ValueError):
            CorpusConfig(stopword_fraction=1.0)

    def test_topic_terms_repeat_within_document(self):
        # With a high topic fraction, some term must appear many times.
        config = CorpusConfig(
            num_documents=5,
            vocabulary=VocabularyConfig(size=5_000, exponent=0.0),
            mean_length=200,
            topic_terms=3,
            topic_fraction=0.8,
            stopword_fraction=0.0,
            seed=1,
        )
        collection = CorpusGenerator(config).generate()
        for document in collection:
            words = [word.strip(".").lower() for word in document.body.split()]
            counts = {}
            for word in words:
                counts[word] = counts.get(word, 0) + 1
            assert max(counts.values()) >= 10
