"""Unit tests for the tokenizer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.text.tokenizer import Tokenizer, tokenize


class TestTokenizer:
    def test_splits_on_whitespace_and_punctuation(self):
        assert tokenize("Hello, world! foo-bar") == ["Hello", "world", "foo", "bar"]

    def test_keeps_digits(self):
        assert tokenize("top10 results 2015") == ["top10", "results", "2015"]

    def test_empty_text(self):
        assert tokenize("") == []

    def test_only_punctuation(self):
        assert tokenize("... --- !!!") == []

    def test_unicode_non_ascii_is_separator(self):
        # The letter tokenizer is ASCII-alphanumeric: other chars split.
        assert tokenize("café rocks") == ["caf", "rocks"]

    def test_long_tokens_dropped_not_truncated(self):
        tokenizer = Tokenizer(max_token_length=5)
        assert tokenizer.tokenize("short toolongtoken ok") == ["short", "ok"]

    def test_max_token_length_boundary(self):
        tokenizer = Tokenizer(max_token_length=5)
        assert tokenizer.tokenize("abcde abcdef") == ["abcde"]

    def test_invalid_max_token_length(self):
        with pytest.raises(ValueError):
            Tokenizer(max_token_length=0)

    def test_iter_tokens_matches_tokenize(self):
        tokenizer = Tokenizer()
        text = "The quick, brown fox! Jumps over 2 lazy dogs."
        assert list(tokenizer.iter_tokens(text)) == tokenizer.tokenize(text)

    @given(st.text(max_size=200))
    def test_tokens_are_always_alphanumeric(self, text):
        for token in tokenize(text):
            assert token.isalnum()

    @given(st.text(alphabet=st.characters(whitelist_categories=["Ll"]), max_size=50))
    def test_tokenization_is_idempotent(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(tokens)) == tokens
