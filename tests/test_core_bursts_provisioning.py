"""Tests for the burst study and the provisioning table."""

import numpy as np
import pytest

from repro.cluster.server import PartitionModelConfig
from repro.core.bursts import burst_study, make_mmpp
from repro.core.provisioning import provisioning_study
from repro.servers.catalog import BIG_SERVER, SMALL_SERVER
from repro.workload.servicetime import LognormalDemand

DEMAND = LognormalDemand(mu=-4.0, sigma=0.6)
COST_MODEL = PartitionModelConfig(
    partition_overhead=0.0003, merge_base=0.0002, merge_per_partition=0.0001
)


class TestMakeMmpp:
    def test_average_rate_matches(self, rng):
        process = make_mmpp(average_rate=100.0, burst_factor=4.0)
        times = process.arrival_times(40_000, rng)
        measured = len(times) / times[-1]
        assert measured == pytest.approx(100.0, rel=0.1)

    def test_burst_rate_relationship(self):
        process = make_mmpp(average_rate=100.0, burst_factor=5.0)
        assert process.burst_rate == pytest.approx(5.0 * process.base_rate)
        assert process.base_rate < 100.0 < process.burst_rate

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            make_mmpp(average_rate=0.0)
        with pytest.raises(ValueError):
            make_mmpp(average_rate=10.0, burst_factor=1.0)
        with pytest.raises(ValueError):
            make_mmpp(average_rate=10.0, burst_time_share=1.0)


class TestBurstStudy:
    @pytest.fixture(scope="class")
    def points(self):
        # Peak-heavy regime: average ~45% of capacity but the burst
        # state runs near saturation (3x base).
        return burst_study(
            BIG_SERVER,
            DEMAND,
            partition_counts=[1, 8],
            average_rate=150.0,
            burst_factor=3.0,
            cost_model=COST_MODEL,
            num_queries=5_000,
        )

    def select(self, points, kind, num_partitions):
        return next(
            p.summary
            for p in points
            if p.arrival_kind == kind and p.num_partitions == num_partitions
        )

    def test_structure(self, points):
        assert len(points) == 4
        kinds = {p.arrival_kind for p in points}
        assert kinds == {"poisson", "mmpp"}

    def test_bursts_inflate_tail_at_equal_average_load(self, points):
        assert (
            self.select(points, "mmpp", 1).p99
            > 1.2 * self.select(points, "poisson", 1).p99
        )

    def test_partitioning_helps_poisson_at_this_load(self, points):
        assert (
            self.select(points, "poisson", 8).p99
            < self.select(points, "poisson", 1).p99
        )

    def test_peak_heavy_bursts_reverse_the_partitioning_win(self, points):
        """During near-saturation bursts the tail is queue-dominated,
        so partitioning's work inflation makes it worse: the partition
        count must be chosen for the peak, not the average."""
        assert (
            self.select(points, "mmpp", 8).p99
            > self.select(points, "mmpp", 1).p99
        )

    def test_burst_gap_persists_after_partitioning(self, points):
        assert (
            self.select(points, "mmpp", 8).p99
            > self.select(points, "poisson", 8).p99
        )

    def test_similar_utilization(self, points):
        utils = [p.utilization for p in points if p.num_partitions == 1]
        assert max(utils) < 1.3 * min(utils)

    def test_moderate_bursts_partitioning_still_helps(self):
        points = burst_study(
            BIG_SERVER,
            DEMAND,
            partition_counts=[1, 8],
            average_rate=100.0,
            burst_factor=2.0,
            cost_model=COST_MODEL,
            num_queries=4_000,
        )
        mmpp_p1 = self.select(points, "mmpp", 1)
        mmpp_p8 = self.select(points, "mmpp", 8)
        assert mmpp_p8.p99 < mmpp_p1.p99

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            burst_study(BIG_SERVER, DEMAND, [], average_rate=10.0)
        with pytest.raises(ValueError):
            burst_study(BIG_SERVER, DEMAND, [1], average_rate=0.0)


class TestProvisioningStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return provisioning_study(
            [BIG_SERVER, SMALL_SERVER],
            DEMAND,
            target_qps=2_000.0,
            qos_p99_seconds=0.2,
            partition_counts=(2, 8),
            cost_model=COST_MODEL,
            num_queries=1_500,
        )

    def test_both_classes_deployable(self, rows):
        assert all(row.meets_qos for row in rows)

    def test_small_class_needs_more_nodes(self, rows):
        by_name = {row.server_name: row for row in rows}
        assert (
            by_name[SMALL_SERVER.name].nodes_needed
            > by_name[BIG_SERVER.name].nodes_needed
        )

    def test_nodes_cover_target(self, rows):
        for row in rows:
            assert row.nodes_needed * row.per_node_qps >= 2_000.0

    def test_power_accounting(self, rows):
        for row in rows:
            assert row.total_power_watts > 0
            assert row.watts_per_kqps == pytest.approx(
                row.total_power_watts / 2.0
            )
            assert 0.0 < row.node_utilization <= 1.0

    def test_impossible_qos_flagged(self):
        rows = provisioning_study(
            [BIG_SERVER],
            DEMAND,
            target_qps=100.0,
            qos_p99_seconds=1e-6,
            partition_counts=(1,),
            num_queries=800,
        )
        assert not rows[0].meets_qos
        assert rows[0].nodes_needed == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            provisioning_study(
                [BIG_SERVER], DEMAND, target_qps=0.0, qos_p99_seconds=0.1
            )
        with pytest.raises(ValueError):
            provisioning_study(
                [], DEMAND, target_qps=10.0, qos_p99_seconds=0.1
            )
