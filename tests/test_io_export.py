"""Tests for corpus/query-log persistence and CSV export."""

import csv
import json

import numpy as np
import pytest

from repro.corpus.io import (
    load_collection,
    load_query_log,
    save_collection,
    save_query_log,
)
from repro.engine.driver import QueryMeasurement
from repro.index.builder import IndexBuilder
from repro.index.serialization import serialize_index
from repro.metrics.export import export_measurements_csv, export_simulation_csv


class TestCollectionIO:
    def test_roundtrip(self, small_collection, tmp_path):
        path = tmp_path / "corpus.jsonl"
        written = save_collection(small_collection, path)
        assert written == len(small_collection)
        loaded = load_collection(path)
        assert len(loaded) == len(small_collection)
        for original, restored in zip(small_collection, loaded):
            assert original == restored

    def test_roundtrip_produces_identical_index(
        self, small_collection, tmp_path
    ):
        path = tmp_path / "corpus.jsonl"
        save_collection(small_collection, path)
        loaded = load_collection(path)
        original_index = serialize_index(IndexBuilder().build(small_collection))
        restored_index = serialize_index(IndexBuilder().build(loaded))
        assert original_index == restored_index

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"doc_id": 0, "url": "u"}) + "\n")
        with pytest.raises(ValueError, match="missing field"):
            load_collection(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "c.jsonl"
        path.write_text(
            json.dumps(
                {"doc_id": 0, "url": "u", "title": "t", "body": "b"}
            )
            + "\n\n"
        )
        assert len(load_collection(path)) == 1


class TestQueryLogIO:
    def test_roundtrip(self, small_query_log, tmp_path):
        path = tmp_path / "queries.jsonl"
        written = save_query_log(small_query_log, path)
        assert written == len(small_query_log)
        loaded = load_query_log(path)
        assert len(loaded) == len(small_query_log)
        assert loaded.popularity_exponent == small_query_log.popularity_exponent
        assert [q.text for q in loaded] == [q.text for q in small_query_log]

    def test_popularity_model_restored(self, small_query_log, tmp_path):
        path = tmp_path / "queries.jsonl"
        save_query_log(small_query_log, path)
        loaded = load_query_log(path)
        rng = np.random.default_rng(0)
        original_stream = small_query_log.sample_stream(50, np.random.default_rng(0))
        loaded_stream = loaded.sample_stream(50, rng)
        assert [q.query_id for q in original_stream] == [
            q.query_id for q in loaded_stream
        ]

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError, match="not a repro query log"):
            load_query_log(path)

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"format": "repro-querylog", "version": 99, "num_queries": 0,
                 "popularity_exponent": 0.85}
            )
            + "\n"
        )
        with pytest.raises(ValueError, match="version"):
            load_query_log(path)

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps(
                {"format": "repro-querylog", "version": 1, "num_queries": 2,
                 "popularity_exponent": 0.85}
            )
            + "\n"
            + json.dumps({"query_id": 0, "text": "only one"})
            + "\n"
        )
        with pytest.raises(ValueError, match="promises 2"):
            load_query_log(path)


class TestCsvExport:
    def test_breakdown_columns_in_sync(self):
        """The literal column list must mirror the cluster package's."""
        from repro.cluster.results import BREAKDOWN_COMPONENTS
        from repro.metrics.export import _BREAKDOWN_COMPONENTS

        assert _BREAKDOWN_COMPONENTS == BREAKDOWN_COMPONENTS

    def test_simulation_export(self, tmp_path):
        from repro.cluster.simulation import ClusterConfig, run_open_loop
        from repro.servers.catalog import BIG_SERVER
        from repro.workload.arrivals import PoissonArrivals
        from repro.workload.scenario import WorkloadScenario
        from repro.workload.servicetime import LognormalDemand

        result = run_open_loop(
            ClusterConfig(spec=BIG_SERVER),
            WorkloadScenario(
                arrivals=PoissonArrivals(50.0),
                demands=LognormalDemand(-4.0, 0.5),
                num_queries=100,
            ),
        )
        path = tmp_path / "sim.csv"
        assert export_simulation_csv(result, path) == 100
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 100
        # Re-derivable invariant: components sum to the latency.
        for row in rows[:20]:
            components = sum(
                float(row[c])
                for c in (
                    "queue_wait", "parallel_service", "straggler_skew",
                    "merge_wait", "merge_service", "network_time",
                )
            )
            assert components == pytest.approx(float(row["latency"]), abs=1e-6)

    def test_measurements_export(self, tmp_path):
        measurements = [
            QueryMeasurement(
                query_id=i,
                text=f"query {i}",
                num_raw_terms=2,
                service_seconds=0.001 * (i + 1),
                matched_volume=10 * i,
                num_hits=min(10, i),
            )
            for i in range(5)
        ]
        path = tmp_path / "measurements.csv"
        assert export_measurements_csv(measurements, path) == 5
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["text"] == "query 0"
        assert float(rows[4]["service_seconds"]) == pytest.approx(0.005)
